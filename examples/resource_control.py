#!/usr/bin/env python
"""Resource control: an owner's policy, compiled and enforced.

A desktop owner writes a constraint file; the toolchain compiles it into
a periodic real-time schedule for the grid VMs and enforces it on the
host CPU while the owner's interactive work keeps its share — the
Section 3.2 "resource perspective".

Run with:  python examples/resource_control.py
"""

from repro.core import format_table
from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.scheduling import (
    PeriodicEnforcer,
    compile_constraints,
    parse_constraints,
)
from repro.simulation import Simulation

POLICY = """
# Policy for desktop pc07: grid VMs may use at most half of the
# machine, in predictable 20ms slices every 100ms.
limit cpu 0.5
reserve slice 20ms period 100ms
weight 1
"""


def main():
    constraints = parse_constraints(POLICY)
    schedule = compile_constraints(constraints, ["vm1", "vm2"], cores=1)
    print("owner policy compiled to:", schedule.describe())

    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1)
    vm1 = TaskGroup("vm1")
    vm2 = TaskGroup("vm2")

    # Grid VMs with unbounded appetite.
    guest1 = CpuTask("guest-work-1", work=10_000.0, group=vm1)
    guest2 = CpuTask("guest-work-2", work=10_000.0, group=vm2)
    cpu.submit(guest1)
    cpu.submit(guest2)
    # The owner's local work: bursts of interactive computation.
    local = CpuTask("owner-interactive", work=10_000.0)
    cpu.submit(local)

    enforcer = PeriodicEnforcer(cpu, {
        vm1: schedule.entries["vm1"],
        vm2: schedule.entries["vm2"],
    })
    enforcer.start()
    horizon = 300.0
    sim.run(until=horizon)
    cpu.sync()

    rows = []
    for name, task, target in (
            ("vm1", guest1, 0.2), ("vm2", guest2, 0.2),
            ("owner", local, None)):
        achieved = (task.work - task.remaining) / horizon
        rows.append([name,
                     "%.3f" % target if target is not None else "rest",
                     "%.3f" % achieved])
    print(format_table(["Principal", "Target share", "Achieved share"],
                       rows, title="\nEnforcement over %.0fs:" % horizon))
    print("\nVM slices served: vm1=%d vm2=%d (every 100 ms, staggered)"
          % (enforcer.periods_served[vm1], enforcer.periods_served[vm2]))


if __name__ == "__main__":
    main()
