#!/usr/bin/env python
"""A virtual cluster: VMs at three sites, networked by an overlay.

Deploys three member VMs on three hosts across sites, brings up the
self-optimizing overlay among them (Section 3.3), then shows the
overlay routing around a policy-degraded inter-site path during an
all-pairs data exchange.

Run with:  python examples/virtual_cluster.py
"""

from repro.core import VirtualGrid
from repro.guestos import GuestOsProfile
from repro.middleware import VirtualCluster

GB = 1024 ** 3
MB = 1024 ** 2

QUICK_GUEST = GuestOsProfile(kernel_read_bytes=2 * 1024 * 1024,
                             scattered_reads=60, boot_cpu_user=0.5,
                             boot_cpu_sys=0.5, boot_jitter=0.0,
                             boot_footprint_bytes=64 * 1024 * 1024)


def main():
    grid = VirtualGrid(seed=5)
    for site in ("uf", "nw", "anl"):
        grid.add_site(site)
    grid.add_compute_host("compute-uf", site="uf")
    grid.add_compute_host("compute-nw", site="nw")
    grid.add_compute_host("compute-anl", site="anl")
    grid.add_image_server("images", site="nw")
    grid.publish_image("images", "rh72", 1 * GB, warm_state_mb=128)
    grid.add_data_server("data", site="nw")
    grid.add_user("ana")

    cluster = VirtualCluster(grid, "ana", "rh72", size=3,
                             session_overrides={
                                 "guest_profile": QUICK_GUEST})
    grid.run(cluster.deploy())
    print("cluster deployed:")
    for i, name in enumerate(cluster.members):
        print("  %s on %s" % (name, cluster.host_of(i)))

    elapsed = grid.run(cluster.exchange(2 * MB))
    print("all-pairs exchange of 2 MB: %.1fs (healthy paths)" % elapsed)

    # Policy routing degrades the uf<->anl path by 400 ms; the overlay
    # re-measures and starts relaying through nw.
    a, b = cluster.host_of(0), cluster.host_of(2)
    cluster.overlay.set_underlay_penalty(a, b, 0.4)
    grid.run(cluster.overlay.measure())
    seconds, path = grid.run(cluster.transfer(0, 2, 64 * 1024))
    print("after a 400ms policy penalty on %s<->%s:" % (a, b))
    print("  64 KB transfer took %.3fs via %s" % (seconds, " -> ".join(path)))
    direct = cluster.overlay.underlay_latency(a, b)
    via = cluster.overlay.overlay_latency(a, b)
    print("  overlay latency %.0fms vs %.0fms direct (saved %.0fms)"
          % (1e3 * via, 1e3 * direct, 1e3 * (direct - via)))

    grid.run(cluster.teardown())
    print("cluster torn down")


if __name__ == "__main__":
    main()
