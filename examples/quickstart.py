#!/usr/bin/env python
"""Quickstart: one user's VM grid session, end to end.

Builds a two-site grid (compute at "uf", image + data servers at "nw"),
then walks the six-step life cycle of the paper's Section 4: discover a
VM future, locate an image, open the image data session, start the VM
through GRAM, attach it to the network, mount the user's data inside
the guest, and run a job.

Run with:  python examples/quickstart.py
"""

from repro.core import VirtualGrid
from repro.middleware import SessionConfig
from repro.workloads import synthetic_compute

GB = 1024 ** 3


def main():
    grid = VirtualGrid(seed=42)

    # Resource providers contribute sites, machines and services.
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("compute1", site="uf", vm_futures=4)
    grid.add_image_server("images1", site="nw")
    grid.publish_image("images1", "rh72", 2 * GB, warm_state_mb=128)
    data = grid.add_data_server("data1", site="nw")

    # A logical user: no Unix account anywhere, just grid rights.
    grid.add_user("ana")
    data.store("ana", "input.dat", 16 * 1024 * 1024)

    # The user asks for a warm-started, non-persistent VM whose image is
    # fetched on demand through a PVFS proxy.
    session = grid.new_session(SessionConfig(
        user="ana",
        image="rh72",
        start_mode="restore",
        image_access="pvfs",
        networking="dhcp",
    ))
    grid.run(session.establish())

    print("session established at t=%.1fs" % grid.sim.now)
    print("  VM %r on host %s, address %s"
          % (session.vm.name, session.vm.vmm.machine.name,
             session.vm.address))
    for line in session.timeline():
        print("  " + line)

    # Step 6: execute. The guest sees a dedicated machine.
    result = grid.run(session.run_application(synthetic_compute(60.0)))
    print("job finished: user=%.1fs sys=%.1fs wall=%.1fs"
          % (result.user_time, result.sys_time, result.wall_time))
    print("  VM overhead vs nominal 60s: %.2f%%"
          % (100 * (result.user_time / 60.0 - 1.0)))

    grid.run(session.shutdown())
    print("session closed at t=%.1fs; VM record withdrawn, lease released"
          % grid.sim.now)


if __name__ == "__main__":
    main()
