#!/usr/bin/env python
"""Adaptation: RPS-style prediction picks the right host.

Section 3.2's application perspective: an application about to submit
work queries host-load sensors, fits predictors to their streams, ranks
candidate hosts by predicted running time, and runs on the winner.  We
then check the prediction against the simulated outcome.

Run with:  python examples/adaptive_scheduling.py
"""

from repro.guestos import OperatingSystem, PhysicalHost
from repro.hardware import MachineSpec, PhysicalMachine
from repro.prediction import (
    ArPredictor,
    HostLoadSensor,
    RunningTimePredictor,
)
from repro.simulation import RandomStreams, Simulation
from repro.workloads import HostLoadTrace, LoadPlayback, synthetic_compute

WORK_SECONDS = 30.0


def main():
    sim = Simulation()
    streams = RandomStreams(11)

    hosts = {}
    sensors = {}
    for name, load_mean in (("quiet-host", 0.15), ("busy-host", 1.4)):
        machine = PhysicalMachine(sim, name, spec=MachineSpec(cores=1))
        host = PhysicalHost(machine)
        os = OperatingSystem(host, name=name + "-os",
                             rng=streams.stream(name))
        os.mount("/", host.root_fs)
        os.mark_booted()
        trace = HostLoadTrace.synthetic(load_mean, streams.stream(
            "trace-" + name), length=2000)
        sim.spawn(LoadPlayback(os, trace).run(2000.0))
        sensor = HostLoadSensor(machine.cpu, period=1.0)
        sensor.start()
        hosts[name] = (machine, os)
        sensors[name] = sensor

    # Let the sensors observe for five minutes.
    sim.run(until=300.0)
    histories = {name: list(sensor.series) for name, sensor in
                 sensors.items()}

    predictor = RunningTimePredictor(lambda: ArPredictor(order=4), cores=1)
    ranking = predictor.rank_hosts(WORK_SECONDS, histories)
    predictions = {name: predictor.predict_running_time(WORK_SECONDS,
                                                        history)
                   for name, history in histories.items()}

    print("predicted running time of a %.0fs job:" % WORK_SECONDS)
    for name in ranking:
        print("  %-11s %.1fs (recent load %.2f)"
              % (name, predictions[name],
                 sum(histories[name][-30:]) / 30.0))
    chosen = ranking[0]
    print("-> adaptation decision: run on %s" % chosen)

    _machine, os = hosts[chosen]
    result = sim.run_until_complete(
        sim.spawn(os.run_application(synthetic_compute(WORK_SECONDS))))
    print("actual running time on %s: %.1fs (predicted %.1fs, error %.0f%%)"
          % (chosen, result.wall_time, predictions[chosen],
             100 * abs(result.wall_time - predictions[chosen])
             / result.wall_time))


if __name__ == "__main__":
    main()
