#!/usr/bin/env python
"""Migration: moving an entire computing environment between sites.

A session starts at site "uf", runs a long computation, and is migrated
mid-run to a host at site "nw": the guest freezes, its memory state and
copy-on-write diff cross the WAN, and the same OS instance — mounts,
processes, accounting and all — resumes on the new hardware.

Run with:  python examples/migration.py
"""

from repro.core import VirtualGrid
from repro.guestos import GuestOsProfile
from repro.middleware import SessionConfig
from repro.workloads import synthetic_compute

GB = 1024 ** 3

QUICK_GUEST = GuestOsProfile(kernel_read_bytes=2 * 1024 * 1024,
                             scattered_reads=60, boot_cpu_user=0.5,
                             boot_cpu_sys=0.5, boot_jitter=0.0,
                             boot_footprint_bytes=64 * 1024 * 1024)


def main():
    grid = VirtualGrid(seed=3)
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("compute1", site="uf")
    grid.add_compute_host("compute2", site="nw")
    grid.add_image_server("images1", site="nw")
    grid.publish_image("images1", "rh72", 1 * GB, warm_state_mb=128)
    grid.add_data_server("data1", site="nw")
    grid.add_user("ana")

    session = grid.new_session(SessionConfig(
        user="ana", image="rh72", guest_profile=QUICK_GUEST,
        host_constraints={"host": "compute1"}))
    grid.run(session.establish())
    print("VM %s running on %s (site %s)"
          % (session.vm.name, session.vm.vmm.machine.name,
             session.vm.vmm.machine.site))

    start = grid.sim.now
    job = grid.sim.spawn(session.run_application(synthetic_compute(90.0)))

    grid.sim.run(until=start + 30.0)
    print("t=+30s: job one third done; owner reclaims compute1 -> migrate")
    downtime = grid.run(session.migrate_to("compute2"))
    print("migrated to %s in %.1fs of downtime "
          "(memory state + diff over the WAN)"
          % (session.vm.vmm.machine.name, downtime))
    print("guest mounts after the move: %s"
          % sorted(session.guest_os.mounts))

    grid.sim.run_until_complete(job)
    result = session.guest_os.results[-1]
    print("job completed: user=%.1fs wall=%.1fs "
          "(= 90s of work + %.1fs downtime + overheads)"
          % (result.user_time, result.wall_time, downtime))


if __name__ == "__main__":
    main()
