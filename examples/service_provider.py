#!/usr/bin/env python
"""Figure 3's right half: a service provider with virtual back-ends.

A provider S deploys a pool of warm virtual back-end VMs (V1, V2) on a
physical server and multiplexes end users A, B and C across them.  The
end users hold logical accounts *with the provider*, never with the
site — "the logical user account abstraction decouples access to
physical resources (middleware) from access to virtual resources
(end-users and services)".

Run with:  python examples/service_provider.py
"""

from repro.core import VirtualGrid, format_table
from repro.guestos import GuestOsProfile
from repro.middleware import MiddlewareFrontend
from repro.workloads import synthetic_compute

GB = 1024 ** 3

QUICK_GUEST = GuestOsProfile(kernel_read_bytes=2 * 1024 * 1024,
                             scattered_reads=60, boot_cpu_user=0.5,
                             boot_cpu_sys=0.5, boot_jitter=0.0,
                             boot_footprint_bytes=64 * 1024 * 1024)


def main():
    grid = VirtualGrid(seed=21)
    grid.add_site("provider-site")
    grid.add_compute_host("P2", site="provider-site", vm_futures=8)
    grid.add_image_server("images", site="provider-site")
    grid.publish_image("images", "tool-image", 1 * GB, warm_state_mb=128)
    grid.add_data_server("data", site="provider-site")
    grid.add_user("provider-s")   # only the provider holds grid rights

    frontend = MiddlewareFrontend(grid)
    provider = frontend.create_provider("provider-s", "tool-image",
                                        backends=2,
                                        guest_profile=QUICK_GUEST)
    deployed = grid.run(provider.deploy())
    print("provider deployed %d warm back-ends: %s"
          % (deployed, ", ".join(s.vm.name for s in provider.sessions)))

    for user in ("userA", "userB", "userC"):
        provider.register_user(user)
    print("end users registered with the provider (no site accounts):",
          ", ".join(provider.users))

    # Three users submit at once; two back-ends serve them.
    jobs = [grid.sim.spawn(provider.submit(user, synthetic_compute(20.0)))
            for user in ("userA", "userB", "userC")]
    grid.sim.run()

    rows = [[o.user, o.backend, "%.1f" % o.queue_delay,
             "%.1f" % o.service_time] for o in provider.outcomes]
    print(format_table(["User", "Back-end", "Queue delay (s)",
                        "Service (s)"], rows,
                       title="\nRequests served:"))

    busy = provider.utilization_summary()
    for backend, seconds in sorted(busy.items()):
        print("%s busy for %.1fs" % (backend, seconds))

    grid.run(provider.teardown())
    print("pool torn down; back-end VMs terminated")


if __name__ == "__main__":
    main()
