#!/usr/bin/env python
"""Figure 2: VM image and data management via grid virtual file systems.

Two users, A and B, are multiplexed onto one compute server V via two
Red Hat VM instances.  The master image lives on image server I at a
remote site; a client-side PVFS proxy at V caches VM state blocks, so
the second user's instantiation largely hits the proxy's disk cache.
Each guest mounts its own area of data server D through a proxy with
write buffering.

Run with:  python examples/data_management.py
"""

from repro.core import VirtualGrid
from repro.middleware import SessionConfig
from repro.workloads import Application, IoPhase

GB = 1024 ** 3
MB = 1024 ** 2


def main():
    grid = VirtualGrid(seed=7)
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("serverV", site="uf", vm_futures=8)
    grid.add_image_server("serverI", site="nw")
    grid.publish_image("serverI", "rh72", 2 * GB, warm_state_mb=128)
    data = grid.add_data_server("serverD", site="nw")

    for user in ("userA", "userB"):
        grid.add_user(user)
        data.store(user, "dataset.bin", 24 * MB)

    durations = {}
    sessions = {}
    for user in ("userA", "userB"):
        session = grid.new_session(SessionConfig(
            user=user, image="rh72", start_mode="restore",
            image_access="pvfs", vm_name=user + "-rh72"))
        t0 = grid.sim.now
        grid.run(session.establish())
        durations[user] = grid.sim.now - t0
        sessions[user] = session

    print("instantiation times over the WAN:")
    print("  userA (cold image): %6.1fs" % durations["userA"])
    print("  userB (proxy-warm): %6.1fs" % durations["userB"])
    print("  -> the read-only master image is shared through the proxy "
          "cache")

    # Each user works on their own data through the guest-side mount.
    workload = Application("analyze", [
        IoPhase("/home/{u}/dataset.bin", 24 * MB),
        IoPhase("/home/{u}/results.out", 8 * MB, write=True),
    ])
    for user, session in sessions.items():
        app = Application("analyze", [
            IoPhase(p.path.format(u=user), p.nbytes, write=p.write)
            for p in workload.phases])
        result = grid.run(session.run_application(app))
        flushed = grid.run(session.sync_user_data())
        print("%s: job wall=%.1fs, %.1f MB of buffered writes flushed "
              "back to serverD" % (user, result.wall_time, flushed / MB))

    # Isolation: each VM is a separate guest with its own accounting.
    vm_a = sessions["userA"].vm
    vm_b = sessions["userB"].vm
    print("VMs on %s: %s / %s (isolated guests, one logical user each)"
          % (vm_a.vmm.machine.name, vm_a.name, vm_b.name))


if __name__ == "__main__":
    main()
