# Development entry points.  `make check` is the CI gate: the simlint
# static-analysis pass over src/ (non-zero exit on any finding), the
# tier-1 test suite (which includes the workers=1 vs workers=N
# parallel-determinism tests), and the observability smoke test (trace
# determinism + null-tracer overhead guard).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test parallel-determinism trace-smoke bench experiments

check: lint test parallel-determinism trace-smoke

lint:
	$(PYTHON) -m repro.analysis src/repro

test:
	$(PYTHON) -m pytest -x -q

# Byte-identity across worker counts, run standalone so a failure is
# unmistakably a parallelism bug (the file also runs as part of
# `test`; see docs/performance.md).
parallel-determinism:
	$(PYTHON) -m pytest -x -q tests/experiments/test_parallel_determinism.py

# Trace the table2 scenario twice at the same seed: the exported
# Chrome-trace JSON must be byte-identical, and the null tracer must
# not tax the kernel hot path (tests/obs holds the pytest versions).
trace-smoke:
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-a.json
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-b.json
	cmp .trace-smoke-a.json .trace-smoke-b.json
	rm -f .trace-smoke-a.json .trace-smoke-b.json
	$(PYTHON) -m pytest -x -q tests/obs/test_overhead_guard.py \
	    tests/obs/test_trace_determinism.py

# Kernel throughput microbenchmark: regenerates BENCH_kernel.json at
# the repo root (events/sec for the hot-path workloads, pre-PR
# baseline, and the speedup ratio — see docs/performance.md).
bench:
	$(PYTHON) -m pytest -x -q benchmarks/test_kernel_throughput.py

experiments:
	$(PYTHON) -m repro all
