# Development entry points.  `make check` is the CI gate: the simlint
# static-analysis pass over src/ (per-file rules plus the `--deep`
# interprocedural pass, ratcheted against analysis-baseline.json so
# only NEW findings fail), the shardcheck shard-affinity pass (rules
# R15-R19, which also regenerates docs/shard-safety.md), the
# scalecheck growth-dimension pass (rules R22-R26, which regenerates
# docs/scale-readiness.md), the tier-1
# test suite (which includes the workers=1 vs workers=N
# parallel-determinism tests), the simsan runtime determinism
# sanitizer over a reduced-scale scenario — plain and under the
# shard-affinity model — and the observability smoke tests (trace and
# flight-record determinism + tracer/recorder overhead guards).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint shardcheck scalecheck baseline test \
	parallel-determinism shard-determinism adaptive-guard sanitize \
	sanitize-shard trace-smoke record-smoke golden-guard bench \
	bench-experiments experiments

check: lint shardcheck scalecheck test parallel-determinism \
	shard-determinism adaptive-guard sanitize sanitize-shard \
	trace-smoke record-smoke golden-guard

lint:
	$(PYTHON) -m repro.analysis --deep src/repro \
	    --baseline analysis-baseline.json

# The shard-affinity pass (rules R15-R19) over the model tree, under
# the same ratchet, regenerating the docs/shard-safety.md inventory —
# the work-list for the sharded parallel engine (ROADMAP item 1).
shardcheck:
	$(PYTHON) -m repro.analysis --shard src/repro \
	    --baseline analysis-baseline.json \
	    --shard-inventory docs/shard-safety.md

# The growth-dimension pass (rules R22-R26) over the model tree,
# under the same ratchet, regenerating the docs/scale-readiness.md
# inventory — the work-list for the brokered task-queue layer
# (ROADMAP item 2).
scalecheck:
	$(PYTHON) -m repro.analysis --scale src/repro \
	    --baseline analysis-baseline.json \
	    --scale-inventory docs/scale-readiness.md

# Regenerate the findings baseline after paying down debt (the ratchet
# only ever tightens: run this when `lint` reports stale entries, not
# to absorb new findings).
baseline:
	$(PYTHON) -m repro.analysis --deep src/repro \
	    --write-baseline analysis-baseline.json

test:
	$(PYTHON) -m pytest -x -q

# Byte-identity across worker counts, run standalone so a failure is
# unmistakably a parallelism bug (the file also runs as part of
# `test`; see docs/performance.md).
parallel-determinism:
	$(PYTHON) -m pytest -x -q tests/experiments/test_parallel_determinism.py

# Byte-identity across *shard* counts: the sharded engine's
# determinism contract says every artifact is a pure function of
# (scenario, seed), never of shard count, shard model or placement.
# Table 2 and Table 1 are compared across {1,2,4} shards under both
# the `site` and `host` shard models (host unlocks shard counts above
# the site count: one group per sample world), table2's trace and
# flight record across {1,2} shards, and the fleet scenario (the
# message-coupled multi-site world, including its merged flight
# record) across {1,4}.  The fleet flight file reuses one path so the
# printed output is comparable too.
shard-determinism:
	$(PYTHON) -m repro table2 --seed 42 --shards 1 > .shard-det-t2-1.txt
	$(PYTHON) -m repro table2 --seed 42 --shards 2 > .shard-det-t2-2.txt
	$(PYTHON) -m repro table2 --seed 42 --shards 4 > .shard-det-t2-4.txt
	$(PYTHON) -m repro table2 --seed 42 --shards 4 --shard-model host \
	    > .shard-det-t2-4h.txt
	cmp .shard-det-t2-1.txt .shard-det-t2-2.txt
	cmp .shard-det-t2-1.txt .shard-det-t2-4.txt
	cmp .shard-det-t2-1.txt .shard-det-t2-4h.txt
	$(PYTHON) -m repro table1 --seed 42 --shards 1 > .shard-det-t1-1.txt
	$(PYTHON) -m repro table1 --seed 42 --shards 4 > .shard-det-t1-4.txt
	$(PYTHON) -m repro table1 --seed 42 --shards 4 --shard-model host \
	    > .shard-det-t1-4h.txt
	cmp .shard-det-t1-1.txt .shard-det-t1-4.txt
	cmp .shard-det-t1-1.txt .shard-det-t1-4h.txt
	$(PYTHON) -m repro trace table2 --seed 42 --shards 1 \
	    --out .shard-det-trace-1.json
	$(PYTHON) -m repro trace table2 --seed 42 --shards 2 \
	    --out .shard-det-trace-2.json
	cmp .shard-det-trace-1.json .shard-det-trace-2.json
	$(PYTHON) -m repro record table2 --seed 42 --shards 1 \
	    --out .shard-det-rec-1.jsonl
	$(PYTHON) -m repro record table2 --seed 42 --shards 2 \
	    --out .shard-det-rec-2.jsonl
	cmp .shard-det-rec-1.jsonl .shard-det-rec-2.jsonl
	$(PYTHON) -m repro fleet --seed 42 --shards 1 \
	    --out .shard-det-flight.jsonl > .shard-det-fleet-1.txt
	mv .shard-det-flight.jsonl .shard-det-flight-1.jsonl
	$(PYTHON) -m repro fleet --seed 42 --shards 4 \
	    --out .shard-det-flight.jsonl > .shard-det-fleet-4.txt
	cmp .shard-det-fleet-1.txt .shard-det-fleet-4.txt
	cmp .shard-det-flight-1.jsonl .shard-det-flight.jsonl
	rm -f .shard-det-t2-*.txt .shard-det-t1-*.txt \
	    .shard-det-trace-*.json .shard-det-rec-*.jsonl \
	    .shard-det-fleet-*.txt .shard-det-flight*.jsonl

# Adaptive conservative windows must never cost barrier rounds versus
# the fixed-lookahead schedule, and every artifact except the reported
# round count must be byte-identical (window *sizes* change, delivered
# message stamps do not).  The full numbers live in BENCH_sharded.json
# (`make bench`); this is the fast regression gate.
adaptive-guard:
	$(PYTHON) -m pytest -x -q tests/experiments/test_fleet.py -k adaptive

# Replay the reduced-scale table2 scenario at seed 42 under simsan:
# zero hazards required, and the sanitized run's output must match an
# untraced run byte for byte (the sanitizer is a pure observer).
sanitize:
	$(PYTHON) -m repro sanitize table2 --seed 42

# The same replay under the shard-affinity sanitizer: partition by
# site, require zero shard violations and byte-identical output (the
# crossings count is informational; see docs/shard-safety.md).
sanitize-shard:
	$(PYTHON) -m repro sanitize table2 --seed 42 --shard-model site

# Trace the table2 scenario twice at the same seed: the exported
# Chrome-trace JSON must be byte-identical, and the null tracer must
# not tax the kernel hot path (tests/obs holds the pytest versions).
trace-smoke:
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-a.json
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-b.json
	cmp .trace-smoke-a.json .trace-smoke-b.json
	rm -f .trace-smoke-a.json .trace-smoke-b.json
	$(PYTHON) -m pytest -x -q tests/obs/test_overhead_guard.py \
	    tests/obs/test_trace_determinism.py

# Record the table2 scenario's flight data twice at the same seed:
# the exported JSONL heartbeat log must be byte-identical, and the
# recorder must not perturb the run or tax it (tests/obs and
# benchmarks/test_recorder_overhead.py hold the pytest versions).
record-smoke:
	$(PYTHON) -m repro record table2 --seed 42 --out .record-smoke-a.jsonl
	$(PYTHON) -m repro record table2 --seed 42 --out .record-smoke-b.jsonl
	cmp .record-smoke-a.jsonl .record-smoke-b.jsonl
	rm -f .record-smoke-a.jsonl .record-smoke-b.jsonl
	$(PYTHON) -m pytest -x -q tests/obs/test_recorder.py

# Model-layer fast paths must be invisible: regenerate Table 2 at
# seed 42 and byte-compare it against the committed golden (recorded
# before the fast paths landed — see docs/performance.md).
golden-guard:
	$(PYTHON) -m repro table2 --seed 42 > .golden-guard-table2.txt
	cmp benchmarks/goldens/table2-seed42.txt .golden-guard-table2.txt
	rm -f .golden-guard-table2.txt

# Kernel throughput microbenchmark: regenerates BENCH_kernel.json at
# the repo root (events/sec for the hot-path workloads, pre-PR
# baseline, and the speedup ratio — see docs/performance.md).
bench: bench-experiments
	$(PYTHON) -m pytest -x -q benchmarks/test_kernel_throughput.py
	$(PYTHON) -m pytest -x -q benchmarks/test_sharded_throughput.py

# End-to-end experiment benchmark: wall-clock of figure1/table2 at
# samples=1000 plus the staging ablation and scenario events/sec;
# regenerates BENCH_experiments.json at the repo root.  The table2 run
# alone takes minutes — this is a deliberate full-scale measurement.
bench-experiments:
	$(PYTHON) -m pytest -x -q benchmarks/test_experiment_throughput.py

experiments:
	$(PYTHON) -m repro all
