# Development entry points.  `make check` is the CI gate: the simlint
# static-analysis pass over src/ (non-zero exit on any finding) followed
# by the tier-1 test suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test experiments

check: lint test

lint:
	$(PYTHON) -m repro.analysis src/repro

test:
	$(PYTHON) -m pytest -x -q

experiments:
	$(PYTHON) -m repro all
