# Development entry points.  `make check` is the CI gate: the simlint
# static-analysis pass over src/ (non-zero exit on any finding), the
# tier-1 test suite, and the observability smoke test (trace
# determinism + null-tracer overhead guard).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test trace-smoke experiments

check: lint test trace-smoke

lint:
	$(PYTHON) -m repro.analysis src/repro

test:
	$(PYTHON) -m pytest -x -q

# Trace the table2 scenario twice at the same seed: the exported
# Chrome-trace JSON must be byte-identical, and the null tracer must
# not tax the kernel hot path (tests/obs holds the pytest versions).
trace-smoke:
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-a.json
	$(PYTHON) -m repro trace table2 --seed 42 --out .trace-smoke-b.json
	cmp .trace-smoke-a.json .trace-smoke-b.json
	rm -f .trace-smoke-a.json .trace-smoke-b.json
	$(PYTHON) -m pytest -x -q tests/obs/test_overhead_guard.py \
	    tests/obs/test_trace_determinism.py

experiments:
	$(PYTHON) -m repro all
