"""Unit tests for VM lifecycle and trap-and-emulate dilation."""

import pytest

from repro.simulation import Simulation, SimulationError
from repro.vmm import VmConfig, VmmCosts, VmState
from repro.workloads import (
    Application,
    ComputePhase,
    KernelEventRates,
    synthetic_compute,
)
from tests.support import TINY_GUEST, physical_rig, run, vm_rig


def test_vm_config_validation():
    with pytest.raises(SimulationError):
        VmConfig("vm", memory_mb=0)
    with pytest.raises(SimulationError):
        VmConfig("vm", vcpus=0)
    assert VmConfig("vm", memory_mb=128).memory_bytes == 128 * 1024 * 1024


def test_vmm_costs_validation():
    with pytest.raises(SimulationError):
        VmmCosts(sys_dilation=0.5)
    with pytest.raises(SimulationError):
        VmmCosts(world_switch=-1.0)


def test_vm_starts_defined():
    sim = Simulation()
    _vmm, _image, vm = vm_rig(sim)
    assert vm.state is VmState.DEFINED
    assert vm.is_virtual
    assert not vm.guest_os.booted


def test_vm_cannot_compute_before_start():
    sim = Simulation()
    _vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, vm.run_compute("p", 1.0, 0.0, KernelEventRates()))


def test_power_on_boot_runs_guest_boot():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    duration = run(sim, vmm.power_on(vm, mode="boot"))
    assert vm.state is VmState.RUNNING
    assert vm.guest_os.booted
    # At least VMM start + memory init.
    assert duration > vmm.costs.start_seconds


def test_user_dilation_scales_with_fault_rate():
    """The mechanism behind SPECseis 1% vs SPECclimate 4% (Table 1)."""
    def observed_user(pf_rate):
        sim = Simulation()
        vmm, _image, vm = vm_rig(sim)
        run(sim, vmm.power_on(vm, mode="boot"))
        rates = KernelEventRates(pagefaults_per_sec=pf_rate)
        user, _sys = run(sim, vm.run_compute("p", 100.0, 0.0, rates))
        return user

    low = observed_user(200.0)
    high = observed_user(1500.0)
    assert low > 100.0                       # always some dilation (timer)
    assert high > low
    # Roughly 1500 faults/s * 25 us = 3.75% extra.
    assert high == pytest.approx(100.0 * (1 + 1500 * 2.5e-5 + 100 * 5e-6),
                                 rel=1e-6)


def test_sys_dilation_applied():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    _user, sys = run(sim, vm.run_compute("p", 0.0, 10.0,
                                         KernelEventRates()))
    assert sys == pytest.approx(10.0 * vmm.costs.sys_dilation)


def test_syscall_traps_show_as_sys_time():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    rates = KernelEventRates(syscalls_per_sec=1000.0)
    _user, sys = run(sim, vm.run_compute("p", 10.0, 0.0, rates))
    assert sys == pytest.approx(10.0 * 1000.0 * vmm.costs.syscall_trap)


def test_guest_application_slower_than_physical():
    """The core Figure 1 fact: VM adds a small overhead, <= ~10%."""
    sim = Simulation()
    # Physical run.
    _machine, host = physical_rig(sim, name="phys")
    from tests.support import booted_host_os
    host_os = booted_host_os(sim, host)
    app = synthetic_compute(10.0)
    phys = run(sim, host_os.run_application(app))

    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    rates = KernelEventRates(syscalls_per_sec=200.0,
                             pagefaults_per_sec=120.0)
    guest = run(sim, vm.guest_os.run_application(
        Application("spin", [ComputePhase(10.0, 0.0, rates)])))
    slowdown = guest.wall_time / phys.wall_time
    assert 1.0 < slowdown < 1.10


def test_guest_io_charges_device_emulation():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    native = vm.os_costs.io_sys_seconds(1_000_000, 16)
    virtual = vm.io_sys_seconds(1_000_000, 16)
    assert virtual > native


def test_freeze_stops_progress():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(5.0)))
    sim.run(until=sim.now + 1.0)
    vm.freeze()
    assert vm.frozen
    frozen_at = sim.now
    sim.run(until=frozen_at + 100.0)
    assert proc.is_alive  # made no progress while frozen
    vm.unfreeze()
    sim.run()
    assert not proc.is_alive


def test_charge_sys_folds_into_next_compute():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    vm.charge_sys(3.0)
    _user, sys = run(sim, vm.run_compute("p", 1.0, 0.0,
                                         KernelEventRates()))
    assert sys >= 3.0
    # Drained: the next call does not double-charge.
    _user, sys2 = run(sim, vm.run_compute("p", 1.0, 0.0,
                                          KernelEventRates()))
    assert sys2 < 1.0


def test_charge_sys_validation():
    sim = Simulation()
    _vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        vm.charge_sys(-1.0)


def test_state_summary():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    info = vm.state_summary()
    assert info["name"] == "vm1"
    assert info["state"] == "defined"
    assert info["host"] == vmm.machine.name
    assert info["disk_mode"] == "nonpersistent"
