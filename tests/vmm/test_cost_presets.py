"""Tests for the VMM cost presets (Section 2.3's optimization story)."""

import pytest

from repro.simulation import Simulation
from repro.vmm import VmmCosts
from repro.workloads import Application, ComputePhase, KernelEventRates
from tests.support import run, vm_rig


def test_presets_ordering():
    base = VmmCosts.workstation_3_0a()
    fast = VmmCosts.optimized()
    slow = VmmCosts.naive()
    assert fast.pagefault_trap < base.pagefault_trap < slow.pagefault_trap
    assert fast.sys_dilation < base.sys_dilation < slow.sys_dilation
    assert fast.world_switch < base.world_switch < slow.world_switch
    # Start costs are about process mechanics, not emulation: unchanged.
    assert fast.start_seconds == base.start_seconds


def test_presets_validate():
    # All presets satisfy the dataclass invariants (sys_dilation >= 1).
    for preset in (VmmCosts.workstation_3_0a(), VmmCosts.optimized(),
                   VmmCosts.naive()):
        assert preset.sys_dilation >= 1.0


def overhead_with(costs):
    from repro.vmm import VirtualMachineMonitor
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    # Swap the cost model before power-on.
    vm.costs = costs
    vmm.costs = costs
    run(sim, vmm.power_on(vm, mode="boot"))
    rates = KernelEventRates(syscalls_per_sec=100.0,
                             pagefaults_per_sec=1000.0)
    app = Application("probe", [ComputePhase(100.0, 1.0, rates)])
    result = run(sim, vm.guest_os.run_application(app))
    return result.cpu_time / 101.0 - 1.0


def test_optimized_vmm_halves_overhead_or_better():
    base = overhead_with(VmmCosts.workstation_3_0a())
    optimized = overhead_with(VmmCosts.optimized())
    naive = overhead_with(VmmCosts.naive())
    assert optimized < base / 2
    assert naive > 2 * base
