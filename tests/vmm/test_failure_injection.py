"""Failure injection: VM crashes, host failures, and grid recovery."""

import pytest

from repro.simulation import SimulationError
from repro.vmm import VmCrashed, VmState
from repro.workloads import synthetic_compute
from tests.support import TINY_GUEST, demo_grid, run, tiny_session_config, vm_rig
from repro.simulation import Simulation


def test_crash_interrupts_running_computation():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(60.0)))
    sim.run(until=sim.now + 5.0)

    vm.crash()
    assert vm.state is VmState.TERMINATED
    assert vm not in vmm.vms
    with pytest.raises(VmCrashed):
        sim.run_until_complete(proc)


def test_crash_leaves_no_cpu_residue():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(60.0)))
    sim.run(until=sim.now + 5.0)
    vm.crash()
    with pytest.raises(VmCrashed):
        sim.run_until_complete(proc)
    sim.run()
    # The guest's task was cancelled off the host CPU.
    cpu = vmm.machine.cpu
    assert not any(t.group is vm.group for t in cpu.active_tasks)


def test_crash_requires_live_vm():
    sim = Simulation()
    _vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        vm.crash()  # still DEFINED


def test_crashed_vm_rejects_new_work():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    vm.crash()
    with pytest.raises(SimulationError):
        run(sim, vm.guest_os.run_application(synthetic_compute(1.0)))


def test_host_failure_kills_all_resident_vms():
    sim = Simulation()
    vmm, image, vm1 = vm_rig(sim)
    from repro.vmm import VmConfig
    vm2 = vmm.create_vm(VmConfig("vm2", guest_profile=TINY_GUEST), image)
    run(sim, vmm.power_on(vm1, mode="boot"))
    run(sim, vmm.power_on(vm2, mode="boot"))

    casualties = vmm.host_failure()
    assert sorted(vm.name for vm in casualties) == ["vm1", "vm2"]
    assert vmm.vms == []
    assert all(vm.state is VmState.TERMINATED for vm in casualties)


def test_grid_level_recovery_after_host_failure():
    """The paper's resilience story: computation is data, so a dead
    host just means re-instantiating the environment elsewhere."""
    grid = demo_grid()
    grid.add_compute_host("compute2", site="uf")

    session = grid.new_session(tiny_session_config(
        host_constraints={"host": "compute1"}))
    grid.run(session.establish())
    job = grid.sim.spawn(session.run_application(synthetic_compute(50.0)))
    grid.sim.run(until=grid.sim.now + 5.0)

    # compute1 dies mid-computation.
    grid.vmm_for("compute1").host_failure()
    with pytest.raises(VmCrashed):
        grid.sim.run_until_complete(job)

    # Recovery: a fresh session restores the same warm image on the
    # surviving host — nothing about the user's environment was lost.
    retry = grid.new_session(tiny_session_config(
        vm_name="ana-retry",
        host_constraints={"host": "compute2"}))
    grid.run(retry.establish())
    assert retry.vm.vmm.machine.name == "compute2"
    result = grid.run(retry.run_application(synthetic_compute(50.0)))
    assert result.user_time > 50.0 * 0.99
