"""Persistent-mode virtual disk behaviours (the other Table 2 column)."""

import random

import pytest

from repro.simulation import Simulation
from repro.vmm import DiskImage, VirtualDisk
from tests.support import GB, MB, physical_rig, run


def persistent_disk(sim, host, size=1 * GB):
    image = DiskImage(host.root_fs, "private.img", size, create=True)
    return VirtualDisk(sim, "vm1", image, mode="persistent",
                       rng=random.Random(2))


def test_persistent_writes_hit_private_copy():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = persistent_disk(sim, host)
    written_before = host.root_fs.disk.bytes_written
    run(sim, vdisk.write(4 * MB, sequential=True))
    assert host.root_fs.disk.bytes_written - written_before >= 4 * MB
    assert vdisk.diff_bytes == 0


def test_persistent_written_blocks_read_back_from_base():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = persistent_disk(sim, host)
    run(sim, vdisk.write(2 * MB, sequential=True))
    base_before = vdisk.bytes_from_base
    run(sim, vdisk.read_at(0, 2 * MB))
    # The private copy serves the modified blocks (no diff involved).
    assert vdisk.bytes_from_base > base_before
    assert vdisk.bytes_from_diff == 0


def test_persistent_disk_survives_reads_beyond_written_region():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = persistent_disk(sim, host)
    run(sim, vdisk.write(1 * MB, sequential=True))
    run(sim, vdisk.read(8 * MB, sequential=True))
    assert vdisk.bytes_from_base >= 8 * MB


def test_rebind_persistent_without_diff_fs():
    sim = Simulation()
    _m1, host1 = physical_rig(sim, name="a")
    _m2, host2 = physical_rig(sim, name="b")
    vdisk = persistent_disk(sim, host1)
    new_image = DiskImage(host2.root_fs, "private.img", 1 * GB,
                          create=True)
    # Persistent disks carry no diff: rebind needs no diff_fs.
    vdisk.rebind(new_image, None)
    assert vdisk.base is new_image
