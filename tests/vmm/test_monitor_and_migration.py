"""Unit tests for the VMM lifecycle driver and migration."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.simulation import Simulation, SimulationError
from repro.storage import FileStager
from repro.vmm import DiskImage, VirtualMachineMonitor, VmConfig, VmState, migrate
from repro.workloads import synthetic_compute
from tests.support import GB, TINY_GUEST, physical_rig, run, vm_rig


def test_duplicate_vm_name_rejected():
    sim = Simulation()
    vmm, image, _vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        vmm.create_vm(VmConfig("vm1", guest_profile=TINY_GUEST), image)


def test_admission_control_rejects_memory_overcommit():
    """Step 4's negotiation: a host only admits VMs it can back."""
    sim = Simulation()
    vmm, image, _vm = vm_rig(sim)  # host has 1024 MB -> 768 MB budget
    from repro.vmm import VmConfig
    vmm.create_vm(VmConfig("big", memory_mb=512,
                           guest_profile=TINY_GUEST), image)
    with pytest.raises(SimulationError, match="guest budget"):
        vmm.create_vm(VmConfig("too-big", memory_mb=256,
                               guest_profile=TINY_GUEST), image)
    # Destroying a VM frees its memory for new admissions.
    vmm.destroy(vmm.lookup("big"))
    vmm.create_vm(VmConfig("now-fits", memory_mb=256,
                           guest_profile=TINY_GUEST), image)


def test_lookup():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    assert vmm.lookup("vm1") is vm
    with pytest.raises(SimulationError):
        vmm.lookup("ghost")


def test_restore_faster_than_boot():
    """Table 2's headline: VM-restore beats VM-reboot by a large factor."""
    from repro.guestos import GuestOsProfile
    profile = GuestOsProfile(kernel_read_bytes=8 * 1024 * 1024,
                             scattered_reads=1500, boot_cpu_user=3.0,
                             boot_cpu_sys=3.0, boot_jitter=0.0,
                             boot_footprint_bytes=256 * 1024 * 1024)

    def startup(mode):
        sim = Simulation()
        vmm, _image, vm = vm_rig(sim, memory_mb=64, profile=profile)
        memstate = None
        if mode == "restore":
            vmm.host.root_fs.create("vm1.memstate",
                                    vm.config.memory_bytes)
            memstate = (vmm.host.root_fs, "vm1.memstate")
        return run(sim, vmm.power_on(vm, mode=mode, memstate=memstate))

    boot = startup("boot")
    restore = startup("restore")
    assert restore < boot / 2


def test_restore_requires_memstate():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, vmm.power_on(vm, mode="restore"))


def test_power_on_unknown_mode():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, vmm.power_on(vm, mode="hibernate"))


def test_power_on_twice_rejected():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    with pytest.raises(SimulationError):
        run(sim, vmm.power_on(vm, mode="boot"))


def test_remote_memstate_charges_cpu():
    """A remote state fetch costs client-stack CPU, consumed at resume."""
    def restore_time(remote):
        sim = Simulation()
        vmm, _image, vm = vm_rig(sim)
        vmm.host.root_fs.create("vm1.memstate", vm.config.memory_bytes)
        return run(sim, vmm.power_on(
            vm, mode="restore",
            memstate=(vmm.host.root_fs, "vm1.memstate"),
            memstate_is_remote=remote))

    local = restore_time(False)
    remote = restore_time(True)
    from repro.vmm import VmmCosts
    expected_extra = (128 * 1024 * 1024
                      * VmmCosts().remote_state_cpu_per_byte)
    assert remote - local == pytest.approx(expected_extra, rel=0.2)


def test_suspend_resume_cycle():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(10.0)))
    sim.run(until=sim.now + 2.0)

    filename = run(sim, vmm.suspend(vm, vmm.host.root_fs))
    assert vm.state is VmState.SUSPENDED
    assert vmm.host.root_fs.size(filename) == vm.config.memory_bytes
    suspended_at = sim.now
    sim.run(until=suspended_at + 50.0)
    assert proc.is_alive  # no progress while suspended

    run(sim, vmm.resume(vm, vmm.host.root_fs))
    assert vm.state is VmState.RUNNING
    sim.run()
    assert not proc.is_alive


def test_suspend_requires_running():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, vmm.suspend(vm, vmm.host.root_fs))


def test_shutdown_terminates_and_removes():
    sim = Simulation()
    vmm, _image, vm = vm_rig(sim)
    run(sim, vmm.power_on(vm, mode="boot"))
    run(sim, vmm.shutdown(vm))
    assert vm.state is VmState.TERMINATED
    assert vm not in vmm.vms


# ---------------------------------------------------------------------------
# Migration
# ---------------------------------------------------------------------------

def migration_rig(sim):
    net = Network.single_lan(sim, ["src", "dst"])
    engine = FlowEngine(sim, net)
    _m1, host1 = physical_rig(sim, name="src")
    _m2, host2 = physical_rig(sim, name="dst")
    vmm1 = VirtualMachineMonitor(host1)
    vmm2 = VirtualMachineMonitor(host2)
    image1 = DiskImage(host1.root_fs, "rh72.img", 1 * GB, create=True)
    image2 = DiskImage(host2.root_fs, "rh72.img", 1 * GB, create=True)
    config = VmConfig("vm1", guest_profile=TINY_GUEST)
    vm = vmm1.create_vm(config, image1)
    stager = FileStager(sim, engine, handshake_time=0.1)
    return vmm1, vmm2, image2, vm, stager


def test_migration_moves_running_vm():
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(30.0)))
    sim.run(until=sim.now + 5.0)

    downtime = run(sim, migrate(vm, vmm2, stager, image2))
    assert vm.state is VmState.RUNNING
    assert vm.vmm is vmm2
    assert vm in vmm2.vms and vm not in vmm1.vms
    assert downtime > 0
    # The in-flight computation survives and completes on the new host.
    sim.run()
    assert not proc.is_alive
    result = vm.guest_os.results[-1]
    assert result.user_time > 30.0 * 0.99


def test_migration_downtime_stalls_guest_work():
    """Work must not progress while the VM is in flight (regression:
    the fluid CPU model once re-rated the frozen gap retroactively)."""
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    start = sim.now
    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(20.0)))
    sim.run(until=start + 5.0)
    downtime = run(sim, migrate(vm, vmm2, stager, image2))
    sim.run_until_complete(proc)
    completion = sim.now - start
    # 20 s of work (plus small dilation) + the full downtime.
    assert completion >= 20.0 + downtime
    assert completion < 21.0 + downtime + 1.0


def test_migration_checks_destination_capacity():
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    # Fill the destination's guest-memory budget.
    from repro.vmm import VmConfig
    vmm2.create_vm(VmConfig("resident", memory_mb=700,
                            guest_profile=TINY_GUEST), image2)
    with pytest.raises(SimulationError, match="memory budget"):
        run(sim, migrate(vm, vmm2, stager, image2))
    # Nothing was frozen: the VM still runs at the source.
    assert vm.state is VmState.RUNNING
    assert not vm.frozen


def test_migration_requires_running_vm():
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, migrate(vm, vmm2, stager, image2))


def test_migration_to_same_host_rejected():
    sim = Simulation()
    vmm1, _vmm2, _image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    image_same = DiskImage(vmm1.host.root_fs, "rh72.img", 1 * GB)
    with pytest.raises(SimulationError):
        run(sim, migrate(vm, vmm1, stager, image_same))


def test_migration_ships_diff_file():
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    # Make the guest write something so the diff is non-empty.
    from repro.workloads import Application, IoPhase
    writer = Application("w", [IoPhase("/scratch", 4 * 1024 * 1024,
                                       write=True)])
    run(sim, vm.guest_os.run_application(writer))
    assert vm.vdisk.diff_bytes > 0
    run(sim, migrate(vm, vmm2, stager, image2))
    assert vmm2.host.root_fs.exists(vm.vdisk.diff_name)


def test_migration_preserves_guest_mounts():
    """'Keeping remote data connections active': mounts follow the VM."""
    sim = Simulation()
    vmm1, vmm2, image2, vm, stager = migration_rig(sim)
    run(sim, vmm1.power_on(vm, mode="boot"))
    marker = object()
    vm.guest_os.mount("/remote-data", marker)
    run(sim, migrate(vm, vmm2, stager, image2))
    assert vm.guest_os.mounts["/remote-data"] is marker
