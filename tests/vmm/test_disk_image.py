"""Unit tests for virtual disks (persistent and copy-on-write)."""

import random

import pytest

from repro.simulation import Simulation, SimulationError
from repro.vmm import DiskImage, VirtualDisk
from tests.support import GB, MB, physical_rig, run


def make_vdisk(sim, host, mode="nonpersistent", size=1 * GB,
               remote_cpu_per_byte=0.0):
    image = DiskImage(host.root_fs, "base.img", size, create=True)
    return VirtualDisk(sim, "vm1", image, mode=mode,
                       diff_fs=host.root_fs, rng=random.Random(1),
                       remote_cpu_per_byte=remote_cpu_per_byte)


def test_image_must_exist_or_be_created():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    with pytest.raises(SimulationError):
        DiskImage(host.root_fs, "missing.img", 1 * GB)
    image = DiskImage(host.root_fs, "new.img", 1 * GB, create=True)
    assert host.root_fs.exists("new.img")
    assert image.size_bytes == 1 * GB


def test_image_size_validation():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    with pytest.raises(SimulationError):
        DiskImage(host.root_fs, "x", 0, create=True)


def test_nonpersistent_needs_diff_fs():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    image = DiskImage(host.root_fs, "b.img", 1 * GB, create=True)
    with pytest.raises(SimulationError):
        VirtualDisk(sim, "vm", image, mode="nonpersistent", diff_fs=None)


def test_unknown_mode_rejected():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    image = DiskImage(host.root_fs, "b.img", 1 * GB, create=True)
    with pytest.raises(SimulationError):
        VirtualDisk(sim, "vm", image, mode="weird", diff_fs=host.root_fs)


def test_read_pulls_from_base_image():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    run(sim, vdisk.read(1 * MB, sequential=True))
    assert vdisk.bytes_from_base >= 1 * MB
    assert vdisk.bytes_from_diff == 0


def test_write_nonpersistent_goes_to_diff():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    run(sim, vdisk.write(2 * MB, sequential=True))
    assert vdisk.diff_bytes >= 2 * MB
    assert vdisk.bytes_written == 2 * MB
    # The base image was not touched.
    assert host.root_fs.size("base.img") == 1 * GB


def test_written_blocks_reread_from_diff():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    # Sequential write then sequential read from offset 0 covers the
    # same blocks (cursor reset via explicit read_at).
    run(sim, vdisk.write(1 * MB, sequential=True))
    run(sim, vdisk.read_at(0, 1 * MB))
    assert vdisk.bytes_from_diff > 0


def test_write_persistent_goes_to_base():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host, mode="persistent")
    run(sim, vdisk.write(2 * MB, sequential=True))
    assert vdisk.diff_bytes == 0
    assert host.root_fs.disk.bytes_written if hasattr(
        host.root_fs, "disk") else True


def test_sequential_reads_advance_cursor():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    run(sim, vdisk.read(1 * MB, sequential=True))
    cursor_after_first = vdisk._cursor
    run(sim, vdisk.read(1 * MB, sequential=True))
    assert vdisk._cursor > cursor_after_first


def test_remote_cpu_accumulates_and_drains():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host, remote_cpu_per_byte=1e-8)
    run(sim, vdisk.read(10 * MB, sequential=True))
    pending = vdisk.drain_pending_io_cpu()
    assert pending == pytest.approx(10 * MB * 1e-8, rel=0.05)
    assert vdisk.drain_pending_io_cpu() == 0.0


def test_zero_read_write_are_noops():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    run(sim, vdisk.read(0))
    run(sim, vdisk.write(0))
    assert vdisk.bytes_from_base == 0
    assert vdisk.bytes_written == 0


def test_negative_sizes_rejected():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    vdisk = make_vdisk(sim, host)
    with pytest.raises(SimulationError):
        run(sim, vdisk.read(-1))
    with pytest.raises(SimulationError):
        run(sim, vdisk.write(-1))


def test_rebind_moves_base_and_diff():
    sim = Simulation()
    _machine1, host1 = physical_rig(sim, name="src")
    _machine2, host2 = physical_rig(sim, name="dst")
    vdisk = make_vdisk(sim, host1)
    run(sim, vdisk.write(1 * MB, sequential=True))
    new_image = DiskImage(host2.root_fs, "base.img", 1 * GB, create=True)
    vdisk.rebind(new_image, host2.root_fs, remote_cpu_per_byte=0.0)
    assert vdisk.base is new_image
    assert vdisk.diff_fs is host2.root_fs
    # Diff file exists at the destination (staged or recreated).
    assert host2.root_fs.exists(vdisk.diff_name)


def test_rebind_size_mismatch_rejected():
    sim = Simulation()
    _machine1, host1 = physical_rig(sim, name="src")
    _machine2, host2 = physical_rig(sim, name="dst")
    vdisk = make_vdisk(sim, host1)
    other = DiskImage(host2.root_fs, "other.img", 2 * GB, create=True)
    with pytest.raises(SimulationError):
        vdisk.rebind(other, host2.root_fs)
