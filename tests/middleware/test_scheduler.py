"""Tests for the prediction-driven metascheduler."""

import pytest

from repro.middleware import MetaScheduler
from repro.simulation import SimulationError
from repro.workloads import HostLoadTrace, LoadPlayback, synthetic_compute
from tests.support import TINY_GUEST, booted_host_os, demo_grid


def scheduler_grid(busy_host_load=1.5):
    """Two compute hosts; compute2 carries a steady background load."""
    grid = demo_grid()
    grid.add_compute_host("compute2", site="uf")
    # Background load on compute2's host OS.
    host = grid.host_for("compute2")
    os = booted_host_os(grid.sim, host)
    trace = HostLoadTrace([busy_host_load] * 5000, interval=1.0)
    grid.sim.spawn(LoadPlayback(os, trace).run(5000.0))
    return grid


def make_scheduler(grid, policy="predictive"):
    scheduler = MetaScheduler(grid, "rh72", policy=policy,
                              session_overrides={
                                  "user": "ana",
                                  "guest_profile": TINY_GUEST})
    scheduler.watch("compute1")
    scheduler.watch("compute2")
    return scheduler


def test_policy_validation():
    grid = demo_grid()
    with pytest.raises(SimulationError):
        MetaScheduler(grid, "rh72", policy="clairvoyant")


def test_watch_rejects_duplicates_and_unknown():
    grid = demo_grid()
    scheduler = MetaScheduler(grid, "rh72")
    scheduler.watch("compute1")
    with pytest.raises(SimulationError):
        scheduler.watch("compute1")
    with pytest.raises(SimulationError):
        scheduler.watch("ghost")


def test_predictive_scheduler_avoids_busy_host():
    grid = scheduler_grid(busy_host_load=2.5)
    scheduler = make_scheduler(grid)
    grid.sim.run(until=60.0)   # let the sensors observe

    decision = grid.run(scheduler.submit(synthetic_compute(20.0)))
    assert decision.host == "compute1"
    assert decision.predictions["compute2"] \
        > decision.predictions["compute1"]
    assert decision.actual_wall is not None


def test_prediction_tracks_actual():
    grid = scheduler_grid(busy_host_load=1.0)
    scheduler = make_scheduler(grid)
    grid.sim.run(until=60.0)
    grid.run(scheduler.submit(synthetic_compute(20.0)))
    # Within 30%: the forecast was made before the VM's own dilation
    # and startup, so exact agreement is not expected.
    assert scheduler.mean_absolute_prediction_error() < 0.3


def test_random_policy_records_no_predictions():
    grid = scheduler_grid()
    scheduler = make_scheduler(grid, policy="random")
    grid.sim.run(until=30.0)
    decision = grid.run(scheduler.submit(synthetic_compute(5.0)))
    assert decision.predictions == {}
    assert decision.predicted_wall is None
    with pytest.raises(SimulationError):
        scheduler.mean_absolute_prediction_error()


def test_submit_requires_capable_watched_host():
    grid = demo_grid()
    scheduler = MetaScheduler(grid, "rh72")
    # Nothing watched yet.
    with pytest.raises(SimulationError):
        grid.run(scheduler.submit(synthetic_compute(1.0)))


def test_jobs_get_sequential_names_and_cleanup():
    grid = scheduler_grid()
    scheduler = make_scheduler(grid)
    grid.sim.run(until=30.0)
    d1 = grid.run(scheduler.submit(synthetic_compute(2.0)))
    d2 = grid.run(scheduler.submit(synthetic_compute(2.0)))
    assert d1.job != d2.job
    # Sessions were shut down: no VMs remain registered.
    assert grid.info.select("vms") == []
