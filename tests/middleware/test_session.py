"""End-to-end tests of the six-step grid session (Figure 3)."""

import pytest

from repro.middleware import SessionConfig
from repro.middleware.accounts import AuthorizationError
from repro.simulation import SimulationError
from repro.vmm import VmState
from repro.workloads import Application, IoPhase, synthetic_compute
from tests.support import demo_grid, tiny_session_config


def test_session_config_validation():
    with pytest.raises(SimulationError):
        SessionConfig(user="u", image="i", image_access="carrier-pigeon")
    with pytest.raises(SimulationError):
        SessionConfig(user="u", image="i", start_mode="warp")
    with pytest.raises(SimulationError):
        SessionConfig(user="u", image="i", networking="telepathy")
    with pytest.raises(SimulationError):
        # Persistent disks require the explicit local copy.
        SessionConfig(user="u", image="i", disk_mode="persistent",
                      image_access="pvfs")


def test_full_session_lifecycle_restore_pvfs():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())

    assert session.established
    assert session.vm.state is VmState.RUNNING
    assert session.vm.guest_os.booted
    assert session.vm.address is not None          # DHCP-assigned
    assert session.vm.owner == "ana"
    # All five establishment steps recorded with durations.
    assert [s.index for s in session.steps] == [1, 2, 3, 4, 5]
    assert all(s.duration is not None for s in session.steps)
    # The information service now lists the VM and a decremented future.
    assert grid.info.select("vms", name=session.vm.name)
    futures = grid.info.select("vm_futures", host="compute1")
    assert futures[0]["count"] == 3
    # The logical account tracks ownership.
    assert session.vm.name in grid.accounts.lookup("ana").vms


def test_session_runs_application():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    result = grid.run(session.run_application(synthetic_compute(5.0)))
    assert result.user_time > 5.0          # dilated by the VMM
    assert result.user_time < 5.0 * 1.1    # ... by less than 10%
    assert session.steps[-1].index == 6


def test_session_boot_mode_slower_than_restore():
    """With a realistic boot footprint (>> memory state), restore wins."""
    from repro.guestos import GuestOsProfile
    profile = GuestOsProfile(scattered_reads=6000, boot_jitter=0.0)

    def establish_time(start_mode):
        grid = demo_grid()
        session = grid.new_session(tiny_session_config(
            start_mode=start_mode, guest_profile=profile))
        grid.run(session.establish())
        return grid.sim.now

    assert establish_time("boot") > establish_time("restore")


def test_session_local_copy_stages_whole_image():
    grid = demo_grid(image_size=64 * 1024 * 1024)
    session = grid.new_session(tiny_session_config(
        image_access="local-copy", disk_mode="persistent"))
    grid.run(session.establish())
    # The private copy landed on the compute host's disk.
    host_fs = grid.host_for("compute1").root_fs
    assert host_fs.exists("rh72.private")
    assert grid.gridftp.bytes_moved >= 64 * 1024 * 1024


def test_session_tunnel_networking():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(networking="tunnel"))
    grid.run(session.establish())
    assert session.tunnel is not None
    assert session.tunnel.established
    assert session.vm.address.startswith("home-net/")
    assert session.lease is None


def test_session_user_data_mounted_in_guest():
    grid = demo_grid()
    grid.data_server.store("ana", "input.dat", 8 * 1024 * 1024)
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    assert "/home/ana" in session.guest_os.mounts
    reader = Application("read-home",
                         [IoPhase("/home/ana/input.dat", 4 * 1024 * 1024)])
    # The file must be visible through the guest mount without
    # provisioning (it lives on the data server).
    fs, name = session.guest_os.resolve("/home/ana/input.dat")
    assert fs.exists("input.dat") or fs.exists(name)


def test_session_writeback_sync():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    writer = Application("write-home",
                         [IoPhase("/home/ana/results.out",
                                  2 * 1024 * 1024, write=True)])
    grid.run(session.run_application(writer))
    flushed = grid.run(session.sync_user_data())
    assert flushed >= 2 * 1024 * 1024


def test_session_shutdown_releases_everything():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    vm_name = session.vm.name
    lease = session.lease
    grid.run(session.shutdown())
    assert session.vm.state is VmState.TERMINATED
    assert not lease.active
    assert not grid.info.select("vms", name=vm_name)
    assert vm_name not in grid.accounts.lookup("ana").vms
    assert not session.established


def test_session_requires_authorization():
    grid = demo_grid()
    grid.accounts.create_user("mallory")  # no rights granted
    session = grid.new_session(tiny_session_config(user="mallory"))
    with pytest.raises(AuthorizationError):
        grid.run(session.establish())


def test_session_unknown_image():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(image="windows-me"))
    with pytest.raises(SimulationError):
        grid.run(session.establish())


def test_session_no_capable_future():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(memory_mb=4096))
    with pytest.raises(SimulationError):
        grid.run(session.establish())


def test_run_application_before_establish_rejected():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    with pytest.raises(SimulationError):
        grid.run(session.run_application(synthetic_compute(1.0)))


def test_two_users_multiplexed_on_one_host():
    """Figure 2's scenario: users A and B share server V via two VMs."""
    grid = demo_grid()
    grid.add_user("bob")
    s1 = grid.new_session(tiny_session_config(vm_name="ana-vm"))
    s2 = grid.new_session(tiny_session_config(user="bob", vm_name="bob-vm"))
    grid.run(s1.establish())
    grid.run(s2.establish())
    assert s1.vmm is s2.vmm                    # same physical host
    assert s1.vm is not s2.vm                  # isolated VMs
    assert s1.vm.address != s2.vm.address
    # Both run work concurrently without sharing accounting.
    p1 = grid.sim.spawn(s1.run_application(synthetic_compute(3.0)))
    p2 = grid.sim.spawn(s2.run_application(synthetic_compute(3.0)))
    grid.sim.run()
    assert not p1.is_alive and not p2.is_alive
    assert len(s1.guest_os.results) == 1
    assert len(s2.guest_os.results) == 1


def test_timeline_is_printable():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    lines = session.timeline()
    assert len(lines) == 5
    assert all("step" in line for line in lines)
