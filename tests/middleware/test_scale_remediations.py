"""Regression tests for the scalecheck hot-path remediations.

Each class here pins the *observable* behavior of a structure that was
re-keyed or given an eviction path by the growth-dimension pass (R22-
R26 over ``src/repro``): the indexed information-service tables, the
name-keyed VMM admission map, the DHCP lease eviction, the provider's
user set, and the metascheduler's interval pruning.  Seed-42 byte
identity of the experiment goldens is enforced separately by
``make golden-guard``; these tests cover the edge cases the goldens
never reach.
"""

import pytest

from repro.middleware.frontend import ServiceProvider
from repro.middleware.information import InformationService
from repro.middleware.scheduler import MetaScheduler
from repro.gridnet.dhcp import DhcpServer
from repro.simulation import Simulation, SimulationError
from tests.support import TINY_GUEST, run, vm_rig


# ---------------------------------------------------------------------------
# InformationService: rid-keyed tables + exact-value inverted index
# ---------------------------------------------------------------------------

class TestInformationIndex:
    def _service(self):
        return InformationService(Simulation())

    def test_select_preserves_registration_order(self):
        info = self._service()
        for name in ("c", "a", "b"):
            info.register("vms", {"name": name, "site": "uf"})
        assert [r["name"] for r in info.select("vms", site="uf")] \
            == ["c", "a", "b"]

    def test_unregister_uses_the_index(self):
        info = self._service()
        for index in range(4):
            info.register("vms", {"name": "vm%d" % index,
                                  "host": "h%d" % (index % 2)})
        assert info.unregister("vms", host="h0") == 2
        assert info.table_size("vms") == 2
        assert [r["name"] for r in info.select("vms")] == ["vm1", "vm3"]

    def test_unregister_unseen_value_is_a_miss_not_a_scan(self):
        info = self._service()
        info.register("vms", {"name": "vm1"})
        assert info.unregister("vms", name="ghost") == 0
        assert info.table_size("vms") == 1

    def test_unhashable_values_fall_back_to_full_scan(self):
        info = self._service()
        info.register("machines", {"name": "m1", "tags": ["gpu"]})
        info.register("machines", {"name": "m2", "tags": ["cpu"]})
        assert info.unregister("machines", tags=["gpu"]) == 1
        assert [r["name"] for r in info.select("machines")] == ["m2"]

    def test_reregistration_after_unregister(self):
        info = self._service()
        info.register("vms", {"name": "vm1", "state": "up"})
        info.unregister("vms", name="vm1")
        info.register("vms", {"name": "vm1", "state": "down"})
        assert info.select("vms", name="vm1")[0]["state"] == "down"
        assert info.unregister("vms", name="vm1", state="up") == 0


# ---------------------------------------------------------------------------
# VirtualMachineMonitor: name-keyed admission map + resident counter
# ---------------------------------------------------------------------------

class TestMonitorAdmission:
    def test_vms_property_preserves_admission_order(self):
        sim = Simulation()
        from repro.vmm import VmConfig
        vmm, image, _vm = vm_rig(sim)
        vmm.create_vm(VmConfig("vm2", memory_mb=64,
                               guest_profile=TINY_GUEST), image)
        assert [vm.name for vm in vmm.vms] == ["vm1", "vm2"]

    def test_resident_mb_follows_create_and_destroy(self):
        sim = Simulation()
        from repro.vmm import VmConfig
        vmm, image, vm = vm_rig(sim)
        before = vmm.resident_mb
        other = vmm.create_vm(VmConfig("vm2", memory_mb=64,
                                       guest_profile=TINY_GUEST), image)
        assert vmm.resident_mb == before + 64
        vmm.destroy(other)
        assert vmm.resident_mb == before
        assert [v.name for v in vmm.vms] == [vm.name]

    def test_crash_evicts_from_the_admission_map(self):
        sim = Simulation()
        vmm, _image, vm = vm_rig(sim)
        run(sim, vmm.power_on(vm))
        vm.crash()
        assert vmm.vms == [] and vmm.resident_mb == 0
        with pytest.raises(SimulationError):
            vmm.lookup(vm.name)


# ---------------------------------------------------------------------------
# DhcpServer: spent leases are evicted, not archived
# ---------------------------------------------------------------------------

class TestDhcpEviction:
    def test_release_returns_address_and_drops_the_lease(self):
        sim = Simulation()
        server = DhcpServer(sim, pool_size=2)
        lease = run(sim, server.acquire("vm1"))
        assert server.available == 1
        server.release(lease)
        assert server.available == 2 and server.active_leases == []

    def test_double_release_still_rejected(self):
        sim = Simulation()
        server = DhcpServer(sim, pool_size=2)
        lease = run(sim, server.acquire("vm1"))
        server.release(lease)
        with pytest.raises(SimulationError):
            server.release(lease)

    def test_lease_table_size_tracks_holders_not_churn(self):
        sim = Simulation()
        server = DhcpServer(sim, pool_size=1)
        for _ in range(5):
            lease = run(sim, server.acquire("vm1"))
            server.release(lease)
        assert server.active_leases == [] and server.available == 1


# ---------------------------------------------------------------------------
# ServiceProvider: dict-as-set user registry
# ---------------------------------------------------------------------------

class TestProviderUsers:
    def _provider(self):
        sim = Simulation()

        class _Grid:
            pass

        grid = _Grid()
        grid.sim = sim
        return ServiceProvider(grid, "prov", "image")

    def test_registration_order_preserved(self):
        provider = self._provider()
        for user in ("zoe", "amy", "bob"):
            provider.register_user(user)
        assert provider.users == ["zoe", "amy", "bob"]

    def test_duplicate_registration_rejected(self):
        provider = self._provider()
        provider.register_user("amy")
        with pytest.raises(SimulationError):
            provider.register_user("amy")


# ---------------------------------------------------------------------------
# MetaScheduler: own-interval pruning against the sensor window
# ---------------------------------------------------------------------------

class _Monitor:
    def __init__(self, times, values):
        self.times = times
        self.values = values


class _Sensor:
    def __init__(self, monitor):
        self.monitor = monitor


class TestSchedulerPruning:
    def _scheduler(self, host, monitor, intervals):
        scheduler = MetaScheduler.__new__(MetaScheduler)
        scheduler.sensors = {host: _Sensor(monitor)}
        scheduler._own_intervals = {host: intervals}
        return scheduler

    def test_expired_intervals_are_pruned_in_place(self):
        intervals = [(0.0, 1.0), (5.0, 6.0), (10.0, 11.0)]
        monitor = _Monitor([8.0, 9.0, 10.0], [0.1, 0.2, 0.3])
        scheduler = self._scheduler("h", monitor, intervals)
        history = scheduler._background_history("h")
        # Samples at 8 and 9 are background; 10 falls in our own job.
        assert history == [0.1, 0.2]
        # Intervals ending before the window's oldest sample are gone,
        # and the pruning mutated the stored list in place.
        assert intervals == [(10.0, 11.0)]
        assert scheduler._own_intervals["h"] is intervals

    def test_live_intervals_survive(self):
        intervals = [(8.5, 9.5)]
        monitor = _Monitor([8.0, 9.0, 10.0], [0.1, 0.2, 0.3])
        scheduler = self._scheduler("h", monitor, intervals)
        assert scheduler._background_history("h") == [0.1, 0.3]
        assert intervals == [(8.5, 9.5)]
