"""Session configuration modes not covered by the main session tests."""

import pytest

from repro.simulation import SimulationError
from repro.vmm import VmState
from repro.workloads import synthetic_compute
from tests.support import demo_grid, tiny_session_config


def test_plain_nfs_image_access():
    """image_access='nfs': on-demand access without the proxy layer."""
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(image_access="nfs"))
    grid.run(session.establish())
    assert session.vm.state is VmState.RUNNING
    # The base image is an NFS mount, not a PVFS proxy.
    from repro.storage import NfsMount
    assert isinstance(session.vm.vdisk.base.fs, NfsMount)
    result = grid.run(session.run_application(synthetic_compute(2.0)))
    assert result.user_time > 2.0


def test_nfs_access_slower_than_pvfs_on_second_session():
    """Without the shared proxy, every session pays the WAN again."""
    def second_session_time(access):
        grid = demo_grid()
        first = grid.new_session(tiny_session_config(
            image_access=access, vm_name="one"))
        grid.run(first.establish())
        start = grid.sim.now
        second = grid.new_session(tiny_session_config(
            image_access=access, vm_name="two"))
        grid.run(second.establish())
        return grid.sim.now - start

    assert second_session_time("pvfs") < 0.5 * second_session_time("nfs")


def test_networking_none():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(networking="none"))
    grid.run(session.establish())
    assert session.vm.address is None
    assert session.lease is None
    assert session.tunnel is None
    # Shutdown works without a lease to release.
    grid.run(session.shutdown())


def test_boot_with_local_copy_nonpersistent():
    """Explicit staging combined with a cold boot and a COW disk."""
    grid = demo_grid(image_size=64 * 1024 * 1024)
    session = grid.new_session(tiny_session_config(
        image_access="local-copy", disk_mode="nonpersistent",
        start_mode="boot"))
    grid.run(session.establish())
    assert session.vm.guest_os.booted
    # The staged private copy backs the disk locally.
    assert session.vm.vdisk.base.fs is session.vmm.host.root_fs


def test_mount_user_data_disabled():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config(mount_user_data=False))
    grid.run(session.establish())
    assert "/home/ana" not in session.guest_os.mounts
    assert session.user_data_fs is None
    # sync_user_data degenerates to a no-op.
    assert grid.run(session.sync_user_data()) == 0


def test_second_establish_rejected_while_established():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    # The VM name is taken on the VMM: re-establishing the same session
    # object must fail loudly rather than double-create.
    with pytest.raises(SimulationError):
        grid.run(session.establish())


def test_shutdown_without_vm_rejected():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    with pytest.raises(SimulationError):
        grid.run(session.shutdown())


def test_migrate_before_establish_rejected():
    grid = demo_grid()
    grid.add_compute_host("compute2", site="nw")
    session = grid.new_session(tiny_session_config())
    with pytest.raises(SimulationError):
        grid.run(session.migrate_to("compute2"))
