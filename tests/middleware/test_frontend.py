"""Tests for the Figure 3 front-end / service-provider scenario."""

import pytest

from repro.middleware import MiddlewareFrontend, ServiceProvider
from repro.simulation import SimulationError
from repro.vmm import VmState
from repro.workloads import synthetic_compute
from tests.support import TINY_GUEST, demo_grid


def provider_grid():
    grid = demo_grid()
    grid.add_user("provider-s")          # the provider's grid identity
    return grid


def test_frontend_dedicated_vm_path():
    grid = demo_grid()
    frontend = MiddlewareFrontend(grid)
    session = grid.run(frontend.create_dedicated_vm(
        "ana", "rh72", guest_profile=TINY_GUEST))
    assert session.established
    assert session.vm.owner == "ana"
    assert frontend.dedicated_sessions == [session]


def test_provider_deploys_backend_pool():
    grid = provider_grid()
    frontend = MiddlewareFrontend(grid)
    provider = frontend.create_provider("provider-s", "rh72", backends=2,
                                        guest_profile=TINY_GUEST)
    count = grid.run(provider.deploy())
    assert count == 2
    names = sorted(s.vm.name for s in provider.sessions)
    assert names == ["provider-s-V1", "provider-s-V2"]
    # Back-end VMs belong to the provider's logical identity.
    assert all(s.vm.owner == "provider-s" for s in provider.sessions)


def test_provider_requires_registration():
    grid = provider_grid()
    provider = ServiceProvider(grid, "provider-s", "rh72", backends=1,
                               session_template={
                                   "guest_profile": TINY_GUEST})
    grid.run(provider.deploy())
    with pytest.raises(SimulationError):
        grid.run(provider.submit("randomer", synthetic_compute(1.0)))


def test_provider_submit_before_deploy_rejected():
    grid = provider_grid()
    provider = ServiceProvider(grid, "provider-s", "rh72")
    provider.register_user("a")
    with pytest.raises(SimulationError):
        grid.run(provider.submit("a", synthetic_compute(1.0)))


def test_provider_multiplexes_users_over_backends():
    """Users A, B, C share two virtual back-ends (Figure 3's S)."""
    grid = provider_grid()
    provider = ServiceProvider(grid, "provider-s", "rh72", backends=2,
                               session_template={
                                   "guest_profile": TINY_GUEST})
    for user in ("userA", "userB", "userC"):
        provider.register_user(user)
    grid.run(provider.deploy())

    procs = [grid.sim.spawn(provider.submit(user, synthetic_compute(10.0)))
             for user in ("userA", "userB", "userC")]
    grid.sim.run()
    assert all(not p.is_alive for p in procs)
    assert len(provider.outcomes) == 3
    # Two ran immediately; the third queued for a free back-end.
    delays = sorted(o.queue_delay for o in provider.outcomes)
    assert delays[0] == pytest.approx(0.0, abs=1e-6)
    assert delays[1] == pytest.approx(0.0, abs=1e-6)
    assert delays[2] > 5.0
    # Both back-ends were used.
    assert len({o.backend for o in provider.outcomes}) == 2
    busy = provider.utilization_summary()
    assert sum(busy.values()) > 30.0 * 0.99


def test_provider_teardown():
    grid = provider_grid()
    provider = ServiceProvider(grid, "provider-s", "rh72", backends=1,
                               session_template={
                                   "guest_profile": TINY_GUEST})
    grid.run(provider.deploy())
    vm = provider.sessions[0].vm
    grid.run(provider.teardown())
    assert vm.state is VmState.TERMINATED
    assert provider.sessions == []


def test_provider_validation():
    grid = provider_grid()
    with pytest.raises(SimulationError):
        ServiceProvider(grid, "p", "rh72", backends=0)
    provider = ServiceProvider(grid, "p", "rh72")
    provider.register_user("a")
    with pytest.raises(SimulationError):
        provider.register_user("a")
    frontend = MiddlewareFrontend(grid)
    frontend.create_provider("q", "rh72")
    with pytest.raises(SimulationError):
        frontend.create_provider("q", "rh72")
