"""Unit tests for GRAM dispatch and GridFTP transfers."""

import random

import pytest

from repro.gridnet import FlowEngine, Network
from repro.hardware import Disk
from repro.middleware import GramGateway, GridFtpService
from repro.simulation import Simulation
from repro.storage import FileStager, LocalFileSystem
from tests.support import run


def test_gram_wraps_job_with_overheads():
    sim = Simulation()
    gram = GramGateway(sim, "compute1", auth_time=2.0, jobmanager_start=1.0,
                       poll_interval=2.0, rng=random.Random(3))

    def body(sim):
        yield sim.timeout(10.0)
        return "payload"

    def submitter(sim):
        job = yield from gram.submit(body(sim), name="test")
        return job

    job = run(sim, submitter(sim))
    assert job.result == "payload"
    assert job.total_time > 10.0
    # Overheads: auth (within 15% jitter of 2.0) + jobmanager + poll.
    assert 2.7 < job.middleware_overhead < 6.0
    assert gram.jobs_dispatched == 1


def test_gram_zero_poll_is_deterministic():
    sim = Simulation()
    gram = GramGateway(sim, "c", auth_time=1.0, jobmanager_start=0.5,
                       poll_interval=0.0, rng=random.Random(0))
    gram.rng.uniform = lambda a, b: 0.0  # remove auth jitter

    def body(sim):
        yield sim.timeout(2.0)

    def submitter(sim):
        job = yield from gram.submit(body(sim))
        return job

    job = run(sim, submitter(sim))
    assert job.total_time == pytest.approx(3.5)


def test_gram_overhead_varies_between_runs():
    totals = set()
    for seed in range(5):
        sim = Simulation()
        gram = GramGateway(sim, "c", rng=random.Random(seed))

        def body(sim):
            yield sim.timeout(1.0)

        def submitter(sim):
            job = yield from gram.submit(body(sim))
            return job

        totals.add(round(run(sim, submitter(sim)).total_time, 6))
    assert len(totals) > 1  # poll alignment varies


def test_gridftp_transfers_and_logs():
    sim = Simulation()
    net = Network.two_site_wan(sim, "a", ["src"], "b", ["dst"])
    engine = FlowEngine(sim, net)
    src_fs = LocalFileSystem(sim, Disk(sim), cache_bytes=0)
    dst_fs = LocalFileSystem(sim, Disk(sim), cache_bytes=0)
    src_fs.create("image", 4 * 1024 * 1024)
    service = GridFtpService(sim, FileStager(sim, engine), auth_time=1.0)

    def mover(sim):
        moved = yield from service.transfer(src_fs, "src", "image",
                                            dst_fs, "dst")
        return moved

    moved = run(sim, mover(sim))
    assert moved >= 4 * 1024 * 1024
    assert dst_fs.exists("image")
    assert service.bytes_moved == moved
    assert len(service.log) == 1
    assert sim.now > 1.0  # at least the auth time passed
