"""Tests for usage metering and the bandwidth sensor."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.middleware import UsageMeter
from repro.prediction import BandwidthSensor
from repro.simulation import Simulation, SimulationError
from repro.workloads import synthetic_compute
from tests.support import demo_grid, tiny_session_config


# ---------------------------------------------------------------------------
# UsageMeter
# ---------------------------------------------------------------------------

def test_meter_charges_exact_group_consumption():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm")
    meter = UsageMeter(cpu, "host1", rate_per_cpu_hour=3600.0)  # $1/s
    meter.open_account(vm, "vm1", "ana")
    cpu.submit(CpuTask("g", work=5.0, group=vm))
    cpu.submit(CpuTask("other", work=100.0))  # competes 50/50
    sim.run(until=20.0)
    record = meter.close_account(vm)
    assert record.cpu_seconds == pytest.approx(5.0, rel=0.01)
    assert record.wall_seconds == pytest.approx(20.0)
    assert record.mean_share == pytest.approx(0.25, rel=0.02)
    assert meter.invoice("ana") == pytest.approx(5.0, rel=0.01)


def test_meter_only_charges_own_window():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm")
    meter = UsageMeter(cpu, "host1")
    # Work before the account opens is not billed.
    cpu.submit(CpuTask("early", work=4.0, group=vm))
    sim.run()
    meter.open_account(vm, "vm1", "ana")
    cpu.submit(CpuTask("billed", work=2.0, group=vm))
    sim.run()
    record = meter.close_account(vm)
    assert record.cpu_seconds == pytest.approx(2.0, rel=0.01)


def test_meter_double_open_and_unopened_close():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim)
    vm = TaskGroup("vm")
    meter = UsageMeter(cpu, "h")
    meter.open_account(vm, "vm1", "ana")
    with pytest.raises(SimulationError):
        meter.open_account(vm, "vm1", "ana")
    meter.close_account(vm)
    with pytest.raises(SimulationError):
        meter.close_account(vm)


def test_meter_integrates_with_sessions():
    """Metering a full grid session: a CPU-server provider's view."""
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    cpu = session.vmm.machine.cpu
    meter = UsageMeter(cpu, "compute1", rate_per_cpu_hour=0.10)
    meter.open_account(session.vm.group, session.vm.name, "ana")
    grid.run(session.run_application(synthetic_compute(36.0)))
    record = meter.close_account(session.vm.group)
    # ~36 s of guest CPU plus virtualization overheads.
    assert 36.0 < record.cpu_seconds < 40.0
    assert meter.invoice("ana") == pytest.approx(
        record.cpu_seconds / 3600.0 * 0.10)


def test_group_consumption_survives_migration():
    """The group counter follows the VM across hosts (one bill)."""
    from repro.gridnet import FlowEngine as FE
    from repro.storage import FileStager
    from repro.vmm import migrate
    from tests.support import physical_rig, run as run_gen, vm_rig, GB
    from repro.vmm import DiskImage

    sim = Simulation()
    net = Network.single_lan(sim, ["src", "dst"])
    engine = FE(sim, net)
    _m1, host1 = physical_rig(sim, name="src")
    _m2, host2 = physical_rig(sim, name="dst")
    from repro.vmm import VirtualMachineMonitor, VmConfig
    from tests.support import TINY_GUEST
    vmm1 = VirtualMachineMonitor(host1)
    vmm2 = VirtualMachineMonitor(host2)
    image1 = DiskImage(host1.root_fs, "img", 1 * GB, create=True)
    image2 = DiskImage(host2.root_fs, "img", 1 * GB, create=True)
    vm = vmm1.create_vm(VmConfig("vm1", guest_profile=TINY_GUEST), image1)
    run_gen(sim, vmm1.power_on(vm, mode="boot"))
    baseline = vm.group.cpu_consumed

    proc = sim.spawn(vm.guest_os.run_application(synthetic_compute(20.0)))
    sim.run(until=sim.now + 5.0)
    stager = FileStager(sim, engine, handshake_time=0.0)
    run_gen(sim, migrate(vm, vmm2, stager, image2))
    sim.run_until_complete(proc)
    vmm2.machine.cpu.sync()
    consumed = vm.group.cpu_consumed - baseline
    assert consumed == pytest.approx(20.0, rel=0.05)


# ---------------------------------------------------------------------------
# BandwidthSensor
# ---------------------------------------------------------------------------

def test_bandwidth_sensor_tracks_spare_capacity():
    sim = Simulation()
    net = Network.two_site_wan(sim, "a", ["src"], "b", ["dst"],
                               wan_bandwidth=2e6)
    engine = FlowEngine(sim, net)
    sensor = BandwidthSensor(engine, "src", "dst", period=1.0)
    sensor.start()
    sim.run(until=3.0)
    assert sensor.series[-1] == pytest.approx(2e6)
    engine.start_flow("src", "dst", 10e6)   # saturates the WAN for ~5s
    sim.run(until=5.0)
    assert sensor.series[-1] == pytest.approx(0.0, abs=1e3)
    sim.run(until=12.0)                     # flow long drained
    sensor.stop()
    assert sensor.series[-1] == pytest.approx(2e6)


def test_bandwidth_sensor_validates_path_and_lifecycle():
    sim = Simulation()
    net = Network.single_lan(sim, ["a", "b"])
    engine = FlowEngine(sim, net)
    net.add_host("island")
    with pytest.raises(SimulationError):
        BandwidthSensor(engine, "a", "island")
    sensor = BandwidthSensor(engine, "a", "b")
    sensor.start()
    with pytest.raises(SimulationError):
        sensor.start()
    sensor.stop()
