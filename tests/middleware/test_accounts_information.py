"""Unit tests for logical accounts and the information service."""

import pytest

from repro.middleware import InformationService, LogicalUser, VmFuture
from repro.middleware.accounts import AccountRegistry, AuthorizationError
from repro.simulation import Simulation, SimulationError
from tests.support import run


# ---------------------------------------------------------------------------
# AccountRegistry
# ---------------------------------------------------------------------------

def test_register_and_lookup():
    reg = AccountRegistry()
    user = reg.create_user("renato", home_site="uf")
    assert reg.lookup("renato") is user
    with pytest.raises(SimulationError):
        reg.lookup("nobody")


def test_duplicate_user_rejected():
    reg = AccountRegistry()
    reg.create_user("a")
    with pytest.raises(SimulationError):
        reg.register(LogicalUser("a"))


def test_grant_and_require():
    reg = AccountRegistry()
    reg.create_user("u")
    reg.grant("u", "uf", "instantiate", "store")
    assert reg.authorized("u", "uf", "instantiate")
    assert not reg.authorized("u", "nw", "instantiate")
    reg.require("u", "uf", "store")
    with pytest.raises(AuthorizationError):
        reg.require("u", "nw", "store")


def test_unknown_right_rejected():
    reg = AccountRegistry()
    reg.create_user("u")
    with pytest.raises(SimulationError):
        reg.grant("u", "uf", "sudo")


def test_revoke():
    reg = AccountRegistry()
    reg.create_user("u")
    reg.grant("u", "uf", "query")
    reg.revoke("u", "uf", "query")
    assert not reg.authorized("u", "uf", "query")


def test_vm_binding_lifecycle():
    reg = AccountRegistry()
    reg.create_user("u")
    reg.bind_vm("u", "vm1")
    assert reg.lookup("u").vms == ["vm1"]
    reg.release_vm("u", "vm1")
    assert reg.lookup("u").vms == []


def test_users_at_site():
    reg = AccountRegistry()
    reg.create_user("a")
    reg.create_user("b")
    reg.grant("a", "uf", "query")
    assert reg.users_at("uf") == ["a"]


# ---------------------------------------------------------------------------
# InformationService
# ---------------------------------------------------------------------------

def test_register_select():
    sim = Simulation()
    info = InformationService(sim)
    info.register("machines", {"name": "m1", "memory_mb": 512})
    info.register("machines", {"name": "m2", "memory_mb": 2048})
    assert info.table_size("machines") == 2
    big = info.select("machines", memory_mb__ge=1024)
    assert [r["name"] for r in big] == ["m2"]


def test_unknown_table_rejected():
    sim = Simulation()
    info = InformationService(sim)
    with pytest.raises(SimulationError):
        info.register("nonsense", {})
    with pytest.raises(SimulationError):
        info.select("nonsense")


def test_operator_suite():
    sim = Simulation()
    info = InformationService(sim)
    info.register("vms", {"name": "v", "state": "running", "memory_mb": 128,
                          "tags": ["seismic"]})
    assert info.select("vms", state__ne="terminated")
    assert info.select("vms", memory_mb__gt=64)
    assert info.select("vms", memory_mb__le=128)
    assert info.select("vms", memory_mb__lt=129)
    assert info.select("vms", tags__contains="seismic")
    assert not info.select("vms", memory_mb__gt=128)
    with pytest.raises(SimulationError):
        info.select("vms", memory_mb__between=(1, 2))


def test_query_costs_time_and_filters():
    sim = Simulation()
    info = InformationService(sim, query_latency=0.2)
    for i in range(10):
        info.register("machines", {"name": "m%d" % i, "memory_mb": 256 * i})

    def searcher(sim):
        results = yield from info.query("machines", memory_mb__ge=1024)
        return results

    results = run(sim, searcher(sim))
    assert sim.now > 0
    assert all(r["memory_mb"] >= 1024 for r in results)
    assert len(results) == 6


def test_query_limit_returns_partial():
    sim = Simulation()
    info = InformationService(sim)
    for i in range(20):
        info.register("machines", {"name": "m%d" % i})

    def searcher(sim):
        results = yield from info.query("machines", limit=3)
        return results

    assert len(run(sim, searcher(sim))) == 3


def test_query_time_bound_limits_scan():
    sim = Simulation()
    info = InformationService(sim, query_latency=1.0)
    for i in range(100):
        info.register("machines", {"name": "m%d" % i})

    def searcher(sim):
        results = yield from info.query("machines", time_bound=0.1)
        return results

    results = run(sim, searcher(sim))
    assert sim.now <= 0.11
    assert 0 < len(results) < 100  # partial results


def test_unregister():
    sim = Simulation()
    info = InformationService(sim)
    info.register("vms", {"name": "v1", "state": "running"})
    info.register("vms", {"name": "v2", "state": "running"})
    assert info.unregister("vms", name="v1") == 1
    assert info.table_size("vms") == 1


def test_join():
    sim = Simulation()
    info = InformationService(sim)
    info.register("vm_futures", {"host": "h1", "site": "uf", "count": 2,
                                 "max_memory_mb": 512})
    info.register("images", {"image": "rh72", "server": "i1",
                             "site": "uf"})
    info.register("images", {"image": "rh72", "server": "i2",
                             "site": "nw"})

    def searcher(sim):
        pairs = yield from info.join(
            "vm_futures", "images",
            on=lambda f, i: f["site"] == i["site"],
            constraints_b={"image": "rh72"})
        return pairs

    pairs = run(sim, searcher(sim))
    assert len(pairs) == 1
    assert pairs[0][1]["server"] == "i1"


def test_vm_future_record():
    future = VmFuture("h1", "uf", 3, 512, scheduling="periodic")
    record = future.describe()
    assert record["host"] == "h1"
    assert record["count"] == 3
    assert record["scheduling"] == "periodic"
    with pytest.raises(SimulationError):
        VmFuture("h1", "uf", -1, 512)
