"""Tests for tape archival and the interactive console."""

import pytest

from repro.hardware import Disk
from repro.middleware import TapeArchive, VncConsole
from repro.simulation import Simulation, SimulationError
from repro.storage import LocalFileSystem
from repro.workloads import synthetic_compute
from tests.support import MB, demo_grid, run, tiny_session_config


# ---------------------------------------------------------------------------
# TapeArchive
# ---------------------------------------------------------------------------

def tape_rig(sim):
    fs = LocalFileSystem(sim, Disk(sim, seek_time=0.0,
                                   transfer_rate=40e6),
                         cache_bytes=0)
    tape = TapeArchive(sim, mount_time=10.0, transfer_rate=10e6)
    return fs, tape


def test_archive_and_retrieve_roundtrip():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    fs.create("vm1.diff", 20 * MB)
    fs.create("vm1.memstate", 128 * MB)

    def archiver(sim):
        volume = yield from tape.archive("vm1", fs,
                                         ["vm1.diff", "vm1.memstate"])
        return volume

    volume = run(sim, archiver(sim))
    assert volume.total_bytes == 148 * MB
    # Online space reclaimed.
    assert not fs.exists("vm1.diff")
    assert tape.volumes == ["vm1"]

    def retriever(sim):
        yield from tape.retrieve("vm1", fs)

    run(sim, retriever(sim))
    assert fs.exists("vm1.diff")
    assert fs.size("vm1.memstate") == 128 * MB
    assert tape.lookup("vm1").retrieved_count == 1


def test_archive_pays_mount_and_stream_time():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    fs.create("state", 100 * MB)

    def archiver(sim):
        yield from tape.archive("v", fs, ["state"])
        return sim.now

    elapsed = run(sim, archiver(sim))
    # Mount (10s) + tape streaming (10.5s) + disk read.
    assert elapsed >= 10.0 + 100 * MB / 10e6


def test_archive_missing_file_rejected():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    with pytest.raises(SimulationError):
        run(sim, tape.archive("v", fs, ["ghost"]))


def test_archive_duplicate_volume_rejected():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    fs.create("a", 1 * MB)
    fs.create("b", 1 * MB)
    run(sim, tape.archive("v", fs, ["a"]))
    with pytest.raises(SimulationError):
        run(sim, tape.archive("v", fs, ["b"]))


def test_remove_ends_lifecycle():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    fs.create("a", 1 * MB)
    run(sim, tape.archive("v", fs, ["a"]))
    tape.remove("v")
    assert tape.volumes == []
    with pytest.raises(SimulationError):
        tape.remove("v")


def test_drive_serializes_volumes():
    sim = Simulation()
    fs, tape = tape_rig(sim)
    fs.create("a", 10 * MB)
    fs.create("b", 10 * MB)
    done = []

    def archiver(sim, name):
        yield from tape.archive(name, fs, [name[-1]])
        done.append((name, sim.now))

    sim.spawn(archiver(sim, "vol-a"))
    sim.spawn(archiver(sim, "vol-b"))
    sim.run()
    # Second archive waits for the single drive (two mounts serialized).
    assert done[1][1] - done[0][1] >= 10.0


# ---------------------------------------------------------------------------
# VncConsole
# ---------------------------------------------------------------------------

def console_session():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    return grid, session


def test_console_round_trip_measured():
    grid, session = console_session()
    console = VncConsole(grid, session.vm, grid.home_gateway_of("ana"))

    def typist(sim):
        rtts = yield from console.typing_burst(count=10, think_time=0.1)
        return rtts

    rtts = grid.run(typist(grid.sim))
    assert len(rtts) == 10
    assert console.latency.count == 10
    # WAN RTT + echo CPU + update transfer: tens of ms, interactive.
    assert console.responsive(threshold=0.2)
    assert all(rtt > 0.02 for rtt in rtts)  # at least the WAN latency


def test_console_degrades_under_vm_contention():
    grid, session = console_session()
    # Measure from a LAN client so compute, not WAN latency, dominates.
    grid.add_compute_host("desk", site="uf")
    console = VncConsole(grid, session.vm, "desk")

    def measure(sim):
        rtts = yield from console.typing_burst(count=5, think_time=0.05)
        return sum(rtts) / len(rtts)

    idle_rtt = grid.run(measure(grid.sim))
    # Saturate the guest with background work, then measure again.
    grid.sim.spawn(session.guest_os.run_application(
        synthetic_compute(500.0)))
    busy_rtt = grid.run(measure(grid.sim))
    assert busy_rtt > 1.5 * idle_rtt


def test_console_requires_known_client():
    grid, session = console_session()
    with pytest.raises(SimulationError):
        VncConsole(grid, session.vm, "not-a-host")


def test_console_responsive_requires_samples():
    grid, session = console_session()
    console = VncConsole(grid, session.vm, grid.home_gateway_of("ana"))
    with pytest.raises(SimulationError):
        console.responsive()
