"""Tests for virtual clusters and overlay communication among VMs."""

import pytest

from repro.middleware import VirtualCluster
from repro.simulation import SimulationError
from repro.vmm import VmState
from tests.support import GB, TINY_GUEST, demo_grid


def cluster_grid(hosts=3):
    grid = demo_grid()
    for i in range(2, hosts + 1):
        grid.add_compute_host("compute%d" % i,
                              site="uf" if i % 2 == 0 else "nw")
    return grid


def make_cluster(grid, size=3):
    return VirtualCluster(grid, "ana", "rh72", size,
                          session_overrides={"guest_profile": TINY_GUEST})


def test_cluster_requires_two_members():
    grid = cluster_grid()
    with pytest.raises(SimulationError):
        VirtualCluster(grid, "ana", "rh72", 1)


def test_cluster_deploys_on_distinct_hosts():
    grid = cluster_grid(hosts=3)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    hosts = {cluster.host_of(i) for i in range(3)}
    assert len(hosts) == 3                       # spread out
    assert sorted(cluster.members) == ["ana-node0", "ana-node1",
                                       "ana-node2"]
    assert sorted(cluster.overlay.members) == sorted(hosts)


def test_cluster_doubles_up_when_hosts_run_out():
    grid = cluster_grid(hosts=2)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    hosts = [cluster.host_of(i) for i in range(3)]
    assert len(set(hosts)) == 2                  # one host reused


def test_cluster_double_deploy_rejected():
    grid = cluster_grid()
    cluster = make_cluster(grid, size=2)
    grid.run(cluster.deploy())
    with pytest.raises(SimulationError):
        grid.run(cluster.deploy())


def test_transfer_follows_overlay_route():
    grid = cluster_grid(hosts=3)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    seconds, path = grid.run(cluster.transfer(0, 1, 1024 * 1024))
    assert seconds > 0
    assert path[0] == cluster.host_of(0)
    assert path[-1] == cluster.host_of(1)


def test_transfer_same_host_is_free():
    grid = cluster_grid(hosts=2)
    cluster = make_cluster(grid, size=3)   # one host doubled up
    grid.run(cluster.deploy())
    hosts = [cluster.host_of(i) for i in range(3)]
    # Find the doubled pair.
    pair = None
    for i in range(3):
        for j in range(3):
            if i != j and hosts[i] == hosts[j]:
                pair = (i, j)
    assert pair is not None
    seconds, path = grid.run(cluster.transfer(pair[0], pair[1], 1e6))
    assert seconds == 0.0
    assert len(path) == 1


def test_transfer_relays_around_penalty():
    grid = cluster_grid(hosts=3)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    a, b = cluster.host_of(0), cluster.host_of(1)
    # Policy routing ruins the direct a-b path; re-measure.
    cluster.overlay.set_underlay_penalty(a, b, 0.5)
    grid.run(cluster.overlay.measure())
    _seconds, path = grid.run(cluster.transfer(0, 1, 1024))
    assert len(path) == 3                        # relayed via the third


def test_exchange_completes_and_times_slowest():
    grid = cluster_grid(hosts=3)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    elapsed = grid.run(cluster.exchange(512 * 1024))
    assert elapsed > 0
    # At least the WAN serialization of one 512 KB payload at 2.5 MB/s,
    # and everything ran concurrently (nowhere near 6x that).
    single = 512 * 1024 / 2.5e6
    assert elapsed >= single * 0.9
    assert elapsed < 6 * single + 1.0


def test_latency_matrix_symmetric_pairs():
    grid = cluster_grid(hosts=3)
    cluster = make_cluster(grid, size=3)
    grid.run(cluster.deploy())
    matrix = cluster.latency_matrix()
    hosts = sorted(set(cluster.overlay.members))
    assert len(matrix) == len(hosts) * (len(hosts) - 1)
    for (a, b), latency in matrix.items():
        assert latency == pytest.approx(matrix[(b, a)])


def test_teardown_terminates_members():
    grid = cluster_grid()
    cluster = make_cluster(grid, size=2)
    grid.run(cluster.deploy())
    vms = [s.vm for s in cluster.sessions]
    grid.run(cluster.teardown())
    assert all(vm.state is VmState.TERMINATED for vm in vms)
    with pytest.raises(SimulationError):
        grid.run(cluster.transfer(0, 1, 10))
