"""Tests for hibernate / tape-archive / revive and the CLI plumbing."""

import pytest

from repro.middleware import TapeArchive
from repro.simulation import SimulationError
from repro.vmm import VmState
from repro.workloads import Application, IoPhase, synthetic_compute
from tests.support import demo_grid, tiny_session_config


def established_session():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    grid.run(session.establish())
    return grid, session


# ---------------------------------------------------------------------------
# Hibernate / wake
# ---------------------------------------------------------------------------

def test_hibernate_writes_memstate_and_pauses():
    grid, session = established_session()
    job = grid.sim.spawn(session.run_application(synthetic_compute(30.0)))
    grid.sim.run(until=grid.sim.now + 5.0)

    filename = grid.run(session.hibernate())
    assert session.vm.state is VmState.SUSPENDED
    host_fs = session.vmm.host.root_fs
    assert host_fs.size(filename) == session.vm.config.memory_bytes

    paused_at = grid.sim.now
    grid.sim.run(until=paused_at + 100.0)
    assert job.is_alive  # no progress while hibernated

    grid.run(session.wake())
    assert session.vm.state is VmState.RUNNING
    grid.sim.run()
    assert not job.is_alive


def test_hibernate_without_vm_rejected():
    grid = demo_grid()
    session = grid.new_session(tiny_session_config())
    with pytest.raises(SimulationError):
        grid.run(session.hibernate())


# ---------------------------------------------------------------------------
# Archive / revive (the end of the life cycle)
# ---------------------------------------------------------------------------

def test_archive_requires_hibernation():
    grid, session = established_session()
    tape = TapeArchive(grid.sim, mount_time=1.0)
    with pytest.raises(SimulationError):
        grid.run(session.archive_to(tape))


def test_archive_and_revive_roundtrip():
    grid, session = established_session()
    # Dirty the disk so there is a diff to archive.
    writer = Application("w", [IoPhase("/scratch/tmp", 8 * 1024 * 1024,
                                       write=True)])
    grid.run(session.run_application(writer))
    grid.run(session.hibernate())

    tape = TapeArchive(grid.sim, mount_time=2.0)
    volume = grid.run(session.archive_to(tape))
    assert volume.total_bytes >= session.vm.config.memory_bytes
    # Online state reclaimed.
    host_fs = session.vmm.host.root_fs
    assert not host_fs.exists(session.vm.name + ".memstate")
    assert tape.volumes == [session.vm.name]

    grid.run(session.revive_from(tape))
    assert session.vm.state is VmState.RUNNING
    assert tape.volumes == []  # life-cycle record removed after revival
    # The VM still computes correctly after the round trip.
    result = grid.run(session.run_application(synthetic_compute(3.0)))
    assert result.user_time > 3.0


def test_archive_includes_diff_file():
    grid, session = established_session()
    writer = Application("w", [IoPhase("/scratch/tmp", 4 * 1024 * 1024,
                                       write=True)])
    grid.run(session.run_application(writer))
    grid.run(session.hibernate())
    tape = TapeArchive(grid.sim, mount_time=0.0)
    volume = grid.run(session.archive_to(tape))
    assert any(name.endswith(".diff") for name in volume.files)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_parser_accepts_all_commands():
    from repro.cli import build_parser

    parser = build_parser()
    for command in ("table1", "table2", "figure1", "ablations", "overlay",
                    "migration", "all"):
        args = parser.parse_args([command])
        assert args.command == command
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])


def test_cli_table2_runs(capsys):
    from repro.cli import main

    assert main(["table2", "--samples", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "nonpersistent-diskfs" in out


def test_cli_figure1_runs(capsys):
    from repro.cli import main

    assert main(["figure1", "--samples", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_cli_table1_scaled_runs(capsys):
    from repro.cli import main

    assert main(["table1", "--scale", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "SPECseis" in out and "SPECclimate" in out


def test_cli_overlay_runs(capsys):
    from repro.cli import main

    assert main(["overlay"]) == 0
    out = capsys.readouterr().out
    assert "O1" in out and "Improved" in out


def test_cli_migration_runs(capsys):
    from repro.cli import main

    assert main(["migration"]) == 0
    out = capsys.readouterr().out
    assert "downtime" in out and "compute2" in out
