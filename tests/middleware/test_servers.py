"""Unit tests for the image and data server services."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.simulation import Simulation, SimulationError
from repro.storage import PvfsProxy
from tests.support import GB, MB, physical_rig, run


def servers_rig(sim):
    from repro.middleware import ImageServer, UserDataServer

    net = Network.single_lan(sim, ["images", "data", "compute"])
    engine = FlowEngine(sim, net)
    _m1, image_host = physical_rig(sim, name="images")
    _m2, data_host = physical_rig(sim, name="data")
    image_server = ImageServer(image_host, engine)
    data_server = UserDataServer(data_host, engine)
    return engine, image_server, data_server


def test_image_server_catalogue():
    sim = Simulation()
    _engine, images, _data = servers_rig(sim)
    image = images.publish_image("rh72", 1 * GB, warm_state_mb=64,
                                 description="Red Hat 7.2 base")
    assert image.size_bytes == 1 * GB
    record = images.record("rh72")
    assert record["has_warm_state"] is True
    assert record["description"] == "Red Hat 7.2 base"
    assert record["server"] == "images"
    assert len(images.records()) == 1
    assert images.lookup("rh72") is image
    # The warm state file exists and is the declared size.
    assert images.fs.size(images.memstate_name("rh72")) == 64 * MB


def test_image_server_duplicate_and_missing():
    sim = Simulation()
    _engine, images, _data = servers_rig(sim)
    images.publish_image("rh72", 1 * GB)
    with pytest.raises(SimulationError):
        images.publish_image("rh72", 1 * GB)
    with pytest.raises(SimulationError):
        images.lookup("ghost")
    with pytest.raises(SimulationError):
        images.record("ghost")
    # No warm state requested -> no memstate file.
    assert not images.fs.exists(images.memstate_name("rh72"))


def test_image_server_mount_serves_image_blocks():
    sim = Simulation()
    _engine, images, _data = servers_rig(sim)
    images.publish_image("rh72", 64 * MB)
    mount = images.mount_from("compute")
    run(sim, mount.read("rh72", 0, 1 * MB))
    assert images.nfs.rpc_count > 0


def test_data_server_per_user_isolation():
    sim = Simulation()
    _engine, _images, data = servers_rig(sim)
    data.store("ana", "input.dat", 1 * MB)
    data.store("bob", "input.dat", 2 * MB)
    assert data.files_of("ana") == ["input.dat"]
    assert data.files_of("nobody") == []

    ana_fs = data.mount_from("compute", "ana", with_proxy=False)
    bob_fs = data.mount_from("compute", "bob", with_proxy=False)
    assert ana_fs.size("input.dat") == 1 * MB
    assert bob_fs.size("input.dat") == 2 * MB
    assert ana_fs.listdir() == ["input.dat"]
    # Ana cannot see Bob's other files.
    data.store("bob", "secret.dat", 1 * MB)
    assert "secret.dat" not in ana_fs.listdir()


def test_data_server_proxy_mount_buffers_writes():
    sim = Simulation()
    _engine, _images, data = servers_rig(sim)
    data.store("ana", "results.out", 0)
    proxied = data.mount_from("compute", "ana", with_proxy=True)
    assert isinstance(proxied, PvfsProxy)
    run(sim, proxied.write("results.out", 0, 256 * 1024))
    assert proxied.buffered_bytes == 256 * 1024


def test_data_server_scoped_fs_operations():
    sim = Simulation()
    _engine, _images, data = servers_rig(sim)
    data.store("ana", "a.txt", 1000)
    fs = data.mount_from("compute", "ana", with_proxy=False)
    assert fs.exists("a.txt")
    fs.create("b.txt", 500)
    assert "b.txt" in fs.listdir()
    run(sim, fs.read("a.txt", 0, 1000))
    run(sim, fs.write("b.txt", 0, 500))
    fs.delete("b.txt")
    assert not fs.exists("b.txt")
    with pytest.raises(SimulationError):
        data.store("ana", "bad", -1)
