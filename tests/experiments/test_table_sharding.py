"""Sharded table runs must be byte-identical to the sequential driver.

Table 1 and Table 2 are the paper's own decomposable experiments: every
sample is a pure function of its task tuple, so spreading the worlds
over the sharded engine — per cell/resource (``site`` model) or per
world (``host`` model, shard counts above the site count) — must leave
the rows untouched.  Dataclass equality on floats is exact, so these
comparisons are bitwise.
"""

import pytest

from repro.experiments.table1 import run_table1, table1_shard_run, table1_tasks
from repro.experiments.table2 import run_table2, table2_shard_run, table2_tasks
from repro.simulation.workerpool import shutdown_warm_group

_SAMPLES = 2
_SCALE = 0.05


def teardown_module(_module):
    shutdown_warm_group()


def test_table2_rows_identical_across_shard_counts_and_models():
    reference = run_table2(samples=_SAMPLES, seed=42)
    for shards, model in ((2, "site"), (4, "site"), (4, "host")):
        rows = run_table2(samples=_SAMPLES, seed=42, shards=shards,
                          shard_model=model)
        assert rows == reference, (shards, model)


def test_table1_rows_identical_across_shard_counts_and_models():
    reference = run_table1(scale=_SCALE, seed=7)
    for shards, model in ((2, "site"), (4, "host")):
        rows = run_table1(scale=_SCALE, seed=7, shards=shards,
                          shard_model=model)
        assert rows == reference, (shards, model)


def test_table2_host_model_unlocks_per_world_groups():
    values, run = table2_shard_run(samples=_SAMPLES, seed=42, shards=4,
                                   shard_model="host")
    tasks = table2_tasks(_SAMPLES, 42)
    assert len(values) == len(tasks) == 6 * _SAMPLES
    # One group per sample world — more groups than the six cells the
    # site model tops out at — and the channel-free plan needs exactly
    # one unbounded round.
    assert len(run.plan.groups) == len(tasks)
    assert run.rounds == 1
    assert run.messages_delivered == 0
    site_values, site_run = table2_shard_run(samples=_SAMPLES, seed=42,
                                             shards=4, shard_model="site")
    assert len(site_run.plan.groups) == 6
    assert values == site_values


def test_table1_shard_run_values_cover_all_tasks():
    values, run = table1_shard_run(scale=_SCALE, seed=7, shards=4,
                                   shard_model="host")
    tasks = table1_tasks()
    assert len(values) == len(tasks) == 6
    assert len(run.plan.groups) == 6  # one per (application, resource)
    assert run.rounds == 1
    for user, sys_time, total in values:
        assert total == pytest.approx(user + sys_time)


def test_unknown_shard_model_rejected():
    from repro.simulation.kernel import SimulationError

    with pytest.raises(SimulationError):
        run_table2(samples=1, seed=0, shards=2, shard_model="galaxy")
    with pytest.raises(SimulationError):
        run_table1(scale=_SCALE, seed=0, shards=2, shard_model="galaxy")


def test_nondecomposable_experiments_notice_and_strict(capsys):
    """figure1/ablations: `--shards` prints the one-line stderr notice;
    strict mode raises (as a ValueError) before any work runs."""
    from repro.experiments.ablations import run_proxy_cache_ablation
    from repro.experiments.figure1 import run_figure1
    from repro.simulation.sharded import ShardError

    with pytest.raises(ShardError, match="non-decomposable"):
        run_figure1(samples=1, shards=2, strict_shards=True)
    with pytest.raises(ValueError, match="figure1"):
        run_figure1(samples=1, shards=2, strict_shards=True)
    with pytest.raises(ShardError, match="proxy cache"):
        run_proxy_cache_ablation(instantiations=1, shards=2,
                                 strict_shards=True)
    capsys.readouterr()
    run_figure1(samples=1, test_seconds=0.5, shards=2)
    err = capsys.readouterr().err
    assert "non-decomposable world" in err
    assert "--shards 2" in err
