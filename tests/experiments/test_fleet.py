"""The fleet scenario: byte-identity across shard counts, end to end.

This is the acceptance test of the sharded engine's determinism
contract on a real model workload: every artifact a fleet run produces
— the rendered tables, the merged partition-keyed metrics registry,
the merged flight record — must be byte-identical for shards in
{1, 2, 4}, where 1 runs everything inline and the rest spread the
site kernels over persistent worker processes.
"""

import pytest

from repro.cli import main
from repro.experiments.fleet import (fleet_lookaheads, fleet_sites,
                                     run_fleet)
from repro.simulation.workerpool import shutdown_warm_group


def teardown_module(_module):
    shutdown_warm_group()


@pytest.fixture(scope="module")
def runs():
    """One small fleet run per shard count (module-scoped: the runs
    are the expensive part, the assertions are cheap)."""
    return {shards: run_fleet(sites=4, sessions=2, seed=42,
                              shards=shards)
            for shards in (1, 2, 4)}


def test_fleet_tables_byte_identical_across_shards(runs):
    renders = {s: r.render() for s, r in runs.items()}
    assert renders[1] == renders[2] == renders[4]
    assert "Fleet sessions" in renders[1]
    assert "Fleet remote dispatches" in renders[1]


def test_fleet_metrics_byte_identical_across_shards(runs):
    payloads = {s: r.merged_metrics().to_json() for s, r in runs.items()}
    assert payloads[1] == payloads[2] == payloads[4]
    # Partition keying: every site's shard carried its own keys.
    for site in fleet_sites(4):
        assert "fleet.sessions[%s]" % site in payloads[1]


def test_fleet_flight_records_byte_identical_across_shards(runs):
    records = {s: r.merged_recorder().to_jsonl() for s, r in runs.items()}
    assert records[1] == records[2] == records[4]
    assert records[1].count("\n") > 10


def test_fleet_round_schedule_is_placement_invariant(runs):
    reference = runs[1].run
    for shards in (2, 4):
        run = runs[shards].run
        assert run.rounds == reference.rounds
        assert run.messages_delivered == reference.messages_delivered
        assert run.end_time == reference.end_time
        assert run.events == reference.events
    assert reference.messages_delivered == 4 * 2  # one per session, ring


def test_fleet_sessions_all_complete(runs):
    for site in fleet_sites(4):
        data = runs[1].site_data(site)
        assert [row["session"] for row in data["sessions"]] == [0, 1]
        # Each site received its ring neighbor's two dispatches.
        assert sorted(row["job"] for row in data["remote"]) == [0, 1]
        for row in data["sessions"]:
            assert row["end"] > row["app_done"] > row["ready"] \
                > row["start"]


def test_fleet_lookaheads_come_from_the_reference_topology():
    labels = fleet_sites(3)
    matrix = fleet_lookaheads(labels)
    # Ring edges only, all positive, symmetric star topology -> equal.
    assert set(matrix) == {("site00", "site01"), ("site01", "site02"),
                           ("site02", "site00")}
    values = set(matrix.values())
    assert len(values) == 1
    assert values.pop() == pytest.approx(2 * 0.015 + 2 * 5e-5)
    assert fleet_lookaheads(fleet_sites(1)) == {}


def test_single_site_fleet_degenerates_cleanly():
    result = run_fleet(sites=1, sessions=1, seed=7, shards=4)
    assert result.run.workers == 1
    assert result.run.messages_delivered == 0
    assert result.site_data("site00")["remote"] == []
    assert len(result.site_data("site00")["sessions"]) == 1


# -- CLI plumbing ------------------------------------------------------------


def test_cli_fleet_output_identical_across_shards(tmp_path, capsys):
    outputs = {}
    flights = {}
    for shards in (1, 2):
        out = tmp_path / ("flight-%d.jsonl" % shards)
        assert main(["fleet", "--sites", "3", "--sessions", "1",
                     "--seed", "42", "--shards", str(shards),
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        outputs[shards] = printed.replace(str(out), "FLIGHT")
        flights[shards] = out.read_bytes()
    assert outputs[1] == outputs[2]
    assert flights[1] == flights[2]
    assert "Fleet run" in outputs[1]
    assert "Fleet metrics" in outputs[1]


def test_cli_legacy_commands_accept_shards_identically(capsys):
    """--shards on the paper's single-kernel artifacts: validated,
    identical inline path, byte-identical stdout."""
    outputs = {}
    for shards in ("1", "4"):
        assert main(["table2", "--samples", "2", "--seed", "42",
                     "--shards", shards]) == 0
        outputs[shards] = capsys.readouterr().out
    assert outputs["1"] == outputs["4"]
    assert "Table 2" in outputs["1"]


def test_cli_record_accepts_shards_identically(tmp_path):
    records = {}
    for shards in ("1", "3"):
        out = tmp_path / ("rec-%s.jsonl" % shards)
        assert main(["record", "table2", "--seed", "42",
                     "--shards", shards, "--out", str(out)]) == 0
        records[shards] = out.read_bytes()
    assert records["1"] == records["3"]


def test_fleet_rejects_degenerate_parameters():
    from repro.simulation.kernel import SimulationError

    with pytest.raises(SimulationError):
        run_fleet(sites=0)
    with pytest.raises(SimulationError):
        run_fleet(sessions=0)


# -- adaptive windows (regression guard wired into `make check`) ---------------


def _strip_rounds(text):
    """A fleet render minus the one row adaptive scheduling may change."""
    return "\n".join(line for line in text.splitlines()
                     if "rounds" not in line)


def test_adaptive_windows_reduce_fleet_rounds(runs):
    """The regression guard: adaptive windows must never cost rounds,
    and on the fleet's forecastable announce schedule they must win
    some — a regression to the fixed round count fails here."""
    fixed = run_fleet(sites=4, sessions=2, seed=42, adaptive=False)
    adaptive = runs[1]
    assert adaptive.run.rounds < fixed.run.rounds
    # Everything except the reported round count is byte-identical:
    # window *sizes* changed, delivered stamps and artifacts did not.
    assert _strip_rounds(adaptive.render()) == _strip_rounds(fixed.render())
    assert adaptive.run.end_time == fixed.run.end_time
    assert adaptive.run.messages_delivered == fixed.run.messages_delivered
    assert adaptive.merged_metrics().to_json() \
        == fixed.merged_metrics().to_json()


def test_adaptive_rounds_placement_invariant(runs):
    """Adaptive scheduling stays deterministic: the grown windows are
    computed from reported promises, not from worker placement."""
    assert runs[1].run.rounds == runs[2].run.rounds == runs[4].run.rounds
    assert runs[1].run.adaptive and runs[4].run.adaptive


def test_cli_fixed_windows_flag(capsys):
    outputs = {}
    for flag in ((), ("--fixed-windows",)):
        assert main(["fleet", "--sites", "3", "--sessions", "1",
                     "--seed", "42"] + list(flag)) == 0
        outputs[flag] = capsys.readouterr().out
    adaptive, fixed = outputs[()], outputs[("--fixed-windows",)]
    assert _strip_rounds(adaptive) == _strip_rounds(fixed)
