"""Warm-pool reuse must be invisible in experiment results.

The replication runner keeps one ``multiprocessing`` pool warm across
experiment stages (see ``repro.experiments.runner``).  A reused worker
process carries everything a previous task left behind at module or
class level, so any process-global model state would let one
replication bleed into the next.  These tests pin the contract: the
same tasks produce byte-for-byte identical results whether they run

* sequentially in this process (the historical reference path),
* on the warm pool, reused across two consecutive stages,
* on a throwaway pool with ``maxtasksperchild=1`` — a genuinely fresh
  interpreter per task, the strictest baseline.
"""

from __future__ import annotations

import multiprocessing
import struct

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    replication_seeds,
    run_replications,
    shutdown_pool,
)
from repro.experiments.table2 import startup_sample


def _tasks():
    seeds = replication_seeds(42, "pool-isolation", 3)
    tasks = [("restore", "nonpersistent-diskfs", seed) for seed in seeds]
    tasks.append(("reboot", "persistent", seeds[0]))
    return tasks


def _as_bytes(values):
    """Exact byte encoding: equality below means bit-for-bit floats."""
    return struct.pack("<%dd" % len(values), *values)


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    shutdown_pool()
    yield
    shutdown_pool()


def test_pool_reuse_matches_fresh_processes():
    tasks = _tasks()
    sequential = [startup_sample(*task) for task in tasks]

    # Strictest reference: every task in a brand-new worker process.
    with multiprocessing.Pool(2, maxtasksperchild=1) as throwaway:
        fresh = throwaway.starmap(startup_sample, tasks)

    # The warm pool, exercised across two stages so the second stage
    # runs in workers that already executed the first stage's worlds.
    first = run_replications(startup_sample, tasks, workers=2)
    pool_after_first = runner_mod._POOL
    second = run_replications(startup_sample, tasks, workers=2)

    assert runner_mod._POOL is pool_after_first, \
        "second stage should reuse the warm pool, not rebuild it"
    assert _as_bytes(first) == _as_bytes(sequential)
    assert _as_bytes(second) == _as_bytes(sequential)
    assert _as_bytes(fresh) == _as_bytes(sequential)


def test_worker_count_change_rebuilds_pool_and_preserves_results():
    tasks = _tasks()
    sequential = [startup_sample(*task) for task in tasks]

    two = run_replications(startup_sample, tasks, workers=2)
    pool_two = runner_mod._POOL
    three = run_replications(startup_sample, tasks, workers=3)

    assert runner_mod._POOL is not pool_two
    assert runner_mod._POOL_WORKERS == 3
    assert _as_bytes(two) == _as_bytes(sequential)
    assert _as_bytes(three) == _as_bytes(sequential)


def test_shutdown_resets_worker_count():
    run_replications(startup_sample, _tasks()[:2], workers=2)
    assert runner_mod._POOL_WORKERS == 2
    shutdown_pool()
    assert runner_mod._POOL is None
    assert runner_mod._POOL_WORKERS == 0
