"""Dedicated parallel-determinism tests: workers=1 vs workers=N.

Everything else in the suite runs sequentially (``workers=1`` is the
default everywhere); these tests are the one place a real
``multiprocessing`` pool is exercised, asserting the runner's central
claim: results, rendered tables and Chrome traces are byte-identical
for any worker count.  See ``docs/performance.md``.
"""

from repro import cli
from repro.experiments.figure1 import run_figure1
from repro.experiments.runner import (
    merge_accumulators,
    replication_seeds,
    run_replications,
)
from repro.experiments.table2 import run_table2
from repro.obs.runner import trace_experiment
from repro.simulation.monitor import StatAccumulator

#: More workers than the scheduler has to give on a small CI box —
#: oversubscription must not matter, that is the point.
WORKERS = 4


def _cli_output(capsys, argv):
    assert cli.main(argv) == 0
    return capsys.readouterr().out


# -- result-object identity --------------------------------------------------

def test_figure1_workers_match_sequential():
    kwargs = {"samples": 2, "test_seconds": 1.0, "seed": 42}
    sequential = run_figure1(workers=1, **kwargs)
    parallel = run_figure1(workers=WORKERS, **kwargs)
    # Dataclasses of floats: == is exact bitwise equality per statistic.
    assert sequential == parallel


def test_table2_workers_match_sequential():
    sequential = run_table2(samples=2, seed=42, workers=1)
    parallel = run_table2(samples=2, seed=42, workers=WORKERS)
    assert sequential == parallel


# -- rendered-artifact identity ----------------------------------------------

def test_table2_cli_bytes_identical(capsys):
    argv = ["table2", "--samples", "2", "--seed", "42"]
    sequential = _cli_output(capsys, argv + ["--workers", "1"])
    parallel = _cli_output(capsys, argv + ["--workers", str(WORKERS)])
    assert sequential == parallel


def test_figure1_cli_bytes_identical(capsys):
    argv = ["figure1", "--samples", "2", "--seed", "42"]
    sequential = _cli_output(capsys, argv + ["--workers", "1"])
    parallel = _cli_output(capsys, argv + ["--workers", str(WORKERS)])
    assert sequential == parallel


def test_trace_unperturbed_by_pool_dispatch(tmp_path):
    """A traced run after a parallel fan-out matches one after a
    sequential fan-out: pool machinery leaves no residue in the
    process that could reach the tracer's world."""
    out = []
    for label, workers in (("seq", 1), ("par", WORKERS)):
        run_figure1(samples=1, test_seconds=1.0, seed=42, workers=workers)
        path = tmp_path / ("trace-%s.json" % label)
        trace_experiment("figure1", str(path), seed=42)
        out.append(path.read_bytes())
    assert out[0] == out[1]


# -- runner primitives -------------------------------------------------------

def _add_pair(a, b):  # module-level: must cross the pickle boundary
    return a + b


def test_run_replications_order_independent_of_workers():
    tasks = [(i, i * i) for i in range(16)]
    assert run_replications(_add_pair, tasks, workers=1) \
        == run_replications(_add_pair, tasks, workers=WORKERS)


def test_replication_seeds_pure_function_of_root_seed():
    first = replication_seeds(42, "fig1", 8)
    assert first == replication_seeds(42, "fig1", 8)
    assert len(set(first)) == len(first)  # independent children
    assert first[:4] == replication_seeds(42, "fig1", 4)  # prefix-stable
    assert first != replication_seeds(43, "fig1", 8)
    assert first != replication_seeds(42, "table2", 8)


def test_merge_accumulators_is_deterministic():
    parts = []
    for index, seed in enumerate(replication_seeds(7, "merge", 5)):
        acc = StatAccumulator("part%d" % index)
        acc.add(float(seed % 1000))
        acc.add(float(seed % 97))
        parts.append(acc)
    a = merge_accumulators(parts, name="total")
    b = merge_accumulators(parts, name="total")
    assert (a.count, a.mean, a.stdev, a.minimum, a.maximum) \
        == (b.count, b.mean, b.stdev, b.minimum, b.maximum)
    assert a.count == 10


def test_workers_zero_and_none_mean_sequential():
    tasks = [(1, 2), (3, 4)]
    expected = [3, 7]
    assert run_replications(_add_pair, tasks, workers=0) == expected
    assert run_replications(_add_pair, tasks, workers=None) == expected
