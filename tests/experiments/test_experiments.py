"""Fast-scale sanity tests of the experiment harnesses.

The full paper-shaped runs live in ``benchmarks/``; these tests exercise
the same code paths at reduced scale so the experiment plumbing is
covered by the ordinary test suite.
"""

import pytest

from repro.experiments.ablations import (
    run_proxy_cache_ablation,
    run_scheduler_ablation,
    run_staging_ablation,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.migration_experiment import run_migration_experiment
from repro.experiments.overlay_experiment import run_overlay_experiment
from repro.experiments.table1 import macro_run, run_table1
from repro.experiments.table2 import run_table2, startup_sample
from repro.simulation import SimulationError
from repro.workloads import spec_seis


def test_table1_small_scale_preserves_shape():
    rows = run_table1(scale=0.02)
    indexed = {(r.application, r.resource): r for r in rows}
    assert len(rows) == 6
    for app in ("SPECseis", "SPECclimate"):
        assert indexed[(app, "physical")].overhead is None
        assert indexed[(app, "vm-localdisk")].overhead > 0
        assert indexed[(app, "vm-pvfs")].overhead \
            > indexed[(app, "vm-localdisk")].overhead


def test_macro_run_unknown_resource():
    with pytest.raises(SimulationError):
        macro_run(lambda: spec_seis(0.01), "abacus")


def test_table2_single_samples():
    rows = run_table2(samples=2)
    assert len(rows) == 6
    indexed = {(r.start_mode, r.storage_mode): r for r in rows}
    assert indexed[("restore", "nonpersistent-diskfs")].mean \
        < indexed[("reboot", "nonpersistent-diskfs")].mean
    assert indexed[("restore", "persistent")].mean > 200.0
    for row in rows:
        assert row.minimum <= row.mean <= row.maximum
        assert row.samples == 2


def test_startup_sample_validates_modes():
    with pytest.raises(SimulationError):
        startup_sample("hibernate", "persistent", seed=0)
    with pytest.raises(SimulationError):
        startup_sample("reboot", "floppy", seed=0)


def test_figure1_small_sample_run():
    results = run_figure1(samples=5, test_seconds=1.0)
    assert len(results) == 12
    for result in results:
        assert result.mean_slowdown >= 1.0 - 1e-9
        assert result.samples == 5
    # The unloaded physical case is the 1.0 baseline.
    base = next(r for r in results
                if (r.load_level, r.test_on, r.load_on)
                == ("none", "physical", "physical"))
    assert base.mean_slowdown == pytest.approx(1.0)


def test_proxy_cache_ablation_shape():
    results = run_proxy_cache_ablation(instantiations=2)
    cached = next(r for r in results if r.proxy_cache)
    uncached = next(r for r in results if not r.proxy_cache)
    assert cached.warm_mean < uncached.warm_mean


def test_scheduler_ablation_quick():
    rows = run_scheduler_ablation(duration=50.0)
    assert len(rows) == 10  # 5 mechanisms x 2 VMs
    wfq = [r for r in rows if r.mechanism == "wfq"]
    assert all(r.error < 0.05 for r in wfq)


def test_staging_ablation_extremes():
    points = run_staging_ablation(fractions=(0.02, 1.0),
                                  image_bytes=64 * 1024 * 1024)
    assert points[0].on_demand_wins
    assert points[0].staged_time == pytest.approx(points[1].staged_time,
                                                  rel=0.2)
    with pytest.raises(SimulationError):
        run_staging_ablation(fractions=(0.0,))


def test_overlay_experiment_quick():
    trials = run_overlay_experiment(members=4, trials=2)
    for trial in trials:
        assert trial.pairs == 6
        assert trial.mean_overlay_latency \
            <= trial.mean_direct_latency + 1e-12
    with pytest.raises(SimulationError):
        run_overlay_experiment(members=2)


def test_migration_experiment_quick():
    result = run_migration_experiment(app_seconds=30.0, migrate_after=10.0)
    assert result.final_host == "compute2"
    assert result.mounts_preserved
    assert result.migration_penalty == pytest.approx(result.downtime,
                                                     abs=2.0)


def test_vmm_cost_sensitivity_quick():
    from repro.experiments.ablations import run_vmm_cost_sensitivity

    points = run_vmm_cost_sensitivity(multipliers=(0.5, 2.0), scale=0.05)
    assert points[0].overhead < points[1].overhead
    with pytest.raises(SimulationError):
        run_vmm_cost_sensitivity(multipliers=(0.0,), scale=0.05)


def test_placement_experiment_quick():
    from repro.experiments.placement_experiment import (
        run_placement_ablation,
    )

    results = run_placement_ablation(jobs=2, job_seconds=10.0,
                                     busy_load=3.0)
    predictive = next(r for r in results if r.policy == "predictive")
    random_policy = next(r for r in results if r.policy == "random")
    assert predictive.jobs == random_policy.jobs == 2
    assert predictive.mean_wall <= random_policy.mean_wall + 1e-6
