"""Double-run determinism: same seed, bit-identical results.

The repo's scientific claim rests on reproducibility — this is the
executable version of that claim for the two headline experiments.  The
result rows are dataclasses of floats, so ``==`` here asserts exact
bitwise equality of every statistic, not approximate agreement.
"""

from repro.experiments.figure1 import run_figure1
from repro.experiments.table2 import run_table2, startup_sample
from repro.simulation import RandomStreams, Simulation


def test_figure1_double_run_is_identical():
    kwargs = {"samples": 3, "test_seconds": 1.0, "seed": 42}
    first = run_figure1(**kwargs)
    second = run_figure1(**kwargs)
    assert first == second


def test_table2_double_run_is_identical():
    first = run_table2(samples=2, seed=42)
    second = run_table2(samples=2, seed=42)
    assert first == second


def test_table2_sample_depends_only_on_seed():
    a = startup_sample("restore", "nonpersistent-diskfs", seed=7)
    b = startup_sample("restore", "nonpersistent-diskfs", seed=7)
    c = startup_sample("restore", "nonpersistent-diskfs", seed=8)
    assert a == b
    assert a != c  # the seed really reaches the draws


def test_simulation_default_streams_are_reproducible():
    """Unseeded components draw from the sim's own stream registry."""
    draws = []
    for _run in range(2):
        sim = Simulation(seed=5)
        draws.append([sim.streams.stream("x").random() for _ in range(4)])
    assert draws[0] == draws[1]
    assert Simulation(seed=5).streams.stream("x").random() \
        != Simulation(seed=6).streams.stream("x").random()


def test_simulation_streams_match_standalone_registry():
    """sim.streams is the same derivation as RandomStreams(seed)."""
    sim = Simulation(seed=11)
    standalone = RandomStreams(11)
    assert sim.streams.stream("disk").random() \
        == standalone.stream("disk").random()
