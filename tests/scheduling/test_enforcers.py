"""Tests for the four enforcement mechanisms of Section 3.2."""

import random

import pytest

from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.scheduling import (
    DutyCycleModulator,
    LotteryScheduler,
    PeriodicEnforcer,
    WfqScheduler,
)
from repro.simulation import Simulation, SimulationError


def rig(sim, groups=1, cores=1):
    cpu = ProcessorSharingCpu(sim, cores=cores, context_switch_cost=0.0)
    made = [TaskGroup("vm%d" % i) for i in range(groups)]
    return cpu, made


def infinite_feed(sim, cpu, group, work=10_000.0):
    """Submit one long task so the group always has demand."""
    task = CpuTask("feed-" + group.name, work=work, group=group)
    cpu.submit(task)
    return task


def progress(task):
    return task.work - task.remaining


# ---------------------------------------------------------------------------
# PeriodicEnforcer
# ---------------------------------------------------------------------------

def test_periodic_enforcer_delivers_reserved_share():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    task = infinite_feed(sim, cpu, vm)
    enforcer = PeriodicEnforcer(cpu, {vm: (0.03, 0.10)})
    enforcer.start()
    sim.run(until=100.0)
    assert progress(task) == pytest.approx(30.0, rel=0.02)
    assert enforcer.expected_share(vm) == pytest.approx(0.3)
    assert enforcer.periods_served[vm] >= 990


def test_periodic_enforcer_staggers_two_vms():
    sim = Simulation()
    cpu, (vm1, vm2) = rig(sim, groups=2)
    t1 = infinite_feed(sim, cpu, vm1)
    t2 = infinite_feed(sim, cpu, vm2)
    enforcer = PeriodicEnforcer(cpu, {vm1: (0.05, 0.2), vm2: (0.05, 0.2)})
    enforcer.start()
    sim.run(until=100.0)
    assert progress(t1) == pytest.approx(25.0, rel=0.03)
    assert progress(t2) == pytest.approx(25.0, rel=0.03)


def test_periodic_enforcer_stop_reopens():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    task = infinite_feed(sim, cpu, vm, work=50.0)
    enforcer = PeriodicEnforcer(cpu, {vm: (0.01, 0.10)})
    enforcer.start()
    sim.run(until=10.0)
    enforcer.stop()
    sim.run(until=60.0)
    # After stop the task runs at full speed: ~1.0 + 49 more seconds.
    assert not task.done.triggered or task.finished_at < 60.0


def test_periodic_enforcer_validation():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    with pytest.raises(SimulationError):
        PeriodicEnforcer(cpu, {})
    with pytest.raises(SimulationError):
        PeriodicEnforcer(cpu, {vm: (0.2, 0.1)})
    enforcer = PeriodicEnforcer(cpu, {vm: (0.05, 0.1)})
    enforcer.start()
    with pytest.raises(SimulationError):
        enforcer.start()


# ---------------------------------------------------------------------------
# LotteryScheduler
# ---------------------------------------------------------------------------

def test_lottery_shares_converge_to_tickets():
    sim = Simulation()
    cpu, (vm1, vm2) = rig(sim, groups=2)
    t1 = infinite_feed(sim, cpu, vm1)
    t2 = infinite_feed(sim, cpu, vm2)
    lottery = LotteryScheduler(cpu, {vm1: 3, vm2: 1}, quantum=0.05,
                               rng=random.Random(11))
    lottery.start()
    sim.run(until=200.0)
    assert lottery.expected_share(vm1) == pytest.approx(0.75)
    assert lottery.observed_share(vm1) == pytest.approx(0.75, abs=0.05)
    ratio = progress(t1) / max(progress(t2), 1e-9)
    assert ratio == pytest.approx(3.0, rel=0.15)


def test_lottery_reticketing():
    sim = Simulation()
    cpu, (vm1, vm2) = rig(sim, groups=2)
    infinite_feed(sim, cpu, vm1)
    infinite_feed(sim, cpu, vm2)
    lottery = LotteryScheduler(cpu, {vm1: 1, vm2: 1}, quantum=0.05,
                               rng=random.Random(5))
    lottery.start()
    sim.run(until=10.0)
    lottery.set_tickets(vm1, 9)
    wins_before = dict(lottery.wins)
    sim.run(until=110.0)
    new_wins = lottery.wins[vm1] - wins_before[vm1]
    total_new = sum(lottery.wins.values()) - sum(wins_before.values())
    assert new_wins / total_new == pytest.approx(0.9, abs=0.06)


def test_lottery_validation():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    with pytest.raises(SimulationError):
        LotteryScheduler(cpu, {})
    with pytest.raises(SimulationError):
        LotteryScheduler(cpu, {vm: 0})
    lottery = LotteryScheduler(cpu, {vm: 1})
    with pytest.raises(SimulationError):
        lottery.set_tickets(vm, -1)
    with pytest.raises(SimulationError):
        lottery.set_tickets(TaskGroup("ghost"), 1)


# ---------------------------------------------------------------------------
# WfqScheduler
# ---------------------------------------------------------------------------

def test_wfq_shares_match_weights_deterministically():
    sim = Simulation()
    cpu, (vm1, vm2) = rig(sim, groups=2)
    t1 = infinite_feed(sim, cpu, vm1)
    t2 = infinite_feed(sim, cpu, vm2)
    wfq = WfqScheduler(cpu, {vm1: 2.0, vm2: 1.0}, quantum=0.05)
    wfq.start()
    sim.run(until=60.0)
    assert wfq.expected_share(vm1) == pytest.approx(2.0 / 3.0)
    assert wfq.observed_share(vm1) == pytest.approx(2.0 / 3.0, abs=0.01)
    assert progress(t1) / progress(t2) == pytest.approx(2.0, rel=0.05)


def test_wfq_lower_variance_than_lottery():
    """Determinism: observed share tracks expectation tightly early on."""
    sim = Simulation()
    cpu, (vm1, vm2) = rig(sim, groups=2)
    infinite_feed(sim, cpu, vm1)
    infinite_feed(sim, cpu, vm2)
    wfq = WfqScheduler(cpu, {vm1: 1.0, vm2: 1.0}, quantum=0.05)
    wfq.start()
    sim.run(until=1.0)  # just 20 quanta
    assert wfq.observed_share(vm1) == pytest.approx(0.5, abs=0.051)


def test_wfq_validation():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    with pytest.raises(SimulationError):
        WfqScheduler(cpu, {})
    with pytest.raises(SimulationError):
        WfqScheduler(cpu, {vm: -1.0})
    with pytest.raises(SimulationError):
        WfqScheduler(cpu, {vm: 1.0}, quantum=0.0)


# ---------------------------------------------------------------------------
# DutyCycleModulator (SIGSTOP/SIGCONT)
# ---------------------------------------------------------------------------

def test_modulator_approximates_duty_cycle():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    task = infinite_feed(sim, cpu, vm)
    modulator = DutyCycleModulator(cpu, vm, duty=0.25, period=1.0,
                                   signal_cost=0.0)
    modulator.start()
    sim.run(until=100.0)
    assert progress(task) == pytest.approx(25.0, rel=0.03)
    assert modulator.signals_sent >= 199


def test_modulator_dynamic_duty_change():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    task = infinite_feed(sim, cpu, vm)
    modulator = DutyCycleModulator(cpu, vm, duty=0.1, period=1.0,
                                   signal_cost=0.0)
    modulator.start()
    sim.run(until=50.0)
    at_low = progress(task)
    modulator.set_duty(0.9)
    sim.run(until=100.0)
    at_high = progress(task) - at_low
    assert at_low == pytest.approx(5.0, rel=0.1)
    assert at_high == pytest.approx(45.0, rel=0.1)


def test_modulator_full_duty_never_stops():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    task = infinite_feed(sim, cpu, vm, work=10.0)
    modulator = DutyCycleModulator(cpu, vm, duty=1.0, period=1.0,
                                   signal_cost=0.0)
    modulator.start()
    sim.run(until=10.5)
    assert task.done.triggered


def test_modulator_validation():
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    with pytest.raises(SimulationError):
        DutyCycleModulator(cpu, vm, duty=0.0)
    with pytest.raises(SimulationError):
        DutyCycleModulator(cpu, vm, duty=0.5, period=0.0)
    # The run window must outlast the signal delivery (would otherwise
    # zero-loop the simulator).
    with pytest.raises(SimulationError):
        DutyCycleModulator(cpu, vm, duty=0.01, period=0.01,
                           signal_cost=1e-3)
    modulator = DutyCycleModulator(cpu, vm)
    with pytest.raises(SimulationError):
        modulator.set_duty(2.0)
    with pytest.raises(SimulationError):
        modulator.set_duty(1e-5)


def test_all_enforcers_respect_local_work_priority():
    """The owner's point: a capped VM leaves CPU for local tasks."""
    sim = Simulation()
    cpu, (vm,) = rig(sim)
    vm_task = infinite_feed(sim, cpu, vm)
    local = CpuTask("local-interactive", work=50.0)
    cpu.submit(local)
    enforcer = PeriodicEnforcer(cpu, {vm: (0.02, 0.10)})
    enforcer.start()
    sim.run(until=80.0)
    # Local work got the remaining ~80% of the machine.
    assert local.done.triggered
    assert local.finished_at < 80.0
    assert progress(vm_task) < 0.3 * 80.0
