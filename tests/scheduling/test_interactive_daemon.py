"""Tests for the interactive-cap policy daemon."""

import pytest

from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.scheduling import InteractivePolicyDaemon, parse_constraints
from repro.simulation import Simulation, SimulationError

POLICY = parse_constraints("limit cpu 0.8\nlimit cpu 0.2 when interactive")


def rig(sim):
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm")
    guest = CpuTask("guest", work=10_000.0, group=vm)
    cpu.submit(guest)
    return cpu, vm, guest


def test_daemon_applies_normal_cap_when_idle():
    sim = Simulation()
    cpu, vm, guest = rig(sim)
    daemon = InteractivePolicyDaemon(cpu, [vm], POLICY)
    daemon.start()
    assert daemon.interactive is False
    sim.run(until=10.0)
    cpu.sync()
    # 80% cap in force.
    assert guest.work - guest.remaining == pytest.approx(8.0, rel=0.02)


def test_daemon_tightens_on_local_activity():
    sim = Simulation()
    cpu, vm, guest = rig(sim)
    daemon = InteractivePolicyDaemon(cpu, [vm], POLICY, poll_interval=0.25)
    daemon.start()
    sim.run(until=10.0)
    cpu.sync()
    at_10 = guest.work - guest.remaining

    # The owner sits down: local interactive work appears.
    local = CpuTask("owner-editor", work=50.0)
    cpu.submit(local)
    sim.run(until=20.0)
    cpu.sync()
    at_20 = guest.work - guest.remaining
    assert daemon.interactive is True
    assert daemon.transitions >= 1
    # VM throttled to ~20% while the owner works.
    assert at_20 - at_10 == pytest.approx(2.0, rel=0.15)
    # The owner's work gets nearly everything else.
    assert local.remaining < 50.0 - 7.0


def test_daemon_relaxes_when_owner_leaves():
    sim = Simulation()
    cpu, vm, guest = rig(sim)
    daemon = InteractivePolicyDaemon(cpu, [vm], POLICY, poll_interval=0.25)
    daemon.start()
    local = CpuTask("owner", work=5.0)
    cpu.submit(local)
    sim.run(until=30.0)
    cpu.sync()
    # Local work long gone; daemon must have switched back to 0.8.
    assert daemon.interactive is False
    assert daemon.transitions >= 2
    progress = guest.work - guest.remaining
    # Roughly: ~6.5s interactive-ish at 0.2, rest at 0.8.
    assert progress > 0.5 * 30.0


def test_daemon_splits_cap_among_groups_by_weight():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm1 = TaskGroup("vm1", weight=3.0)
    vm2 = TaskGroup("vm2", weight=1.0)
    g1 = CpuTask("g1", work=1000.0, group=vm1)
    g2 = CpuTask("g2", work=1000.0, group=vm2)
    cpu.submit(g1)
    cpu.submit(g2)
    daemon = InteractivePolicyDaemon(cpu, [vm1, vm2], POLICY)
    daemon.start()
    sim.run(until=10.0)
    cpu.sync()
    assert g1.work - g1.remaining == pytest.approx(6.0, rel=0.05)
    assert g2.work - g2.remaining == pytest.approx(2.0, rel=0.05)


def test_daemon_stop_lifts_caps():
    sim = Simulation()
    cpu, vm, guest = rig(sim)
    daemon = InteractivePolicyDaemon(cpu, [vm], POLICY)
    daemon.start()
    sim.run(until=5.0)
    daemon.stop()
    sim.run(until=10.0)
    cpu.sync()
    progress = guest.work - guest.remaining
    # 5s at 0.8 plus 5s at full speed.
    assert progress == pytest.approx(4.0 + 5.0, rel=0.05)


def test_daemon_validation():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim)
    with pytest.raises(SimulationError):
        InteractivePolicyDaemon(cpu, [], POLICY)
    with pytest.raises(SimulationError):
        InteractivePolicyDaemon(cpu, [TaskGroup("vm")], POLICY,
                                poll_interval=0.0)
    uncapped = parse_constraints("weight 2")
    with pytest.raises(SimulationError):
        InteractivePolicyDaemon(cpu, [TaskGroup("vm")], uncapped)
    daemon = InteractivePolicyDaemon(cpu, [TaskGroup("vm")], POLICY)
    daemon.start()
    with pytest.raises(SimulationError):
        daemon.start()
