"""Property-based tests: the constraint language round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling import compile_constraints, parse_constraints
from repro.scheduling.compiler import InfeasibleSchedule


@settings(max_examples=100, deadline=None)
@given(cap=st.floats(min_value=0.01, max_value=1.0),
       interactive=st.floats(min_value=0.01, max_value=1.0),
       weight=st.floats(min_value=0.1, max_value=100.0))
def test_parse_roundtrip_caps_and_weight(cap, interactive, weight):
    text = ("limit cpu %r\nlimit cpu %r when interactive\n"
            "weight %r" % (cap, interactive, weight))
    constraints = parse_constraints(text)
    assert constraints.cpu_cap == pytest.approx(cap)
    assert constraints.interactive_cpu_cap == pytest.approx(interactive)
    assert constraints.weight == pytest.approx(weight)


@settings(max_examples=100, deadline=None)
@given(slice_ms=st.integers(min_value=1, max_value=99),
       period_ms=st.integers(min_value=100, max_value=1000))
def test_parse_roundtrip_reservations(slice_ms, period_ms):
    text = "reserve slice %dms period %dms" % (slice_ms, period_ms)
    constraints = parse_constraints(text)
    assert constraints.slice_seconds == pytest.approx(slice_ms / 1000.0)
    assert constraints.period_seconds == pytest.approx(period_ms / 1000.0)


@settings(max_examples=100, deadline=None)
@given(slice_ms=st.integers(min_value=1, max_value=100),
       period_ms=st.integers(min_value=1, max_value=200),
       n_vms=st.integers(min_value=1, max_value=8),
       cap=st.floats(min_value=0.05, max_value=1.0),
       cores=st.integers(min_value=1, max_value=4))
def test_compiler_feasibility_is_exact(slice_ms, period_ms, n_vms, cap,
                                       cores):
    """compile_constraints accepts iff utilization fits the budget."""
    if slice_ms > period_ms:
        return  # invalid reservation, rejected at parse level
    text = ("limit cpu %.6f\nreserve slice %dms period %dms"
            % (cap, slice_ms, period_ms))
    constraints = parse_constraints(text)
    vms = ["vm%d" % i for i in range(n_vms)]
    demand = n_vms * slice_ms / period_ms
    budget = cap * cores
    try:
        schedule = compile_constraints(constraints, vms, cores=cores)
    except InfeasibleSchedule:
        assert demand > budget + 1e-9
    else:
        assert demand <= budget + 1e-6
        assert schedule.utilization == pytest.approx(demand, rel=1e-6)
        assert set(schedule.entries) == set(vms)
