"""Unit tests for the constraint language and schedule compiler."""

import pytest

from repro.scheduling import (
    InfeasibleSchedule,
    OwnerConstraints,
    compile_constraints,
    parse_constraints,
)
from repro.scheduling.constraints import ConstraintSyntaxError
from repro.simulation import SimulationError


# ---------------------------------------------------------------------------
# Language
# ---------------------------------------------------------------------------

def test_parse_full_policy():
    text = """
    # Owner policy for desktop pc07
    limit cpu 0.5
    limit cpu 0.2 when interactive
    reserve slice 30ms period 100ms
    weight 2
    """
    constraints = parse_constraints(text)
    assert constraints.cpu_cap == pytest.approx(0.5)
    assert constraints.interactive_cpu_cap == pytest.approx(0.2)
    assert constraints.slice_seconds == pytest.approx(0.030)
    assert constraints.period_seconds == pytest.approx(0.100)
    assert constraints.weight == pytest.approx(2.0)
    assert constraints.has_reservation


def test_parse_empty_policy():
    constraints = parse_constraints("\n  # comments only\n")
    assert constraints.cpu_cap is None
    assert not constraints.has_reservation
    assert constraints.weight == 1.0


def test_time_suffixes():
    constraints = parse_constraints("reserve slice 0.5s period 2s")
    assert constraints.slice_seconds == pytest.approx(0.5)
    assert constraints.period_seconds == pytest.approx(2.0)


def test_effective_cap():
    constraints = parse_constraints(
        "limit cpu 0.8\nlimit cpu 0.3 when interactive")
    assert constraints.effective_cap(interactive=False) == 0.8
    assert constraints.effective_cap(interactive=True) == 0.3


def test_effective_cap_without_interactive_rule():
    constraints = parse_constraints("limit cpu 0.8")
    assert constraints.effective_cap(interactive=True) == 0.8


@pytest.mark.parametrize("bad", [
    "limit cpu",                      # missing value
    "limit memory 0.5",               # unknown resource
    "limit cpu 0.5 when idle",        # unknown condition
    "reserve slice 10ms",             # incomplete reservation
    "weight",                         # missing value
    "frobnicate 3",                   # unknown directive
    "limit cpu banana",               # bad number
    "reserve slice xms period 1s",    # bad time
])
def test_parse_errors(bad):
    with pytest.raises(ConstraintSyntaxError):
        parse_constraints(bad)


def test_error_reports_line_number():
    with pytest.raises(ConstraintSyntaxError, match="line 2"):
        parse_constraints("limit cpu 0.5\nbogus directive")


def test_semantic_validation():
    with pytest.raises(ConstraintSyntaxError):
        OwnerConstraints(cpu_cap=1.5)
    with pytest.raises(ConstraintSyntaxError):
        OwnerConstraints(slice_seconds=0.2, period_seconds=0.1)
    with pytest.raises(ConstraintSyntaxError):
        OwnerConstraints(slice_seconds=0.1)  # slice without period
    with pytest.raises(ConstraintSyntaxError):
        OwnerConstraints(weight=0.0)


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------

def test_compile_periodic_schedule():
    constraints = parse_constraints(
        "limit cpu 0.8\nreserve slice 20ms period 100ms")
    schedule = compile_constraints(constraints, ["vm1", "vm2", "vm3"])
    assert schedule.kind == "periodic"
    assert schedule.entries["vm1"] == (0.020, 0.100)
    assert schedule.utilization == pytest.approx(0.6)
    assert "periodic" in schedule.describe()


def test_compile_infeasible_reservations():
    constraints = parse_constraints(
        "limit cpu 0.5\nreserve slice 30ms period 100ms")
    with pytest.raises(InfeasibleSchedule):
        compile_constraints(constraints, ["vm1", "vm2"])


def test_compile_reservations_respect_cores():
    constraints = parse_constraints("reserve slice 50ms period 100ms")
    # Four half-core VMs fit on two cores.
    schedule = compile_constraints(constraints, list("abcd"), cores=2)
    assert schedule.utilization == pytest.approx(2.0)
    with pytest.raises(InfeasibleSchedule):
        compile_constraints(constraints, list("abcde"), cores=2)


def test_compile_proportional_schedule():
    constraints = parse_constraints("limit cpu 0.5\nweight 3")
    schedule = compile_constraints(constraints, ["vm1", "vm2"])
    assert schedule.kind == "proportional"
    assert schedule.entries["vm1"] == (3.0,)
    assert schedule.utilization == pytest.approx(0.5)
    assert "proportional" in schedule.describe()


def test_compile_interactive_utilization():
    constraints = parse_constraints(
        "limit cpu 0.8\nlimit cpu 0.2 when interactive")
    schedule = compile_constraints(constraints, ["vm1"])
    assert schedule.interactive_utilization == pytest.approx(0.2)


def test_compile_validation():
    constraints = parse_constraints("limit cpu 0.5")
    with pytest.raises(SimulationError):
        compile_constraints(constraints, [])
    with pytest.raises(SimulationError):
        compile_constraints(constraints, ["vm", "vm"])
