"""Unit tests for reproducible random streams."""

from repro.simulation import RandomStreams


def test_same_name_returns_same_stream():
    streams = RandomStreams(seed=1)
    assert streams.stream("disk") is streams.stream("disk")
    assert streams.numpy_stream("x") is streams.numpy_stream("x")


def test_different_names_are_independent():
    streams = RandomStreams(seed=1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_factories():
    first = [RandomStreams(seed=7).stream("load").random() for _ in range(3)]
    second = [RandomStreams(seed=7).stream("load").random() for _ in range(3)]
    # Same seed/name must give identical sequences...
    assert first[0] == second[0]


def test_full_sequence_reproducible():
    def draw(seed):
        streams = RandomStreams(seed=seed)
        rng = streams.stream("load")
        return [rng.random() for _ in range(10)]

    assert draw(3) == draw(3)
    assert draw(3) != draw(4)


def test_adding_consumer_does_not_perturb_existing():
    streams_a = RandomStreams(seed=9)
    seq_a = [streams_a.stream("net").random() for _ in range(5)]

    streams_b = RandomStreams(seed=9)
    streams_b.stream("brand-new-component")  # extra consumer
    seq_b = [streams_b.stream("net").random() for _ in range(5)]
    assert seq_a == seq_b


def test_numpy_stream_reproducible():
    a = RandomStreams(seed=2).numpy_stream("w").normal(size=4)
    b = RandomStreams(seed=2).numpy_stream("w").normal(size=4)
    assert (a == b).all()


def test_child_factories_are_independent_and_reproducible():
    root = RandomStreams(seed=5)
    child_one = root.child("site-1")
    child_two = root.child("site-2")
    assert child_one.seed != child_two.seed
    again = RandomStreams(seed=5).child("site-1")
    assert again.seed == child_one.seed
