"""Unit tests for the sharded conservative-parallel engine."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.simulation import Simulation
from repro.simulation.sharded import (ShardError, ShardKernel,
                                      ShardMessage, ShardPlan,
                                      ShardWorld, ShardedSimulation,
                                      deliver_order,
                                      single_group_shards)
from repro.simulation.workerpool import (WorkerGroupError,
                                         shutdown_warm_group)

#: Fixed per-group seeds (never hash(): it varies across interpreter
#: runs and would make the expected values flaky).
_SEEDS = {"a": 11, "b": 23, "c": 47}


def teardown_module(_module):
    shutdown_warm_group()


# -- toy builders (module-level: they cross process boundaries by name) ------


def build_ring_world(group, lookaheads, groups, hops, latency=0.5,
                     with_recorder=False, interval=1.0):
    """A token ring: each world forwards an incrementing token."""
    registry = MetricsRegistry(partition=group)
    sim = Simulation(seed=_SEEDS[group], metrics=registry)
    recorder = None
    if with_recorder:
        recorder = FlightRecorder(sim, interval=interval,
                                  registry=registry,
                                  include_kernel=False)
    world = ShardWorld(sim, group, lookaheads, recorder=recorder)
    order = list(groups)
    ring_next = order[(order.index(group) + 1) % len(order)]
    log = []
    tokens = registry.counter("ring.tokens")

    def on_token(w, message):
        log.append((w.sim.now, message.sender, message.payload))
        tokens.inc()
        if message.payload < hops:
            w.send(ring_next, "token", message.payload + 1,
                   latency=latency)
        else:
            w.close_outbound()

    world.on_message("token", on_token)
    if order.index(group) == 0:
        def kick(_sim):
            world.send(ring_next, "token", 1, latency=latency)

        sim.call_at(0.25, kick)
    world.collect = lambda w: list(log)
    return world


def build_silent_world(group, lookaheads):
    """No events at all: the engine must terminate immediately."""
    world = ShardWorld(Simulation(seed=_SEEDS[group]), group, lookaheads)
    world.collect = lambda w: "silent"
    return world


def build_exploding_world(group, lookaheads):
    if group == "b":
        raise RuntimeError("boom in %s" % group)
    return ShardWorld(Simulation(seed=_SEEDS[group]), group, lookaheads)


def build_boundary_world(group, lookaheads):
    """Sender emits at *exactly* the lookahead; receiver has a local
    event at exactly the delivery instant (the zero-remainder case)."""
    sim = Simulation(seed=_SEEDS[group])
    world = ShardWorld(sim, group, lookaheads)
    log = []
    if group == "a":
        def kick(_sim):
            world.send("b", "edge", "on-the-boundary", latency=1.0)
            world.close_outbound()

        sim.call_at(1.0, kick)  # deliver lands exactly at t=2.0
    else:
        world.close_outbound()

        def local(_sim):
            log.append(("local", sim.now))

        sim.call_at(2.0, local)  # same instant as the delivery

        def on_edge(w, message):
            log.append(("edge", w.sim.now, message.payload))

        world.on_message("edge", on_edge)
    world.collect = lambda w: list(log)
    return world


def _run_ring(shards, hops=9, **kwargs):
    groups = ["a", "b", "c"]
    plan = ShardPlan.uniform(groups, 0.5)
    engine = ShardedSimulation(build_ring_world, plan, shards=shards,
                               kwargs=dict(groups=groups, hops=hops,
                                           **kwargs))
    return engine.run()


# -- messages and plans ------------------------------------------------------


def test_message_sort_key_orders_by_stamp():
    msgs = [ShardMessage("d", "ch", None, 2.0, 1.0, "b", 0),
            ShardMessage("d", "ch", None, 1.0, 0.5, "b", 1),
            ShardMessage("d", "ch", None, 1.0, 0.5, "a", 0),
            ShardMessage("d", "ch", None, 1.0, 0.2, "c", 4)]
    ordered = deliver_order(msgs)
    assert [(m.deliver_time, m.send_time, m.sender, m.seq)
            for m in ordered] == [(1.0, 0.2, "c", 4), (1.0, 0.5, "a", 0),
                                  (1.0, 0.5, "b", 1), (2.0, 1.0, "b", 0)]


def test_plan_groups_are_canonically_sorted():
    plan = ShardPlan(["c", "a", "b"], {("a", "b"): 0.1})
    assert plan.groups == ("a", "b", "c")
    assert plan.lookahead("a", "b") == 0.1
    assert plan.lookahead("b", "a") == float("inf")
    assert plan.row("a") == {"b": 0.1}


def test_plan_rejects_bad_matrices():
    with pytest.raises(ShardError):
        ShardPlan([])
    with pytest.raises(ShardError):
        ShardPlan(["a", "a"])
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "b"): 0.0})  # zero-delay coupling
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "ghost"): 0.1})
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "a"): 0.1})


def test_single_group_plan_and_shards_validation():
    plan = ShardPlan.single("grid")
    assert plan.groups == ("grid",)
    assert single_group_shards(4) == 1
    assert single_group_shards(1) == 1
    with pytest.raises(ShardError):
        single_group_shards(0)


# -- world-side channel API --------------------------------------------------


def test_send_enforces_the_conservative_contract():
    world = ShardWorld(Simulation(), "a", {"b": 0.5})
    with pytest.raises(ShardError):
        world.send("b", "ch", None, latency=0.4)  # undercuts lookahead
    with pytest.raises(ShardError):
        world.send("a", "ch", None, latency=0.5)  # to itself
    with pytest.raises(ShardError):
        world.send("ghost", "ch", None, latency=0.5)  # no channel
    message = world.send("b", "ch", "ok", latency=0.5)
    assert message.deliver_time == 0.5 and message.seq == 0
    assert world.send("b", "ch", "ok", latency=0.7).seq == 1
    world.close_outbound()
    with pytest.raises(ShardError):
        world.send("b", "ch", None, latency=0.5)


def test_world_rejects_nonpositive_lookaheads_and_dup_handlers():
    with pytest.raises(ShardError):
        ShardWorld(Simulation(), "a", {"b": 0.0})
    with pytest.raises(ShardError):
        ShardWorld(Simulation(), "a", {"a": 0.5})
    world = ShardWorld(Simulation(), "a", {})
    world.on_message("ch", lambda w, m: None)
    with pytest.raises(ShardError):
        world.on_message("ch", lambda w, m: None)


def test_world_rejects_started_recorder():
    sim = Simulation()
    recorder = FlightRecorder(sim, interval=1.0)
    recorder.start()
    with pytest.raises(ShardError):
        ShardWorld(sim, "a", {}, recorder=recorder)


def test_dispatch_without_handler_is_an_error():
    world = ShardWorld(Simulation(), "a", {})
    kernel = ShardKernel(world)
    message = ShardMessage("a", "ghost", None, 1.0, 0.5, "b", 0)
    with pytest.raises(ShardError):
        kernel.round({"horizon": 2.0, "messages": [message]})


# -- the engine --------------------------------------------------------------


def test_ring_is_identical_for_every_shard_count():
    results = {shards: _run_ring(shards) for shards in (1, 2, 3)}
    reference = results[1]
    assert reference.messages_delivered == 9
    assert reference.total_events > 0
    for result in results.values():
        assert result.rounds == reference.rounds
        assert result.end_time == reference.end_time
        for group in "abc":
            assert result.data(group) == reference.data(group)
            assert result.results[group]["now"] \
                == reference.results[group]["now"]
            assert result.results[group]["events"] \
                == reference.results[group]["events"]


def test_shards_cap_at_group_count():
    result = _run_ring(16)
    assert result.workers == 3
    assert result.shards == 16


def test_merged_metrics_equal_across_placements():
    merged = {shards: _run_ring(shards).merged_metrics().to_json()
              for shards in (1, 3)}
    assert merged[1] == merged[3]
    assert '"ring.tokens[a]"' in merged[1]


def test_recorders_align_and_merge_across_shard_counts():
    outs = {}
    for shards in (1, 2):
        result = _run_ring(shards, with_recorder=True)
        merged = result.merged_recorder()
        outs[shards] = merged.to_jsonl()
        # Every shard sampled the identical heartbeat grid up to the
        # global end, plus the final beat exactly at it.
        times = [entry.time for entry in merged.entries]
        assert times == sorted(times)
        assert times[-1] == result.end_time
    assert outs[1] == outs[2]


def test_silent_worlds_terminate_without_rounds():
    plan = ShardPlan.uniform(["a", "b"], 0.5)
    engine = ShardedSimulation(build_silent_world, plan, shards=1)
    result = engine.run()
    assert result.rounds == 0
    assert result.end_time == 0.0
    assert result.data("a") == "silent"


def test_boundary_delivery_at_exact_lookahead():
    """deliver_time == horizon == a local event's time: the message
    must land once, at its stamp, after the same-instant local event
    (older queue entries fire first)."""
    plan = ShardPlan(["a", "b"], {("a", "b"): 1.0})
    for shards in (1, 2):
        engine = ShardedSimulation(build_boundary_world, plan,
                                   shards=shards)
        result = engine.run()
        assert result.data("b") == [("local", 2.0),
                                    ("edge", 2.0, "on-the-boundary")]


def test_worker_failure_propagates_with_context():
    plan = ShardPlan.uniform(["a", "b"], 0.5)
    engine = ShardedSimulation(build_exploding_world, plan, shards=2)
    with pytest.raises(WorkerGroupError, match="boom in b"):
        engine.run()
    # Local mode surfaces the original exception directly.
    engine = ShardedSimulation(build_exploding_world, plan, shards=1)
    with pytest.raises(RuntimeError, match="boom in b"):
        engine.run()


def test_engine_rejects_unpicklable_builders():
    plan = ShardPlan.single()
    with pytest.raises(ShardError):
        ShardedSimulation(lambda group, lookaheads: None, plan)
    with pytest.raises(ShardError):
        ShardedSimulation(build_silent_world, plan, shards=0)


def test_round_robin_assignment_is_canonical():
    plan = ShardPlan.uniform(["a", "b", "c", "d", "e"], 0.1)
    engine = ShardedSimulation(build_silent_world, plan, shards=2)
    assert engine._assignment() == [["a", "c", "e"], ["b", "d"]]


# -- adaptive windows (earliest-cross-send forecasts) -------------------------


#: The forecast scenario's announce instants (known to "a" in advance).
_FORECAST_SENDS = (1.0, 2.0)


def build_forecast_world(group, lookaheads, ticks=40, step=0.05,
                         promise=True):
    """'a' announces at instants it can forecast; 'b' is dense with
    internal work, never sends, and logs what it receives."""
    sim = Simulation(seed=_SEEDS[group])
    world = ShardWorld(sim, group, lookaheads)
    log = []
    for k in range(1, ticks + 1):  # both shards busy with local events
        sim.call_at(step * k, lambda _sim: None)
    if group == "a":
        if promise:
            world.promise_no_send_before(_FORECAST_SENDS[0])

        def announce(index):
            def fire(_sim):
                world.send("b", "tok", index, latency=0.1)
                if index + 1 < len(_FORECAST_SENDS):
                    if promise:
                        world.promise_no_send_before(
                            _FORECAST_SENDS[index + 1])
                else:
                    world.close_outbound()
            return fire

        for i, when in enumerate(_FORECAST_SENDS):
            sim.call_at(when, announce(i))
    else:
        if promise:
            # Open but forecast-silent: the adaptive coordinator treats
            # this like a close while the channel stays usable.
            world.promise_no_send_before(float("inf"))
        world.on_message("tok",
                         lambda w, m: log.append((w.sim.now, m.payload)))
    world.collect = lambda w: list(log)
    return world


def _run_forecast(adaptive, shards=1, **kwargs):
    plan = ShardPlan.uniform(["a", "b"], 0.1)
    engine = ShardedSimulation(build_forecast_world, plan, shards=shards,
                               kwargs=kwargs, adaptive=adaptive)
    return engine.run()


def test_promise_is_monotone_and_binding():
    world = ShardWorld(Simulation(), "a", {"b": 0.5})
    world.promise_no_send_before(2.0)
    world.promise_no_send_before(1.0)  # never retreats
    assert world.send_promise == 2.0
    with pytest.raises(ShardError):
        world.send("b", "ch", None, latency=0.5)  # now=0 < promise
    # A past promise is inert: sim.now == 0 >= 0.0.
    fresh = ShardWorld(Simulation(), "a", {"b": 0.5})
    fresh.promise_no_send_before(0.0)
    assert fresh.send("b", "ch", "ok", latency=0.5).seq == 0


def test_status_and_round_report_the_promise():
    sim = Simulation()
    world = ShardWorld(sim, "a", {})
    world.promise_no_send_before(3.5)
    kernel = ShardKernel(world)
    assert kernel.status()["promise"] == 3.5
    report = kernel.round({"horizon": 1.0, "messages": []})
    assert report["promise"] == 3.5


def test_adaptive_windows_cut_rounds_with_identical_artifacts():
    fixed = _run_forecast(adaptive=False)
    adaptive = _run_forecast(adaptive=True)
    # Same run, bit for bit: deliveries, end time, per-shard events.
    expected = [(1.1, 0), (2.1, 1)]
    for result in (fixed, adaptive):
        assert result.data("a") == []
        assert result.data("b") == expected
        assert result.end_time == fixed.end_time
        assert result.results["b"]["events"] \
            == fixed.results["b"]["events"]
    # The whole point: forecasts collapse the lockstep window march.
    assert adaptive.rounds < fixed.rounds
    assert fixed.rounds > 10  # the fixed schedule really is lockstep


def test_adaptive_run_identical_across_shard_counts():
    results = {shards: _run_forecast(adaptive=True, shards=shards)
               for shards in (1, 2)}
    assert results[1].data("b") == results[2].data("b")
    assert results[1].rounds == results[2].rounds
    assert results[1].end_time == results[2].end_time


def test_adaptive_without_promises_matches_fixed_schedule():
    """Worlds that never forecast run the exact fixed round count:
    adaptive mode only acts on explicit promises."""
    fixed = _run_forecast(adaptive=False, promise=False)
    adaptive = _run_forecast(adaptive=True, promise=False)
    assert adaptive.rounds == fixed.rounds
    assert adaptive.data("b") == fixed.data("b")


def test_broken_promise_is_an_error():
    sim = Simulation()
    world = ShardWorld(sim, "a", {"b": 0.5})
    world.promise_no_send_before(5.0)

    def early(_sim):
        world.send("b", "ch", None, latency=0.5)

    sim.call_at(1.0, early)
    kernel = ShardKernel(world)
    with pytest.raises(ShardError, match="breaking its promise"):
        kernel.round({"horizon": 2.0, "messages": []})


# -- non-decomposable notices -------------------------------------------------


def test_single_group_shards_notice_and_strict(capsys):
    assert single_group_shards(4, "one kernel") == 1
    err = capsys.readouterr().err
    assert "non-decomposable world (one kernel)" in err
    assert "--shards 4" in err
    assert single_group_shards(1, "one kernel") == 1
    assert capsys.readouterr().err == ""  # no notice for the no-op case
    with pytest.raises(ShardError, match="non-decomposable"):
        single_group_shards(2, strict=True)
    # A ShardError is a ValueError: strict callers can catch it as one.
    assert issubclass(ShardError, ValueError)
