"""Unit tests for the sharded conservative-parallel engine."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.simulation import Simulation
from repro.simulation.sharded import (ShardError, ShardKernel,
                                      ShardMessage, ShardPlan,
                                      ShardWorld, ShardedSimulation,
                                      deliver_order,
                                      single_group_shards)
from repro.simulation.workerpool import (WorkerGroupError,
                                         shutdown_warm_group)

#: Fixed per-group seeds (never hash(): it varies across interpreter
#: runs and would make the expected values flaky).
_SEEDS = {"a": 11, "b": 23, "c": 47}


def teardown_module(_module):
    shutdown_warm_group()


# -- toy builders (module-level: they cross process boundaries by name) ------


def build_ring_world(group, lookaheads, groups, hops, latency=0.5,
                     with_recorder=False, interval=1.0):
    """A token ring: each world forwards an incrementing token."""
    registry = MetricsRegistry(partition=group)
    sim = Simulation(seed=_SEEDS[group], metrics=registry)
    recorder = None
    if with_recorder:
        recorder = FlightRecorder(sim, interval=interval,
                                  registry=registry,
                                  include_kernel=False)
    world = ShardWorld(sim, group, lookaheads, recorder=recorder)
    order = list(groups)
    ring_next = order[(order.index(group) + 1) % len(order)]
    log = []
    tokens = registry.counter("ring.tokens")

    def on_token(w, message):
        log.append((w.sim.now, message.sender, message.payload))
        tokens.inc()
        if message.payload < hops:
            w.send(ring_next, "token", message.payload + 1,
                   latency=latency)
        else:
            w.close_outbound()

    world.on_message("token", on_token)
    if order.index(group) == 0:
        def kick(_sim):
            world.send(ring_next, "token", 1, latency=latency)

        sim.call_at(0.25, kick)
    world.collect = lambda w: list(log)
    return world


def build_silent_world(group, lookaheads):
    """No events at all: the engine must terminate immediately."""
    world = ShardWorld(Simulation(seed=_SEEDS[group]), group, lookaheads)
    world.collect = lambda w: "silent"
    return world


def build_exploding_world(group, lookaheads):
    if group == "b":
        raise RuntimeError("boom in %s" % group)
    return ShardWorld(Simulation(seed=_SEEDS[group]), group, lookaheads)


def build_boundary_world(group, lookaheads):
    """Sender emits at *exactly* the lookahead; receiver has a local
    event at exactly the delivery instant (the zero-remainder case)."""
    sim = Simulation(seed=_SEEDS[group])
    world = ShardWorld(sim, group, lookaheads)
    log = []
    if group == "a":
        def kick(_sim):
            world.send("b", "edge", "on-the-boundary", latency=1.0)
            world.close_outbound()

        sim.call_at(1.0, kick)  # deliver lands exactly at t=2.0
    else:
        world.close_outbound()

        def local(_sim):
            log.append(("local", sim.now))

        sim.call_at(2.0, local)  # same instant as the delivery

        def on_edge(w, message):
            log.append(("edge", w.sim.now, message.payload))

        world.on_message("edge", on_edge)
    world.collect = lambda w: list(log)
    return world


def _run_ring(shards, hops=9, **kwargs):
    groups = ["a", "b", "c"]
    plan = ShardPlan.uniform(groups, 0.5)
    engine = ShardedSimulation(build_ring_world, plan, shards=shards,
                               kwargs=dict(groups=groups, hops=hops,
                                           **kwargs))
    return engine.run()


# -- messages and plans ------------------------------------------------------


def test_message_sort_key_orders_by_stamp():
    msgs = [ShardMessage("d", "ch", None, 2.0, 1.0, "b", 0),
            ShardMessage("d", "ch", None, 1.0, 0.5, "b", 1),
            ShardMessage("d", "ch", None, 1.0, 0.5, "a", 0),
            ShardMessage("d", "ch", None, 1.0, 0.2, "c", 4)]
    ordered = deliver_order(msgs)
    assert [(m.deliver_time, m.send_time, m.sender, m.seq)
            for m in ordered] == [(1.0, 0.2, "c", 4), (1.0, 0.5, "a", 0),
                                  (1.0, 0.5, "b", 1), (2.0, 1.0, "b", 0)]


def test_plan_groups_are_canonically_sorted():
    plan = ShardPlan(["c", "a", "b"], {("a", "b"): 0.1})
    assert plan.groups == ("a", "b", "c")
    assert plan.lookahead("a", "b") == 0.1
    assert plan.lookahead("b", "a") == float("inf")
    assert plan.row("a") == {"b": 0.1}


def test_plan_rejects_bad_matrices():
    with pytest.raises(ShardError):
        ShardPlan([])
    with pytest.raises(ShardError):
        ShardPlan(["a", "a"])
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "b"): 0.0})  # zero-delay coupling
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "ghost"): 0.1})
    with pytest.raises(ShardError):
        ShardPlan(["a", "b"], {("a", "a"): 0.1})


def test_single_group_plan_and_shards_validation():
    plan = ShardPlan.single("grid")
    assert plan.groups == ("grid",)
    assert single_group_shards(4) == 1
    assert single_group_shards(1) == 1
    with pytest.raises(ShardError):
        single_group_shards(0)


# -- world-side channel API --------------------------------------------------


def test_send_enforces_the_conservative_contract():
    world = ShardWorld(Simulation(), "a", {"b": 0.5})
    with pytest.raises(ShardError):
        world.send("b", "ch", None, latency=0.4)  # undercuts lookahead
    with pytest.raises(ShardError):
        world.send("a", "ch", None, latency=0.5)  # to itself
    with pytest.raises(ShardError):
        world.send("ghost", "ch", None, latency=0.5)  # no channel
    message = world.send("b", "ch", "ok", latency=0.5)
    assert message.deliver_time == 0.5 and message.seq == 0
    assert world.send("b", "ch", "ok", latency=0.7).seq == 1
    world.close_outbound()
    with pytest.raises(ShardError):
        world.send("b", "ch", None, latency=0.5)


def test_world_rejects_nonpositive_lookaheads_and_dup_handlers():
    with pytest.raises(ShardError):
        ShardWorld(Simulation(), "a", {"b": 0.0})
    with pytest.raises(ShardError):
        ShardWorld(Simulation(), "a", {"a": 0.5})
    world = ShardWorld(Simulation(), "a", {})
    world.on_message("ch", lambda w, m: None)
    with pytest.raises(ShardError):
        world.on_message("ch", lambda w, m: None)


def test_world_rejects_started_recorder():
    sim = Simulation()
    recorder = FlightRecorder(sim, interval=1.0)
    recorder.start()
    with pytest.raises(ShardError):
        ShardWorld(sim, "a", {}, recorder=recorder)


def test_dispatch_without_handler_is_an_error():
    world = ShardWorld(Simulation(), "a", {})
    kernel = ShardKernel(world)
    message = ShardMessage("a", "ghost", None, 1.0, 0.5, "b", 0)
    with pytest.raises(ShardError):
        kernel.round({"horizon": 2.0, "messages": [message]})


# -- the engine --------------------------------------------------------------


def test_ring_is_identical_for_every_shard_count():
    results = {shards: _run_ring(shards) for shards in (1, 2, 3)}
    reference = results[1]
    assert reference.messages_delivered == 9
    assert reference.total_events > 0
    for result in results.values():
        assert result.rounds == reference.rounds
        assert result.end_time == reference.end_time
        for group in "abc":
            assert result.data(group) == reference.data(group)
            assert result.results[group]["now"] \
                == reference.results[group]["now"]
            assert result.results[group]["events"] \
                == reference.results[group]["events"]


def test_shards_cap_at_group_count():
    result = _run_ring(16)
    assert result.workers == 3
    assert result.shards == 16


def test_merged_metrics_equal_across_placements():
    merged = {shards: _run_ring(shards).merged_metrics().to_json()
              for shards in (1, 3)}
    assert merged[1] == merged[3]
    assert '"ring.tokens[a]"' in merged[1]


def test_recorders_align_and_merge_across_shard_counts():
    outs = {}
    for shards in (1, 2):
        result = _run_ring(shards, with_recorder=True)
        merged = result.merged_recorder()
        outs[shards] = merged.to_jsonl()
        # Every shard sampled the identical heartbeat grid up to the
        # global end, plus the final beat exactly at it.
        times = [entry.time for entry in merged.entries]
        assert times == sorted(times)
        assert times[-1] == result.end_time
    assert outs[1] == outs[2]


def test_silent_worlds_terminate_without_rounds():
    plan = ShardPlan.uniform(["a", "b"], 0.5)
    engine = ShardedSimulation(build_silent_world, plan, shards=1)
    result = engine.run()
    assert result.rounds == 0
    assert result.end_time == 0.0
    assert result.data("a") == "silent"


def test_boundary_delivery_at_exact_lookahead():
    """deliver_time == horizon == a local event's time: the message
    must land once, at its stamp, after the same-instant local event
    (older queue entries fire first)."""
    plan = ShardPlan(["a", "b"], {("a", "b"): 1.0})
    for shards in (1, 2):
        engine = ShardedSimulation(build_boundary_world, plan,
                                   shards=shards)
        result = engine.run()
        assert result.data("b") == [("local", 2.0),
                                    ("edge", 2.0, "on-the-boundary")]


def test_worker_failure_propagates_with_context():
    plan = ShardPlan.uniform(["a", "b"], 0.5)
    engine = ShardedSimulation(build_exploding_world, plan, shards=2)
    with pytest.raises(WorkerGroupError, match="boom in b"):
        engine.run()
    # Local mode surfaces the original exception directly.
    engine = ShardedSimulation(build_exploding_world, plan, shards=1)
    with pytest.raises(RuntimeError, match="boom in b"):
        engine.run()


def test_engine_rejects_unpicklable_builders():
    plan = ShardPlan.single()
    with pytest.raises(ShardError):
        ShardedSimulation(lambda group, lookaheads: None, plan)
    with pytest.raises(ShardError):
        ShardedSimulation(build_silent_world, plan, shards=0)


def test_round_robin_assignment_is_canonical():
    plan = ShardPlan.uniform(["a", "b", "c", "d", "e"], 0.1)
    engine = ShardedSimulation(build_silent_world, plan, shards=2)
    assert engine._assignment() == [["a", "c", "e"], ["b", "d"]]
