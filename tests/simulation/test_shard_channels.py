"""Property tests: channel delivery order is interleaving-invariant.

The determinism contract of the sharded engine rests on one invariant:
the order in which a shard observes its inbound messages is a pure
function of the message *set* — the ``(deliver_time, send_time,
sender, seq)`` stamps — and never of how the messages arrived: which
barrier round carried them, how the coordinator happened to interleave
worker replies, or how a transport batched them.  These tests drive a
real :class:`ShardKernel` through arbitrary arrival interleavings that
Hypothesis invents and require the observation log to come out
identical, plus pin the two edge cases that make or break conservative
engines: same-instant stamps and deliveries landing exactly on a
window boundary (zero-remainder lookahead).
"""

from hypothesis import given, settings, strategies as st

from repro.simulation import Simulation
from repro.simulation.sharded import (ShardKernel, ShardMessage,
                                      ShardWorld, deliver_order)

_SENDERS = ("n1", "n2", "n3")


def _make_messages(specs):
    """Stamped messages for ``(sender_idx, deliver_slot, send_slot)``
    triples; seq numbers allocated per sender in list order (exactly
    how ShardWorld.send allocates them)."""
    seqs = {}
    messages = []
    for sender_idx, deliver_slot, send_slot in specs:
        sender = _SENDERS[sender_idx]
        deliver_time = 1.0 + 0.25 * deliver_slot
        send_time = max(0.0, deliver_time - 0.25 * (send_slot + 1))
        seq = seqs.get(sender, 0)
        seqs[sender] = seq + 1
        messages.append(ShardMessage("dest", "ch", len(messages),
                                     deliver_time, send_time, sender,
                                     seq))
    return messages


def _observe(messages, chunk_sizes):
    """Run a fresh receiver world, feeding ``messages`` across rounds
    sized by ``chunk_sizes`` (arbitrary transport batching), and
    return the handler's observation log."""
    world = ShardWorld(Simulation(), "dest", {})
    log = []
    world.on_message("ch", lambda w, m: log.append(
        (w.sim.now, m.send_time, m.sender, m.seq, m.payload)))
    kernel = ShardKernel(world)
    remaining = list(messages)
    # All stamps are >= 1.0; run the pre-delivery rounds below that so
    # every batching is legal (nothing lands in the receiver's past).
    horizons = [0.25, 0.5, 0.75]
    chunks = []
    for size in chunk_sizes:
        chunks.append(remaining[:size])
        remaining = remaining[size:]
    chunks.append(remaining)
    for index, chunk in enumerate(chunks[:-1]):
        kernel.round({"horizon": horizons[index % len(horizons)],
                      "messages": chunk})
    kernel.round({"horizon": float("inf"), "messages": chunks[-1]})
    return log


@st.composite
def message_specs(draw):
    return draw(st.lists(
        st.tuples(st.integers(0, len(_SENDERS) - 1),
                  st.integers(0, 6), st.integers(0, 4)),
        min_size=1, max_size=14))


@settings(max_examples=60, deadline=None)
@given(specs=message_specs(), data=st.data())
def test_observation_order_invariant_to_arrival_interleaving(specs, data):
    """Shuffled presentation + arbitrary round batching: same log."""
    messages = _make_messages(specs)
    baseline = _observe(messages, chunk_sizes=[])

    shuffled = data.draw(st.permutations(messages))
    cuts = data.draw(st.lists(st.integers(0, len(messages)),
                              min_size=0, max_size=3))
    assert _observe(shuffled, chunk_sizes=cuts) == baseline
    # And the log's order is exactly the canonical stamp order.
    assert [m.payload for m in deliver_order(messages)] \
        == [entry[-1] for entry in baseline]


@settings(max_examples=60, deadline=None)
@given(specs=message_specs())
def test_stamps_are_unique_per_message(specs):
    """(send_time, sender, seq) can never collide: seq is allocated
    per sender channel, so the total order has no ties to break
    arbitrarily."""
    messages = _make_messages(specs)
    stamps = {(m.send_time, m.sender, m.seq) for m in messages}
    assert len(stamps) == len(messages)
    keys = sorted(m.sort_key for m in messages)
    assert len(set(keys)) == len(keys)


def test_same_instant_messages_deliver_in_stamp_order():
    """Equal deliver times: send time, then sender name, then seq."""
    messages = [
        ShardMessage("dest", "ch", "late-send", 2.0, 1.5, "n2", 0),
        ShardMessage("dest", "ch", "n2-first", 2.0, 1.0, "n2", 1),
        ShardMessage("dest", "ch", "n1-first", 2.0, 1.0, "n1", 0),
        ShardMessage("dest", "ch", "n1-second", 2.0, 1.0, "n1", 1),
    ]
    for presentation in (messages, list(reversed(messages))):
        log = _observe(presentation, chunk_sizes=[])
        assert [entry[-1] for entry in log] == [
            "n1-first", "n1-second", "n2-first", "late-send"]
        assert all(entry[0] == 2.0 for entry in log)


def test_zero_remainder_boundary_fires_after_local_same_instant_event():
    """A delivery landing exactly on an already-reached window edge
    still fires at its stamp — after local events already queued for
    that same instant (older entries first), never lost, never early."""
    sim = Simulation()
    world = ShardWorld(sim, "dest", {})
    log = []
    world.on_message("ch", lambda w, m: log.append(("msg", w.sim.now)))
    sim.call_at(2.0, lambda _sim: log.append(("local", sim.now)))
    kernel = ShardKernel(world)
    # Round 1 runs the receiver exactly to t=2.0 (the local event fires).
    kernel.round({"horizon": 2.0, "messages": []})
    assert world.sim.now == 2.0
    # Round 2 delivers a message stamped deliver_time == now exactly.
    boundary = ShardMessage("dest", "ch", None, 2.0, 1.0, "n1", 0)
    report = kernel.round({"horizon": float("inf"),
                           "messages": [boundary]})
    assert log == [("local", 2.0), ("msg", 2.0)]
    assert report["now"] == 2.0


def _observe_with_horizons(messages, horizons):
    """Like :func:`_observe`, but the pre-delivery rounds follow an
    explicit window schedule (one round per horizon, messages split
    evenly), modelling coarser or finer shard plans."""
    world = ShardWorld(Simulation(), "dest", {})
    log = []
    world.on_message("ch", lambda w, m: log.append(
        (w.sim.now, m.send_time, m.sender, m.seq, m.payload)))
    kernel = ShardKernel(world)
    early = [m for m in messages if m.deliver_time <= min(horizons or
                                                          [0.0])]
    late = [m for m in messages if m not in early]
    kernel.round({"horizon": min(horizons or [float("inf")]),
                  "messages": early})
    for horizon in horizons[1:]:
        kernel.round({"horizon": horizon, "messages": []})
    kernel.round({"horizon": float("inf"), "messages": late})
    return log


@settings(max_examples=60, deadline=None)
@given(specs=message_specs(), data=st.data())
def test_observation_invariant_to_partition_window_schedule(specs, data):
    """Site-level plans run few wide windows; host-level plans run many
    tight ones (LAN lookaheads) — and adaptive plans widen windows from
    forecasts.  The observation log must not notice: delivery order is
    a pure function of the stamps, whatever window grid executed them.

    All stamps are >= 1.0, so any monotone schedule below that is a
    legal prefix for an empty-delivery march."""
    messages = _make_messages(specs)
    site_like = _observe_with_horizons(messages, [0.9])
    host_like = _observe_with_horizons(
        messages, [0.1 * k for k in range(1, 10)])
    adaptive_like = _observe_with_horizons(
        messages, data.draw(st.lists(
            st.floats(min_value=0.05, max_value=0.95),
            min_size=1, max_size=6).map(sorted)))
    assert site_like == host_like == adaptive_like
    assert [m.payload for m in deliver_order(messages)] \
        == [entry[-1] for entry in site_like]


def test_host_partition_plan_windows_deliver_like_site_plan():
    """One concrete end-to-end pin: the same stamped set through a
    2-round site-style schedule and an 8-round host-style schedule."""
    messages = [
        ShardMessage("dest", "ch", "first", 1.0, 0.5, "n1", 0),
        ShardMessage("dest", "ch", "second", 1.0, 0.5, "n1", 1),
        ShardMessage("dest", "ch", "cross", 1.25, 0.75, "n2", 0),
        ShardMessage("dest", "ch", "late", 2.5, 2.0, "n3", 0),
    ]
    coarse = _observe_with_horizons(messages, [0.9])
    fine = _observe_with_horizons(messages,
                                  [0.1 + 0.1 * k for k in range(8)])
    assert coarse == fine
    assert [entry[-1] for entry in coarse] == ["first", "second",
                                               "cross", "late"]
