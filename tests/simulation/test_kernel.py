"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation import (
    Event,
    Interrupt,
    Simulation,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_clock_can_start_elsewhere():
    sim = Simulation(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulation()

    def waiter(sim):
        yield sim.timeout(3.5)

    sim.spawn(waiter(sim))
    sim.run()
    assert sim.now == 3.5


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_zero_timeout_allowed():
    sim = Simulation()
    log = []

    def waiter(sim):
        yield sim.timeout(0.0)
        log.append(sim.now)

    sim.spawn(waiter(sim))
    sim.run()
    assert log == [0.0]


def test_process_return_value():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(1.0)
        return 42

    proc = sim.spawn(worker(sim))
    result = sim.run_until_complete(proc)
    assert result == 42
    assert proc.value == 42


def test_processes_interleave_in_time_order():
    sim = Simulation()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.spawn(worker(sim, "b", 2.0))
    sim.spawn(worker(sim, "a", 1.0))
    sim.spawn(worker(sim, "c", 3.0))
    sim.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_fifo_order_for_simultaneous_events():
    sim = Simulation()
    log = []

    def worker(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abc":
        sim.spawn(worker(sim, name))
    sim.run()
    assert log == ["a", "b", "c"]


def test_process_waits_on_another_process():
    sim = Simulation()

    def child(sim):
        yield sim.timeout(2.0)
        return "payload"

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return value

    proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(proc) == "payload"
    assert sim.now == 2.0


def test_waiting_on_already_finished_process():
    sim = Simulation()

    def child(sim):
        yield sim.timeout(1.0)
        return "early"

    child_proc = sim.spawn(child(sim))

    def parent(sim):
        yield sim.timeout(5.0)
        value = yield child_proc
        return value

    parent_proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(parent_proc) == "early"
    assert sim.now == 5.0


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()

    def opener(sim):
        yield sim.timeout(4.0)
        gate.succeed("open")

    def waiter(sim):
        value = yield gate
        return (sim.now, value)

    sim.spawn(opener(sim))
    waiter_proc = sim.spawn(waiter(sim))
    assert sim.run_until_complete(waiter_proc) == (4.0, "open")


def test_event_cannot_fire_twice():
    sim = Simulation()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()
    with pytest.raises(SimulationError):
        gate.fail(RuntimeError("boom"))


def test_event_fail_raises_in_waiter():
    sim = Simulation()
    gate = sim.event()

    def failer(sim):
        yield sim.timeout(1.0)
        gate.fail(ValueError("bad gate"))

    def waiter(sim):
        try:
            yield gate
        except ValueError as exc:
            return str(exc)

    sim.spawn(failer(sim))
    waiter_proc = sim.spawn(waiter(sim))
    assert sim.run_until_complete(waiter_proc) == "bad gate"


def test_uncaught_process_exception_escalates():
    sim = Simulation()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("model bug")

    sim.spawn(crasher(sim))
    with pytest.raises(RuntimeError, match="model bug"):
        sim.run()


def test_exception_in_waited_process_propagates_to_waiter():
    sim = Simulation()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("inner")

    def parent(sim):
        try:
            yield sim.spawn(crasher(sim))
        except RuntimeError as exc:
            return "caught %s" % exc

    proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(proc) == "caught inner"


def test_interrupt_delivers_cause():
    sim = Simulation()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", sim.now, interrupt.cause)

    sleeper_proc = sim.spawn(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(3.0)
        sleeper_proc.interrupt(cause="preempt")

    sim.spawn(interrupter(sim))
    assert sim.run_until_complete(sleeper_proc) == ("interrupted", 3.0,
                                                    "preempt")


def test_interrupt_dead_process_is_error():
    sim = Simulation()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_rewait():
    sim = Simulation()

    def sleeper(sim):
        deadline = sim.now + 10.0
        while True:
            try:
                yield sim.timeout(deadline - sim.now)
                return sim.now
            except Interrupt:
                continue

    sleeper_proc = sim.spawn(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(2.0)
        sleeper_proc.interrupt()
        yield sim.timeout(2.0)
        sleeper_proc.interrupt()

    sim.spawn(interrupter(sim))
    assert sim.run_until_complete(sleeper_proc) == 10.0


def test_run_until_bounds_clock():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(10.0)

    sim.spawn(worker(sim))
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_time_rejected():
    sim = Simulation()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_all_of_waits_for_every_event():
    sim = Simulation()

    def parent(sim):
        results = yield sim.all_of([sim.timeout(1.0, "a"),
                                    sim.timeout(3.0, "b"),
                                    sim.timeout(2.0, "c")])
        return (sim.now, results)

    proc = sim.spawn(parent(sim))
    now, results = sim.run_until_complete(proc)
    assert now == 3.0
    assert sorted(results) == ["a", "b", "c"]


def test_any_of_fires_on_first_event():
    sim = Simulation()

    def parent(sim):
        results = yield sim.any_of([sim.timeout(5.0, "slow"),
                                    sim.timeout(1.0, "fast")])
        return (sim.now, results)

    proc = sim.spawn(parent(sim))
    now, results = sim.run_until_complete(proc)
    assert now == 1.0
    assert "fast" in results


def test_all_of_empty_fires_immediately():
    sim = Simulation()

    def parent(sim):
        results = yield sim.all_of([])
        return results

    proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(proc) == []


def test_yielding_non_event_is_error():
    sim = Simulation()

    def bad(sim):
        yield "not an event"

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_spawning_non_generator_is_error():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_peek_reports_next_event_time():
    sim = Simulation()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_deadlock_detected_by_run_until_complete():
    sim = Simulation()

    def stuck(sim):
        yield sim.event()  # never fires

    proc = sim.spawn(stuck(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(proc)


def test_active_process_visible_during_execution():
    sim = Simulation()
    seen = []

    def worker(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    proc = sim.spawn(worker(sim))
    sim.run()
    assert seen == [proc]
    assert sim.active_process is None


def test_timeout_carries_value():
    sim = Simulation()

    def worker(sim):
        value = yield sim.timeout(1.0, value="tick")
        return value

    proc = sim.spawn(worker(sim))
    assert sim.run_until_complete(proc) == "tick"


def test_large_chain_of_processes():
    sim = Simulation()

    def link(sim, depth):
        if depth == 0:
            yield sim.timeout(1.0)
            return 0
        value = yield sim.spawn(link(sim, depth - 1))
        return value + 1

    proc = sim.spawn(link(sim, 50))
    assert sim.run_until_complete(proc) == 50
    assert sim.now == 1.0


def test_event_value_before_fire_is_error():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
