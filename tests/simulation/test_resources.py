"""Unit tests for Resource, Store and Container primitives."""

import pytest

from repro.simulation import Resource, Simulation, SimulationError, Store, Container


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity_immediately():
    sim = Simulation()
    res = Resource(sim, capacity=2)
    first = res.request()
    second = res.request()
    third = res.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo_waiter():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    log = []

    def user(sim, name, hold):
        req = res.request()
        yield req
        log.append(("start", name, sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append(("end", name, sim.now))

    sim.spawn(user(sim, "a", 2.0))
    sim.spawn(user(sim, "b", 1.0))
    sim.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_resource_cancel_waiting_request():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    held = res.request()
    waiting = res.request()
    assert res.queue_length == 1
    res.release(waiting)  # cancel before grant
    assert res.queue_length == 0
    res.release(held)
    assert res.in_use == 0


def test_resource_release_unknown_request_is_error():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_capacity_validation():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_serializes_many_users():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    finish_times = []

    def user(sim):
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)
        finish_times.append(sim.now)

    for _ in range(5):
        sim.spawn(user(sim))
    sim.run()
    assert finish_times == [1.0, 2.0, 3.0, 4.0, 5.0]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulation()
    store = Store(sim)

    def producer(sim):
        yield store.put("x")

    def consumer(sim):
        item = yield store.get()
        return item

    sim.spawn(producer(sim))
    consumer_proc = sim.spawn(consumer(sim))
    assert sim.run_until_complete(consumer_proc) == "x"


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)

    def consumer(sim):
        item = yield store.get()
        return (sim.now, item)

    def producer(sim):
        yield sim.timeout(5.0)
        yield store.put("late")

    consumer_proc = sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    assert sim.run_until_complete(consumer_proc) == (5.0, "late")


def test_store_fifo_delivery():
    sim = Simulation()
    store = Store(sim)
    received = []

    def producer(sim):
        for i in range(3):
            yield store.put(i)

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert received == [0, 1, 2]


def test_store_capacity_blocks_put():
    sim = Simulation()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put("first")
        log.append(("put-first", sim.now))
        yield store.put("second")
        log.append(("put-second", sim.now))

    def consumer(sim):
        yield sim.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert ("put-first", 0.0) in log
    assert ("got", "first", 3.0) in log
    assert ("put-second", 3.0) in log


def test_store_len_tracks_items():
    sim = Simulation()
    store = Store(sim)
    store.put("a")
    store.put("b")
    sim.run()
    assert len(store) == 2


def test_store_capacity_validation():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_initial_level():
    sim = Simulation()
    box = Container(sim, capacity=10.0, initial=4.0)
    assert box.level == 4.0


def test_container_get_blocks_until_enough():
    sim = Simulation()
    box = Container(sim, capacity=10.0)

    def consumer(sim):
        yield box.get(5.0)
        return sim.now

    def producer(sim):
        yield sim.timeout(1.0)
        yield box.put(3.0)
        yield sim.timeout(1.0)
        yield box.put(3.0)

    consumer_proc = sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    assert sim.run_until_complete(consumer_proc) == 2.0
    assert box.level == pytest.approx(1.0)


def test_container_put_blocks_at_capacity():
    sim = Simulation()
    box = Container(sim, capacity=5.0, initial=5.0)

    def producer(sim):
        yield box.put(2.0)
        return sim.now

    def consumer(sim):
        yield sim.timeout(4.0)
        yield box.get(3.0)

    producer_proc = sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    assert sim.run_until_complete(producer_proc) == 4.0


def test_container_rejects_negative_amounts():
    sim = Simulation()
    box = Container(sim, capacity=5.0)
    with pytest.raises(SimulationError):
        box.put(-1.0)
    with pytest.raises(SimulationError):
        box.get(-1.0)


def test_container_initial_validation():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Container(sim, capacity=1.0, initial=2.0)
