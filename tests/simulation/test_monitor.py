"""Unit tests for statistics collectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.simulation import StatAccumulator, TimeSeriesMonitor


# ---------------------------------------------------------------------------
# StatAccumulator
# ---------------------------------------------------------------------------

def test_empty_accumulator():
    acc = StatAccumulator("x")
    assert acc.count == 0
    assert acc.mean == 0.0
    assert acc.stdev == 0.0
    assert acc.minimum is None and acc.maximum is None


def test_single_sample():
    acc = StatAccumulator()
    acc.add(5.0)
    assert acc.mean == 5.0
    assert acc.variance == 0.0
    assert acc.minimum == acc.maximum == 5.0


def test_known_statistics():
    acc = StatAccumulator()
    acc.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert acc.mean == pytest.approx(5.0)
    # Unbiased variance of this classic data set is 32/7.
    assert acc.variance == pytest.approx(32.0 / 7.0)
    assert acc.minimum == 2.0 and acc.maximum == 9.0


def test_summary_dict():
    acc = StatAccumulator("lat")
    acc.extend([1.0, 3.0])
    summary = acc.summary()
    assert summary["name"] == "lat"
    assert summary["count"] == 2
    assert summary["mean"] == pytest.approx(2.0)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=200))
def test_accumulator_matches_direct_computation(values):
    acc = StatAccumulator()
    acc.extend(values)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert acc.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert acc.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
    assert acc.minimum == min(values)
    assert acc.maximum == max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                min_size=1, max_size=100))
def test_accumulator_min_le_mean_le_max(values):
    acc = StatAccumulator()
    acc.extend(values)
    assert acc.minimum - 1e-9 <= acc.mean <= acc.maximum + 1e-9


# ---------------------------------------------------------------------------
# TimeSeriesMonitor
# ---------------------------------------------------------------------------

def test_monitor_records_and_reads_back():
    mon = TimeSeriesMonitor("util")
    mon.record(0.0, 0.5)
    mon.record(10.0, 1.0)
    assert len(mon) == 2
    assert mon.last_value == 1.0


def test_monitor_rejects_out_of_order():
    mon = TimeSeriesMonitor()
    mon.record(5.0, 1.0)
    with pytest.raises(ValueError):
        mon.record(4.0, 2.0)


def test_value_at_step_semantics():
    mon = TimeSeriesMonitor()
    mon.record(0.0, 1.0)
    mon.record(10.0, 2.0)
    assert mon.value_at(-1.0) is None
    assert mon.value_at(0.0) == 1.0
    assert mon.value_at(9.999) == 1.0
    assert mon.value_at(10.0) == 2.0
    assert mon.value_at(100.0) == 2.0


def test_time_average_of_step_function():
    mon = TimeSeriesMonitor()
    mon.record(0.0, 0.0)
    mon.record(5.0, 1.0)  # value 1.0 on [5, 10]
    assert mon.time_average(0.0, 10.0) == pytest.approx(0.5)


def test_time_average_partial_window():
    mon = TimeSeriesMonitor()
    mon.record(0.0, 2.0)
    mon.record(4.0, 6.0)
    # Over [2, 6]: value 2 on [2,4], value 6 on [4,6] -> (4+12)/4 = 4.
    assert mon.time_average(2.0, 6.0) == pytest.approx(4.0)


def test_time_average_empty_is_zero():
    mon = TimeSeriesMonitor()
    assert mon.time_average(0.0, 1.0) == 0.0


def test_window_filters_samples():
    mon = TimeSeriesMonitor()
    for t in range(10):
        mon.record(float(t), float(t) * 2)
    window = mon.samples_between(2.0, 4.0)
    assert window == [(2.0, 4.0), (3.0, 6.0), (4.0, 8.0)]


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.floats(min_value=0, max_value=10,
                                    allow_nan=False)),
                min_size=1, max_size=50))
def test_time_average_bounded_by_extremes(samples):
    samples = sorted(samples, key=lambda s: s[0])
    mon = TimeSeriesMonitor()
    for t, v in samples:
        mon.record(t, v)
    lo = min(v for _, v in samples)
    hi = max(v for _, v in samples)
    avg = mon.time_average(samples[0][0], samples[-1][0] + 1.0)
    assert lo - 1e-9 <= avg <= hi + 1e-9


# -- monitor edge cases ------------------------------------------------------

def test_value_at_before_first_sample_is_none():
    mon = TimeSeriesMonitor()
    mon.record(5.0, 1.0)
    assert mon.value_at(4.999) is None
    assert mon.value_at(5.0) == 1.0


def test_empty_monitor_observations():
    mon = TimeSeriesMonitor()
    assert len(mon) == 0
    assert mon.last_value is None
    assert mon.value_at(0.0) is None
    assert mon.time_average() == 0.0
    assert mon.samples_between(0.0, 100.0) == []


def test_time_average_start_before_first_sample():
    # Before the first sample the step function is undefined; the
    # window prefix contributes zero weight.
    mon = TimeSeriesMonitor()
    mon.record(4.0, 2.0)
    mon.record(8.0, 2.0)
    # Value 2 on [4, 8] out of a [0, 8] window: 8/8 = 1.
    assert mon.time_average(0.0, 8.0) == pytest.approx(1.0)


def test_time_average_end_after_last_sample():
    # The last sample's value persists to the end of the window.
    mon = TimeSeriesMonitor()
    mon.record(0.0, 1.0)
    mon.record(2.0, 3.0)
    # 1 on [0,2], 3 on [2,6]: (2 + 12)/6.
    assert mon.time_average(0.0, 6.0) == pytest.approx(14.0 / 6.0)


def test_time_average_window_entirely_before_samples():
    mon = TimeSeriesMonitor()
    mon.record(10.0, 5.0)
    assert mon.time_average(0.0, 4.0) == 0.0


def test_time_average_degenerate_window():
    mon = TimeSeriesMonitor()
    mon.record(0.0, 7.0)
    mon.record(3.0, 9.0)
    # start == end collapses to the step value at that instant.
    assert mon.time_average(3.0, 3.0) == 9.0
    # ... and to 0 before the first sample, where the value is None.
    assert mon.time_average(-1.0, -1.0) == 0.0


# -- StatAccumulator.merge ---------------------------------------------------

def test_merge_matches_extend():
    left = StatAccumulator("a")
    right = StatAccumulator("b")
    both = StatAccumulator("ab")
    xs = [1.0, 2.5, -4.0, 8.25]
    ys = [0.5, 100.0, -3.75]
    left.extend(xs)
    right.extend(ys)
    both.extend(xs + ys)
    result = left.merge(right)
    assert result is left
    assert left.count == both.count
    assert left.mean == pytest.approx(both.mean)
    assert left.variance == pytest.approx(both.variance)
    assert left.minimum == both.minimum
    assert left.maximum == both.maximum


def test_merge_empty_other_is_noop():
    acc = StatAccumulator()
    acc.extend([1.0, 2.0, 3.0])
    before = acc.summary()
    acc.merge(StatAccumulator())
    assert acc.summary() == before


def test_merge_into_empty_copies_other():
    acc = StatAccumulator()
    other = StatAccumulator()
    other.extend([4.0, 6.0])
    acc.merge(other)
    assert acc.count == 2
    assert acc.mean == pytest.approx(5.0)
    assert acc.minimum == 4.0
    assert acc.maximum == 6.0
    # The source accumulator is untouched.
    assert other.count == 2


def test_merge_two_empties():
    acc = StatAccumulator()
    acc.merge(StatAccumulator())
    assert acc.count == 0
    assert acc.mean == 0.0
    assert acc.minimum is None and acc.maximum is None


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False),
                min_size=0, max_size=30),
       st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False),
                min_size=0, max_size=30))
def test_merge_matches_direct_computation(xs, ys):
    left = StatAccumulator()
    left.extend(xs)
    right = StatAccumulator()
    right.extend(ys)
    left.merge(right)
    combined = xs + ys
    assert left.count == len(combined)
    if combined:
        assert left.mean == pytest.approx(
            sum(combined) / len(combined), rel=1e-9, abs=1e-6)
        assert left.minimum == min(combined)
        assert left.maximum == max(combined)
    if len(combined) >= 2:
        mean = sum(combined) / len(combined)
        var = sum((v - mean) ** 2 for v in combined) / (len(combined) - 1)
        assert left.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
