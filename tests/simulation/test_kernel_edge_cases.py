"""Additional kernel edge cases: conditions, interrupts, escalation."""

import pytest

from repro.simulation import (
    Event,
    Interrupt,
    Simulation,
    SimulationError,
)


def test_all_of_propagates_failure():
    sim = Simulation()
    bad = sim.event()

    def failer(sim):
        yield sim.timeout(1.0)
        bad.fail(ValueError("broken dependency"))

    def waiter(sim):
        try:
            yield sim.all_of([sim.timeout(5.0), bad])
        except ValueError as exc:
            return "caught %s" % exc

    sim.spawn(failer(sim))
    proc = sim.spawn(waiter(sim))
    assert sim.run_until_complete(proc) == "caught broken dependency"


def test_any_of_with_already_fired_event():
    sim = Simulation()
    done = sim.event()
    done.succeed("early")
    sim.run()  # process the event

    def waiter(sim):
        values = yield sim.any_of([done, sim.timeout(100.0)])
        return (sim.now, values)

    proc = sim.spawn(waiter(sim))
    now, values = sim.run_until_complete(proc)
    assert now == 0.0
    assert "early" in values


def test_interrupt_before_first_resume():
    """Interrupting a process that never started raises at its head."""
    sim = Simulation()

    def never_started(sim):
        yield sim.timeout(1.0)  # pragma: no cover - interrupted first

    proc = sim.spawn(never_started(sim))
    proc.interrupt(cause="early")
    with pytest.raises(Interrupt):
        sim.run_until_complete(proc)


def test_failed_process_consumed_by_waiter_does_not_escalate():
    sim = Simulation()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    def guardian(sim):
        try:
            yield sim.spawn(crasher(sim))
        except RuntimeError:
            return "contained"

    proc = sim.spawn(guardian(sim))
    assert sim.run_until_complete(proc) == "contained"
    sim.run()  # nothing left to escalate


def test_run_until_complete_consumes_failure_event():
    """Regression: the failure must not escalate on a later run()."""
    sim = Simulation()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    proc = sim.spawn(crasher(sim))
    with pytest.raises(RuntimeError):
        sim.run_until_complete(proc)
    sim.timeout(1.0)
    sim.run()  # must not re-raise the consumed failure


def test_condition_with_mixed_simulations_rejected():
    sim_a = Simulation()
    sim_b = Simulation()
    with pytest.raises(SimulationError):
        sim_a.all_of([sim_a.timeout(1.0), sim_b.timeout(1.0)])


def test_event_from_other_simulation_rejected_on_yield():
    sim_a = Simulation()
    sim_b = Simulation()
    foreign = Event(sim_b)

    def confused(sim):
        yield foreign

    sim_a.spawn(confused(sim_a))
    with pytest.raises(SimulationError):
        sim_a.run()


def test_step_with_empty_queue_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_any_of_all_of():
    sim = Simulation()

    def waiter(sim):
        inner = sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        values = yield sim.any_of([inner, sim.timeout(10.0, "slow")])
        return (sim.now, values)

    proc = sim.spawn(waiter(sim))
    now, values = sim.run_until_complete(proc)
    assert now == 2.0
    assert values[0] == ["a", "b"]
