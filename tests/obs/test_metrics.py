"""The metrics registry: counters, gauges, histograms, exports."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.simulation import Simulation


def test_counter_accumulates():
    reg = MetricsRegistry()
    c = reg.counter("storage.pvfs.cache_hits")
    c.inc()
    c.inc(4)
    assert c.value == 5.0


def test_counter_rejects_decrease():
    c = MetricsRegistry().counter("x")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_value_wins():
    g = MetricsRegistry().gauge("net.flows.active")
    assert g.value is None
    g.set(3)
    g.set(1)
    assert g.value == 1.0


def test_histogram_summarizes():
    h = MetricsRegistry().histogram("vmm.boot.duration")
    for v in (10.0, 20.0, 30.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["mean"] == pytest.approx(20.0)
    assert snap["min"] == 10.0
    assert snap["max"] == 30.0


def test_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("a.b") is reg.counter("a.b")
    assert len(reg) == 1
    assert "a.b" in reg
    assert "a.c" not in reg


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a.b")
    with pytest.raises(TypeError):
        reg.gauge("a.b")
    with pytest.raises(TypeError):
        reg.histogram("a.b")


def test_names_filter_by_prefix():
    reg = MetricsRegistry()
    reg.counter("storage.pvfs.cache_hits")
    reg.counter("storage.nfs.rpc_calls")
    reg.gauge("net.flows.active")
    assert reg.names("storage.") == ["storage.nfs.rpc_calls",
                                     "storage.pvfs.cache_hits"]
    assert reg.names() == ["net.flows.active", "storage.nfs.rpc_calls",
                           "storage.pvfs.cache_hits"]


def test_snapshot_and_json_are_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1)
        reg.histogram("c").observe(4.0)
        return reg

    assert build().to_json() == build().to_json()
    payload = json.loads(build().to_json())
    assert list(payload) == ["a", "b", "c"]
    assert payload["b"] == {"type": "counter", "value": 2.0}


def test_to_table_renders_every_metric():
    reg = MetricsRegistry()
    reg.counter("storage.gridftp.bytes").inc(1024)
    reg.histogram("sched.queue_wait").observe(2.5)
    reg.gauge("net.flows.active")
    table = reg.to_table(title="T")
    assert "storage.gridftp.bytes" in table
    assert "sched.queue_wait" in table
    assert "n=1" in table
    # A never-set gauge renders as a dash, not a crash.
    assert "-" in table


def test_simulation_owns_a_lazy_registry():
    sim = Simulation()
    assert sim._metrics is None     # not built until first use
    reg = sim.metrics
    assert isinstance(reg, MetricsRegistry)
    assert sim.metrics is reg       # cached thereafter


def test_component_pattern_resolve_once_update_often():
    sim = Simulation()
    hits = sim.metrics.counter("storage.pvfs.cache_hits")
    for _ in range(10):
        hits.inc()
    assert sim.metrics.counter("storage.pvfs.cache_hits").value == 10.0
