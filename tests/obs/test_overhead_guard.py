"""Guard: the null tracer must not slow the kernel's hot path.

This is the lenient `make check` variant — it fails only on a gross
regression (e.g. someone replacing the ``if self._tracing:`` guard
with an unconditional virtual call or allocating per event).  The
strict ≤5% bound lives in ``benchmarks/test_null_tracer_overhead.py``,
outside the tier-1 suite, where timing noise can be managed with
longer runs.
"""

import heapq
import timeit

from repro.simulation import Simulation
from repro.simulation.kernel import SimulationError


class BaselineSimulation(Simulation):
    """The kernel hot path with the tracer guards stripped back out."""

    def _enqueue_event(self, event, delay=0.0,
                       priority=Simulation._PRIORITY_NORMAL):
        heapq.heappush(self._queue,
                       (self.now + delay, priority, self._next_id, event))
        self._next_id += 1

    def step(self):
        if not self._queue:
            raise SimulationError("no events to step")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self.now = when
        event._process()
        if event._ok is False and not getattr(event, "_defused", False):
            raise event._value


def churn(sim_class, processes=20, hops=150):
    """A pure event-churn workload: many processes trading timeouts."""
    sim = sim_class()

    def worker(sim, i):
        for _hop in range(hops):
            yield sim.timeout(1e-3 * (i + 1))

    for i in range(processes):
        sim.spawn(worker(sim, i), name="churn-%d" % i)
    sim.run()
    return sim


def test_workloads_are_equivalent():
    # The baseline subclass must model the same simulation exactly.
    assert churn(Simulation).now == churn(BaselineSimulation).now


def test_null_tracer_overhead_is_bounded():
    # Interleaved min-of-N: the minimum is robust against one-off
    # scheduler hiccups, interleaving against clock drift.
    instrumented = []
    baseline = []
    for _round in range(5):
        baseline.append(timeit.timeit(
            lambda: churn(BaselineSimulation), number=1))
        instrumented.append(timeit.timeit(
            lambda: churn(Simulation), number=1))
    ratio = min(instrumented) / min(baseline)
    # Lenient 1.5x ceiling: a plain boolean test can't cost 50%.
    assert ratio < 1.5, "null-tracer hot path ratio %.3f" % ratio


def test_null_tracer_allocates_no_records():
    sim = churn(Simulation, processes=5, hops=20)
    # The default tracer records nothing and builds no registry.
    assert not hasattr(sim.trace, "spans")
    assert sim._metrics is None
