"""The `repro trace` / `repro metrics` CLI commands."""

import json

import pytest

from repro.cli import main


def test_trace_command_writes_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "table2", "--seed", "42",
                 "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    printed = capsys.readouterr().out
    assert str(out) in printed


def test_trace_command_is_deterministic(tmp_path):
    one = tmp_path / "one.json"
    two = tmp_path / "two.json"
    main(["trace", "table2", "--seed", "42", "--out", str(one)])
    main(["trace", "table2", "--seed", "42", "--out", str(two)])
    assert one.read_bytes() == two.read_bytes()


def test_metrics_command_prints_table(capsys):
    assert main(["metrics", "figure1"]) == 0
    out = capsys.readouterr().out
    assert "session.step1.duration" in out
    assert "vmm.boot.duration" in out


def test_metrics_command_json(capsys):
    assert main(["metrics", "figure1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # Session metrics are keyed by the compute host's partition.
    assert payload["session.step6.duration[uf]"]["count"] == 1
    assert "p95" in payload["session.step6.duration[uf]"]


def test_trace_requires_target(capsys):
    with pytest.raises(SystemExit):
        main(["trace"])


def test_trace_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "table9"])


def test_profile_command_prints_hot_functions(capsys):
    assert main(["profile", "table2", "--seed", "42", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile: table2, seed 42" in out
    assert "cumulative" in out
    assert "run_scenario" in out


def test_profile_requires_target():
    with pytest.raises(SystemExit):
        main(["profile"])
