"""End-to-end traced scenarios: coverage and byte-level determinism.

This is the `make check` smoke test the observability issue asks for:
the table2 scenario, traced twice at the same seed, must export
byte-identical Chrome trace JSON containing spans for all six session
life-cycle steps.
"""

import json

import pytest

from repro.obs import TraceRecorder, chrome_trace_json
from repro.obs.runner import SCENARIOS, run_scenario, trace_experiment
from repro.simulation import SimulationError


def traced_json(name, seed):
    recorder = TraceRecorder()
    run_scenario(name, seed=seed, tracer=recorder)
    return chrome_trace_json(recorder), recorder


def test_table2_trace_is_byte_identical_across_runs():
    text1, _rec1 = traced_json("table2", seed=42)
    text2, _rec2 = traced_json("table2", seed=42)
    assert text1 == text2


def test_table2_trace_contains_all_six_lifecycle_steps():
    text, recorder = traced_json("table2", seed=42)
    doc = json.loads(text)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    step_names = sorted({e["name"] for e in spans
                         if e["name"].startswith("step ")})
    assert [n.split(":")[0] for n in step_names] == [
        "step 1", "step 2", "step 3", "step 4", "step 5", "step 6"]
    # Every span was closed: an open span is an instrumentation bug.
    assert recorder.open_spans() == []


def test_trace_covers_every_instrumented_layer():
    text, _recorder = traced_json("table2", seed=42)
    doc = json.loads(text)
    categories = {e.get("cat") for e in doc["traceEvents"]
                  if e["ph"] == "X"}
    assert {"session", "vmm", "storage", "net", "sched"} <= categories


def test_different_seeds_may_differ_but_both_complete():
    text_a, rec_a = traced_json("table2", seed=1)
    text_b, rec_b = traced_json("table2", seed=2)
    # GRAM jitter depends on the seed, so the timelines differ...
    assert text_a != text_b
    # ... but both runs drive the full life cycle.
    assert rec_a.open_spans() == [] and rec_b.open_spans() == []


@pytest.mark.parametrize("name", SCENARIOS)
def test_every_scenario_runs_and_records_metrics(name):
    sim = run_scenario(name, seed=0)
    assert sim.metrics.names("session.") != []
    assert sim.metrics.names("storage.") != []
    # The untraced run used the null tracer throughout.
    assert sim._tracing is False


def test_trace_experiment_writes_loadable_file(tmp_path):
    out = tmp_path / "trace.json"
    sim, count = trace_experiment("table2", str(out), seed=42)
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) == count > 0
    assert sim.now > 0


def test_unknown_scenario_rejected():
    with pytest.raises(SimulationError):
        run_scenario("table9")
