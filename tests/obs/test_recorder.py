"""Flight recorder: heartbeats, byte-identical export, shard merging."""

import json

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.runner import record_experiment, run_scenario
from repro.simulation.kernel import Simulation, SimulationError


# -- heartbeat behaviour on a live simulation --------------------------------

def burst(sim, counter, period, count):
    for _ in range(count):
        yield sim.timeout(period)
        counter.inc()


def test_heartbeat_samples_at_interval():
    sim = Simulation()
    jobs = sim.metrics.counter("jobs")
    driver = sim.spawn(burst(sim, jobs, 0.7, 10))
    recorder = FlightRecorder(sim, interval=1.0)
    recorder.start()
    sim.run_until_complete(driver)
    recorder.stop()
    # ~7 seconds of workload -> beats at t=1..7 plus the final sample
    # (10 * 0.7 accumulates to just past 7.0, so the t=7 beat fires).
    assert [entry.time for entry in recorder.entries] \
        == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, pytest.approx(7.0)]
    assert [entry.seq for entry in recorder.entries] == list(range(8))
    final = recorder.entries[-1]
    assert final.counters["jobs"][0] == 10.0
    # Per-beat deltas telescope back to the total.
    assert sum(e.counters["jobs"][1] for e in recorder.entries) == 10.0


def test_ring_is_bounded():
    sim = Simulation()
    jobs = sim.metrics.counter("jobs")
    driver = sim.spawn(burst(sim, jobs, 1.0, 50))
    recorder = FlightRecorder(sim, interval=1.0, capacity=8)
    recorder.start()
    sim.run_until_complete(driver)
    recorder.stop()
    assert len(recorder.entries) == 8
    assert recorder.samples_taken > 8
    # The ring keeps the *last* beats; cumulative totals survive drops.
    assert recorder.entries[-1].counters["jobs"][0] == 50.0


def test_recorder_is_a_pure_observer():
    for scenario in ("figure1", "table1", "table2"):
        plain = run_scenario(scenario, seed=42)
        recorded, _, recorder = record_experiment(scenario, seed=42)
        assert recorder.entries
        assert recorded.now == plain.now
        assert recorded.metrics.to_json() == plain.metrics.to_json()


def test_flight_record_byte_identical_per_seed(tmp_path):
    paths = []
    for name in ("one.jsonl", "two.jsonl"):
        _, _, recorder = record_experiment("table2", seed=42)
        path = tmp_path / name
        recorder.write(str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    for line in paths[0].read_text().splitlines():
        entry = json.loads(line)
        assert set(entry) == {"seq", "t", "events", "events_delta",
                              "queue_depth", "counters", "gauges",
                              "histograms", "rates"}


def test_start_twice_rejected():
    sim = Simulation()
    recorder = FlightRecorder(sim)
    recorder.start()
    with pytest.raises(SimulationError):
        recorder.start()


def test_parameter_validation():
    sim = Simulation()
    with pytest.raises(SimulationError):
        FlightRecorder(sim, interval=0.0)
    with pytest.raises(SimulationError):
        FlightRecorder(sim, capacity=0)


# -- shard merging -----------------------------------------------------------

class _Clock:
    """Stand-in sim for detached (include_kernel=False) recorders."""

    def __init__(self):
        self.now = 0.0


PARTITIONS = ("p0", "p1", "p2", "p3")


def observe(scope, beat, shard):
    """One beat of deterministic per-partition workload."""
    scope.counter("jobs.completed").inc(shard + 1)
    latency = scope.histogram("job.latency")
    for k in range(3):
        latency.observe(0.5 + beat + shard * 0.1 + k * 0.01)
    scope.gauge("load").set(beat * 10.0 + shard)
    scope.rate("arrivals", window=60.0).mark(float(beat))


def record_sharded(num_shards, beats=5):
    """Per-shard registries+recorders and the single-process reference."""
    shards = PARTITIONS[:num_shards]
    combined = MetricsRegistry()
    part_registries = [MetricsRegistry(partition=p) for p in shards]
    clock = _Clock()
    reference = FlightRecorder(clock, interval=1.0, registry=combined,
                               include_kernel=False)
    recorders = [FlightRecorder(clock, interval=1.0, registry=registry,
                                include_kernel=False)
                 for registry in part_registries]
    for beat in range(1, beats + 1):
        for shard, (partition, registry) in enumerate(
                zip(shards, part_registries)):
            observe(registry, beat, shard)
            observe(combined.scoped(partition), beat, shard)
        clock.now = float(beat)
        reference.sample()
        for recorder in recorders:
            recorder.sample()
    return recorders, reference


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_merged_flight_record_equals_single_process(num_shards):
    recorders, reference = record_sharded(num_shards)
    merged = FlightRecorder.merge(recorders)
    assert merged.to_jsonl() == reference.to_jsonl()


@pytest.mark.parametrize("num_shards", [2, 4])
def test_merge_is_fold_order_invariant(num_shards):
    recorders, reference = record_sharded(num_shards)
    forward = FlightRecorder.merge(recorders)
    backward = FlightRecorder.merge(list(reversed(recorders)))
    assert forward.to_jsonl() == backward.to_jsonl() == reference.to_jsonl()


def test_merge_with_idle_shard():
    # A shard that observed nothing still heartbeats; merging it in is
    # a no-op on every metric.
    recorders, reference = record_sharded(2)
    clock = _Clock()
    idle = FlightRecorder(clock, interval=1.0,
                          registry=MetricsRegistry(partition="idle"),
                          include_kernel=False)
    for beat in range(1, 6):
        clock.now = float(beat)
        idle.sample()
    merged = FlightRecorder.merge(recorders + [idle])
    assert merged.to_jsonl() == reference.to_jsonl()


def test_merge_rejects_misaligned_records():
    recorders, _ = record_sharded(2)
    short = record_sharded(1, beats=3)[0]
    with pytest.raises(SimulationError):
        FlightRecorder.merge([recorders[0], short[0]])
    with pytest.raises(SimulationError):
        FlightRecorder.merge([])


def test_merge_rejects_shifted_beats():
    recorders, _ = record_sharded(2)
    recorders[1].entries[2].time += 0.5
    with pytest.raises(SimulationError):
        FlightRecorder.merge(recorders)


def test_merged_histogram_quantiles_match_reference():
    recorders, reference = record_sharded(4)
    merged = FlightRecorder.merge(recorders)
    for partition in PARTITIONS:
        key = "job.latency[%s]" % partition
        ours = merged.last_histogram(key)
        theirs = reference.last_histogram(key)
        assert ours.state() == theirs.state()
        for q in (0.5, 0.95, 0.99):
            assert ours.quantile(q) == theirs.quantile(q)


# -- CLI ---------------------------------------------------------------------

def test_record_command_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "flight.jsonl"
    assert main(["record", "table2", "--seed", "42", "--interval", "2.0",
                 "--out", str(out)]) == 0
    lines = out.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert first["seq"] == 0
    printed = capsys.readouterr().out
    assert str(out) in printed


def test_record_command_is_deterministic(tmp_path):
    one = tmp_path / "one.jsonl"
    two = tmp_path / "two.jsonl"
    main(["record", "table2", "--seed", "42", "--out", str(one)])
    main(["record", "table2", "--seed", "42", "--out", str(two)])
    assert one.read_bytes() == two.read_bytes()


def test_report_command_text(capsys):
    assert main(["report", "table2", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "Throughput" in out
    assert "Latency percentiles" in out
    assert "Utilization" in out
    assert "Per-partition" in out


def test_report_command_markdown(capsys):
    assert main(["report", "table2", "--seed", "42",
                 "--format", "markdown"]) == 0
    out = capsys.readouterr().out
    assert "| Metric |" in out
    assert "---" in out


def test_record_requires_target():
    with pytest.raises(SystemExit):
        main(["record"])
