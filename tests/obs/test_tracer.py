"""Tracer protocol: null behaviour, recording, kernel hooks."""

import pytest

from repro.obs import NULL_TRACER, Span, TraceError, Tracer, TraceRecorder
from repro.simulation import Interrupt, Simulation


def test_null_tracer_is_the_default():
    sim = Simulation()
    assert sim.trace is NULL_TRACER
    assert sim.trace.enabled is False
    assert sim._tracing is False


def test_null_tracer_span_api_is_inert():
    sim = Simulation()
    span = sim.trace.begin("cat", "thing", foo=1)
    assert isinstance(span, Span)
    sim.trace.end(span)          # no-op, never raises
    sim.trace.instant("mark")
    sim.trace.counter("level", 3.0)
    # All null spans are the same shared object: zero allocation.
    assert sim.trace.begin("a", "b") is span


def test_recorder_spans_use_sim_time():
    recorder = TraceRecorder()
    sim = Simulation(tracer=recorder)

    def worker(sim):
        span = sim.trace.begin("test", "work", track=("host", "p1"), n=7)
        yield sim.timeout(2.5)
        sim.trace.end(span)
        return span

    span = sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.track == ("host", "p1")
    assert span.args == {"n": 7}
    assert span in recorder.spans
    assert recorder.open_spans() == []


def test_recorder_instants_and_counters():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        sim.trace.instant("begin", track=("a", "b"), detail="x")
        yield sim.timeout(1.0)
        sim.trace.counter("queue", 4, track=("a", "b"))

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    assert recorder.instants == [(0.0, "begin", ("a", "b"),
                                  {"detail": "x"})]
    assert recorder.counters == [(1.0, "queue", ("a", "b"), 4.0)]


def test_unbound_recorder_raises():
    recorder = TraceRecorder()
    with pytest.raises(TraceError):
        recorder.begin("cat", "thing")


def test_recorder_refuses_second_simulation():
    recorder = TraceRecorder()
    Simulation(tracer=recorder)
    with pytest.raises(TraceError):
        Simulation(tracer=recorder)


def test_kernel_stats_cover_the_event_loop():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    stats = recorder.kernel_stats
    assert stats["processes_spawned"] == 1
    assert stats["processes_terminated"] == 1
    assert stats["process_failures"] == 0
    assert stats["events_scheduled"] >= 2
    assert stats["events_fired"] >= 2
    assert stats["clock_advances"] == 2  # t=0 -> 1 -> 2
    assert stats["process_resumes"] >= 2


def test_kernel_stats_count_interrupts_and_failures():
    recorder = TraceRecorder(record_kernel=True)
    sim = Simulation(tracer=recorder)

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            raise ValueError("boom")

    proc = sim.spawn(sleeper(sim), name="sleeper")

    def killer(sim):
        yield sim.timeout(1.0)
        proc.interrupt("stop")

    sim.spawn(killer(sim), name="killer")
    with pytest.raises(ValueError):
        sim.run()
    assert recorder.kernel_stats["process_interrupts"] == 1
    assert recorder.kernel_stats["process_failures"] == 1
    names = [name for _t, name, _track, _args in recorder.instants]
    assert "spawn sleeper" in names
    assert "interrupt sleeper" in names
    assert "exit sleeper" in names


def test_record_kernel_off_keeps_stats_but_not_instants():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    assert recorder.kernel_stats["processes_spawned"] == 1
    assert recorder.instants == []


def test_custom_tracer_subclass_receives_hooks():
    seen = []

    class Probe(Tracer):
        enabled = True

        def on_process_spawned(self, sim, process):
            seen.append(process.name)

    sim = Simulation(tracer=Probe())

    def worker(sim):
        yield sim.timeout(0.5)

    sim.run_until_complete(sim.spawn(worker(sim), name="probed"))
    assert seen == ["probed"]
