"""Chrome-trace-event export: format, ids, determinism."""

import json

from repro.obs import (
    TraceRecorder,
    chrome_trace_events,
    chrome_trace_json,
    export_chrome_trace,
)
from repro.simulation import Simulation


def recorded_run():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        span = sim.trace.begin("vmm", "boot", track=("host1", "vm1"),
                               mode="boot")
        yield sim.timeout(1.5)
        sim.trace.end(span)
        sim.trace.instant("booted", track=("host1", "vm1"))
        sim.trace.counter("mem", 128.0, track=("host1", "vm1"))

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    return recorder


def events_by_phase(events):
    out = {}
    for event in events:
        out.setdefault(event["ph"], []).append(event)
    return out


def test_span_becomes_complete_event_in_microseconds():
    events = events_by_phase(chrome_trace_events(recorded_run()))
    (span,) = events["X"]
    assert span["ts"] == 0
    assert span["dur"] == 1_500_000
    assert span["cat"] == "vmm"
    assert span["name"] == "boot"
    assert span["args"] == {"mode": "boot"}
    assert isinstance(span["ts"], int) and isinstance(span["dur"], int)


def test_instant_and_counter_events():
    events = events_by_phase(chrome_trace_events(recorded_run()))
    (instant,) = events["i"]
    assert instant["name"] == "booted"
    assert instant["ts"] == 1_500_000
    assert instant["s"] == "t"
    (counter,) = events["C"]
    assert counter["name"] == "mem"
    assert counter["args"] == {"value": 128.0}


def test_metadata_names_tracks():
    events = events_by_phase(chrome_trace_events(recorded_run()))
    meta = events["M"]
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "host1") in names
    assert ("thread_name", "vm1") in names


def test_track_ids_are_first_seen_order():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        sim.trace.instant("a", track=("p1", "t1"))
        sim.trace.instant("b", track=("p2", "t1"))
        sim.trace.instant("c", track=("p1", "t2"))
        yield sim.timeout(0.0)

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    events = events_by_phase(chrome_trace_events(recorder))
    a, b, c = events["i"]
    assert (a["pid"], a["tid"]) == (1, 1)
    assert (b["pid"], b["tid"]) == (2, 1)
    assert (c["pid"], c["tid"]) == (1, 2)


def test_unfinished_span_is_flagged():
    recorder = TraceRecorder(record_kernel=False)
    sim = Simulation(tracer=recorder)

    def worker(sim):
        sim.trace.begin("cat", "left-open")
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.spawn(worker(sim), name="worker"))
    events = events_by_phase(chrome_trace_events(recorder))
    (span,) = events["X"]
    assert span["args"]["unfinished"] is True
    assert span["dur"] == 0
    assert recorder.open_spans() != []


def test_events_sorted_by_timestamp():
    events = chrome_trace_events(recorded_run())
    data = [e for e in events if e["ph"] != "M"]
    timestamps = [e["ts"] for e in data]
    assert timestamps == sorted(timestamps)


def test_json_document_shape():
    doc = json.loads(chrome_trace_json(recorded_run()))
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["kernel"]["processes_spawned"] == 1


def test_same_run_exports_identical_bytes(tmp_path):
    one = tmp_path / "one.json"
    two = tmp_path / "two.json"
    count1 = export_chrome_trace(recorded_run(), str(one))
    count2 = export_chrome_trace(recorded_run(), str(two))
    assert count1 == count2
    assert one.read_bytes() == two.read_bytes()
    # And the file is loadable JSON with the advertised event count.
    assert len(json.loads(one.read_text())["traceEvents"]) == count1
