"""Bounded-memory collectors: quantile buckets, rates, windowed monitors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.windows import (QuantileHistogram, RateSeries, SUBBUCKETS,
                               bucket_bounds, bucket_index,
                               bucket_midpoint)
from repro.simulation.monitor import TimeSeriesMonitor


# -- bucket geometry ---------------------------------------------------------

def test_zero_gets_its_own_bucket():
    assert bucket_index(0.0) == 0
    assert bucket_bounds(0) == (0.0, 0.0)
    assert bucket_midpoint(0) == 0.0


def test_sign_symmetry():
    assert bucket_index(-3.7) == -bucket_index(3.7)
    lo, hi = bucket_bounds(bucket_index(3.7))
    nlo, nhi = bucket_bounds(bucket_index(-3.7))
    assert (nlo, nhi) == (-hi, -lo)


@given(st.floats(min_value=1e-300, max_value=1e300))
def test_bucket_contains_its_value(value):
    lo, hi = bucket_bounds(bucket_index(value))
    assert lo <= value <= hi
    # Relative bucket width is at most 1/SUBBUCKETS.
    assert (hi - lo) / lo <= 1.0 / SUBBUCKETS + 1e-12


@given(st.floats(min_value=1e-300, max_value=1e300))
def test_bucket_index_is_monotone(value):
    assert bucket_index(value) <= bucket_index(value * (1 + 1e-6))


def test_subnormals_do_not_collide_with_negatives():
    tiny = 5e-324
    assert bucket_index(tiny) > 0
    assert bucket_index(-tiny) < 0


# -- quantile histogram ------------------------------------------------------

def test_quantiles_exact_to_bucket_resolution():
    hist = QuantileHistogram("lat")
    values = [0.1 * i for i in range(1, 101)]
    hist.extend(values)
    assert hist.count == 100
    for q in (0.5, 0.95, 0.99):
        true = values[max(0, math.ceil(q * 100) - 1)]
        assert hist.quantile(q) == pytest.approx(true, rel=1.0 / SUBBUCKETS)
    assert hist.quantile(0.0) == pytest.approx(0.1, rel=1.0 / SUBBUCKETS)
    assert hist.quantile(1.0) == pytest.approx(10.0, rel=1.0 / SUBBUCKETS)


def test_quantile_clamped_into_min_max():
    hist = QuantileHistogram()
    hist.add(5.0)
    for q in (0.0, 0.5, 1.0):
        assert hist.quantile(q) == 5.0


def test_empty_histogram():
    hist = QuantileHistogram()
    assert hist.quantile(0.5) is None
    assert hist.bucket_mean == 0.0
    assert len(hist) == 0


def test_quantile_fraction_validated():
    with pytest.raises(ValueError):
        QuantileHistogram().quantile(1.5)


def test_memory_bounded_by_distinct_buckets():
    hist = QuantileHistogram()
    for i in range(100000):
        hist.add(1.0 + (i % 100) / 1000.0)  # values within [1.0, 1.1)
    assert hist.count == 100000
    assert len(hist) <= 3  # a whole run of samples in a couple of buckets


def test_merge_equals_single_histogram():
    values_a = [0.01 * i for i in range(1, 200)]
    values_b = [3.0 + 0.05 * i for i in range(1, 100)]
    single = QuantileHistogram()
    single.extend(values_a + values_b)
    part_a = QuantileHistogram()
    part_a.extend(values_a)
    part_b = QuantileHistogram()
    part_b.extend(values_b)
    merged = QuantileHistogram().merge(part_a).merge(part_b)
    assert merged.state() == single.state()


def test_merge_is_fold_order_invariant():
    import itertools

    values = [math.exp((i % 37) / 5.0) for i in range(500)]
    parts = [QuantileHistogram() for _ in range(4)]
    for i, value in enumerate(values):
        parts[i % 4].add(value)
    states = set()
    for perm in itertools.permutations(range(4)):
        merged = QuantileHistogram()
        for i in perm:
            merged.merge(QuantileHistogram.from_state(
                "", parts[i].state()))
        states.add(repr(sorted(merged.state()["buckets"].items())
                        + [merged.quantile(0.5), merged.quantile(0.99),
                           merged.minimum, merged.maximum]))
    assert len(states) == 1


def test_state_round_trip():
    hist = QuantileHistogram("x")
    hist.extend([1.0, 2.0, -3.0, 0.0])
    clone = QuantileHistogram.from_state("x", hist.state())
    assert clone.state() == hist.state()
    assert clone.quantile(0.5) == hist.quantile(0.5)


# -- rate series -------------------------------------------------------------

def test_rate_over_trailing_window():
    rate = RateSeries("ev", window=10.0)
    for i in range(100):
        rate.mark(float(i))  # one event per second
    assert rate.total == 100.0
    assert rate.rate() == pytest.approx(1.0)


def test_rate_empty_is_zero():
    assert RateSeries("ev").rate() == 0.0


def test_rate_memory_is_bounded():
    rate = RateSeries("ev", window=10.0, max_samples=64)
    for i in range(10000):
        rate.mark(i * 0.5)
    assert len(rate.monitor.times) <= 64
    assert rate.total == 10000.0
    assert rate.rate() == pytest.approx(2.0)


def test_rate_window_validated():
    with pytest.raises(ValueError):
        RateSeries("ev", window=0.0)


def test_rate_merge_sequential_spans():
    first = RateSeries("ev", window=10.0)
    for i in range(10):
        first.mark(float(i))
    second = RateSeries("ev", window=10.0)
    for i in range(10, 20):
        second.mark(float(i))
    first.merge(second)
    assert first.total == 20.0
    assert first.rate() == pytest.approx(1.0)


def test_rate_merge_empty_cases():
    empty = RateSeries("ev", window=10.0)
    full = RateSeries("ev", window=10.0)
    full.mark(1.0)
    empty.merge(full)
    assert empty.total == 1.0
    full.merge(RateSeries("ev", window=10.0))
    assert full.total == 1.0


# -- windowed TimeSeriesMonitor ---------------------------------------------

def test_window_evicts_but_keeps_boundary_sample():
    mon = TimeSeriesMonitor("m", window=5.0)
    for t in range(20):
        mon.record(float(t), float(t))
    # Retention horizon is 19 - 5 = 14; the boundary sample governing
    # the window start must survive.
    assert mon.times[0] <= 14.0 <= mon.times[1]
    assert mon.total_count == 20
    assert mon.dropped_count == len(mon.times) * 0 + 20 - len(mon.times)


def test_max_samples_bounds_memory():
    mon = TimeSeriesMonitor("m", max_samples=16)
    for t in range(1000):
        mon.record(float(t), 1.0)
    assert len(mon.times) == 16
    assert mon.total_count == 1000


def test_full_range_time_average_exact_across_evictions():
    bounded = TimeSeriesMonitor("b", window=3.0)
    unbounded = TimeSeriesMonitor("u")
    values = [((i * 37) % 11) / 3.0 for i in range(200)]
    for i, value in enumerate(values):
        bounded.record(i * 0.25, value)
        unbounded.record(i * 0.25, value)
    assert bounded.dropped_count > 0
    # Bit-identical, not approximately equal: the dropped integral is
    # accumulated in the same order a full sweep would add segments.
    assert bounded.time_average() == unbounded.time_average()


def test_window_query_exact_at_retained_boundary():
    mon = TimeSeriesMonitor("m", window=5.0)
    for t in range(20):
        mon.record(float(t), float(t % 4))
    now = mon.times[-1]
    full = TimeSeriesMonitor("f")
    for t in range(20):
        full.record(float(t), float(t % 4))
    assert mon.time_average(now - 5.0, now) \
        == full.time_average(now - 5.0, now)


def test_query_starting_inside_evicted_region_raises():
    mon = TimeSeriesMonitor("m", window=2.0)
    for t in range(10):
        mon.record(float(t), 1.0)
    with pytest.raises(ValueError):
        mon.time_average(1.0, 9.0)  # 1.0 is evicted, not the origin


def test_query_ending_inside_evicted_region_raises():
    mon = TimeSeriesMonitor("m", window=2.0)
    for t in range(10):
        mon.record(float(t), 1.0)
    with pytest.raises(ValueError):
        mon.time_average(0.0, 1.0)


def test_window_validation():
    with pytest.raises(ValueError):
        TimeSeriesMonitor("m", window=0.0)
    with pytest.raises(ValueError):
        TimeSeriesMonitor("m", max_samples=0)


def test_merge_disjoint_spans():
    first = TimeSeriesMonitor("a")
    first.record(0.0, 1.0)
    first.record(1.0, 2.0)
    second = TimeSeriesMonitor("b")
    second.record(2.0, 3.0)
    first.merge(second)
    assert first.times == [0.0, 1.0, 2.0]
    assert first.time_average() == pytest.approx((1.0 + 2.0) / 2.0)


def test_merge_overlap_rejected():
    first = TimeSeriesMonitor("a")
    first.record(0.0, 1.0)
    first.record(5.0, 1.0)
    second = TimeSeriesMonitor("b")
    second.record(3.0, 1.0)
    with pytest.raises(ValueError):
        first.merge(second)


def test_merge_empty_part_is_noop():
    mon = TimeSeriesMonitor("a")
    mon.record(0.0, 1.0)
    mon.merge(TimeSeriesMonitor("b"))
    assert mon.times == [0.0]


def test_merge_evicted_part_into_empty_transfers_state():
    part = TimeSeriesMonitor("p", window=2.0)
    for t in range(10):
        part.record(float(t), float(t))
    target = TimeSeriesMonitor("t")
    target.merge(part)
    assert target.dropped_count == part.dropped_count
    assert target.time_average() == part.time_average()


def test_merge_evicted_part_into_nonempty_rejected():
    part = TimeSeriesMonitor("p", window=2.0)
    for t in range(10):
        part.record(float(t), float(t))
    target = TimeSeriesMonitor("t")
    target.record(0.0, 1.0)
    with pytest.raises(ValueError):
        target.merge(part)


def test_merge_reapplies_retention_policy():
    target = TimeSeriesMonitor("t", window=3.0)
    target.record(0.0, 1.0)
    part = TimeSeriesMonitor("p")
    for t in range(1, 10):
        part.record(float(t), 1.0)
    target.merge(part)
    assert target.times[-1] == 9.0
    assert target.dropped_count > 0
    assert target.time_average() == pytest.approx(1.0)
