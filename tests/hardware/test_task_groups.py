"""Tests for hierarchical (VMM-style) CPU scheduling with task groups."""

import pytest

from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.simulation import Simulation


def run_tasks(cores, tasks, context_switch_cost=0.0, quantum=0.01):
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=cores, quantum=quantum,
                              context_switch_cost=context_switch_cost)
    for task in tasks:
        cpu.submit(task)
    sim.run()
    return sim, cpu


def test_group_competes_as_single_entity():
    """Two guest tasks in one VM get one host share, not two."""
    vm = TaskGroup("vm")
    guest_a = CpuTask("ga", work=1.0, group=vm)
    guest_b = CpuTask("gb", work=1.0, group=vm)
    native = CpuTask("native", work=2.0)
    sim, _cpu = run_tasks(cores=1, tasks=[guest_a, guest_b, native])
    # Host splits 50/50 between VM and native; guests split the VM's half.
    # Guests each run at 0.25: done at t=4.  Native at 0.5 until t=4 (2.0
    # done) -> native also finishes at 4.
    assert native.finished_at == pytest.approx(4.0)
    assert guest_a.finished_at == pytest.approx(4.0)
    assert guest_b.finished_at == pytest.approx(4.0)


def test_uniprocessor_group_capped_at_one_core():
    """A 1-vcpu VM cannot use both cores even when they are free."""
    vm = TaskGroup("vm", vcpus=1)
    guest_a = CpuTask("ga", work=2.0, group=vm)
    guest_b = CpuTask("gb", work=2.0, group=vm)
    sim, _cpu = run_tasks(cores=2, tasks=[guest_a, guest_b])
    # Together they can only use one core: 4 CPU-seconds take 4 wall-secs.
    assert guest_a.finished_at == pytest.approx(4.0)


def test_two_vcpu_group_uses_both_cores():
    vm = TaskGroup("vm", vcpus=2)
    guest_a = CpuTask("ga", work=2.0, group=vm)
    guest_b = CpuTask("gb", work=2.0, group=vm)
    sim, _cpu = run_tasks(cores=2, tasks=[guest_a, guest_b])
    assert guest_a.finished_at == pytest.approx(2.0)
    assert guest_b.finished_at == pytest.approx(2.0)


def test_two_groups_share_like_two_processes():
    vm1 = TaskGroup("vm1")
    vm2 = TaskGroup("vm2")
    a = CpuTask("a", work=1.0, group=vm1)
    b = CpuTask("b", work=1.0, group=vm2)
    sim, _cpu = run_tasks(cores=1, tasks=[a, b])
    assert a.finished_at == pytest.approx(2.0)
    assert b.finished_at == pytest.approx(2.0)


def test_group_max_rate_enforced():
    vm = TaskGroup("vm", max_rate=0.25)
    guest = CpuTask("g", work=1.0, group=vm)
    sim, _cpu = run_tasks(cores=1, tasks=[guest])
    assert guest.finished_at == pytest.approx(4.0)


def test_group_weight_respected():
    vm = TaskGroup("vm", weight=3.0)
    guest = CpuTask("g", work=3.0, group=vm)
    native = CpuTask("n", work=3.0)
    sim, _cpu = run_tasks(cores=1, tasks=[guest, native])
    # VM gets 3/4 of the core: finishes its 3s at t=4.
    assert guest.finished_at == pytest.approx(4.0)


def test_world_switch_tax_applies_when_host_contended():
    """A VM preempted by host load pays the world-switch price."""
    vm = TaskGroup("vm", extra_switch_cost=4e-4)  # expensive world switch
    guest = CpuTask("g", work=1.0, group=vm)
    load = CpuTask("load", work=10.0)
    sim, _cpu = run_tasks(cores=1, tasks=[guest, load],
                          context_switch_cost=1e-4, quantum=0.01)
    # Share 0.5, tax (1e-4 + 4e-4)/0.01 = 5%: rate 0.475.
    assert guest.finished_at == pytest.approx(1.0 / 0.475, rel=1e-6)


def test_no_world_switch_tax_when_uncontended():
    vm = TaskGroup("vm", extra_switch_cost=4e-4)
    guest = CpuTask("g", work=1.0, group=vm)
    sim, _cpu = run_tasks(cores=2, tasks=[guest],
                          context_switch_cost=1e-4)
    assert guest.finished_at == pytest.approx(1.0)


def test_guest_context_switch_tax_inside_busy_vm():
    """Two guest processes sharing one vCPU pay emulated switches."""
    vm = TaskGroup("vm", member_switch_cost=1e-3, member_quantum=0.01)
    guest_a = CpuTask("ga", work=1.0, group=vm)
    guest_b = CpuTask("gb", work=1.0, group=vm)
    sim, _cpu = run_tasks(cores=2, tasks=[guest_a, guest_b])
    # Each guest: share 0.5, member tax 10% -> rate 0.45.
    assert guest_a.finished_at == pytest.approx(1.0 / 0.45, rel=1e-6)


def test_single_guest_pays_no_member_tax():
    vm = TaskGroup("vm", member_switch_cost=1e-3)
    guest = CpuTask("g", work=1.0, group=vm)
    sim, _cpu = run_tasks(cores=2, tasks=[guest])
    assert guest.finished_at == pytest.approx(1.0)


def test_group_and_native_on_two_cores_uncontended():
    """One VM plus one native task on a dual-CPU host: no interference."""
    vm = TaskGroup("vm", extra_switch_cost=4e-4)
    guest = CpuTask("g", work=3.0, group=vm)
    native = CpuTask("n", work=3.0)
    sim, _cpu = run_tasks(cores=2, tasks=[guest, native],
                          context_switch_cost=1e-4)
    assert guest.finished_at == pytest.approx(3.0)
    assert native.finished_at == pytest.approx(3.0)


def test_update_group_max_rate_midway():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm")
    guest = CpuTask("g", work=4.0, group=vm)
    cpu.submit(guest)

    def throttle(sim):
        yield sim.timeout(2.0)
        cpu.update_group(vm, max_rate=0.5)

    sim.spawn(throttle(sim))
    sim.run()
    assert guest.finished_at == pytest.approx(6.0)


def test_update_group_weight_midway():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm", weight=1.0)
    guest = CpuTask("g", work=4.0, group=vm)
    native = CpuTask("n", work=100.0)
    cpu.submit(guest)
    cpu.submit(native)

    def boost(sim):
        yield sim.timeout(2.0)
        cpu.update_group(vm, weight=3.0)

    sim.spawn(boost(sim))
    sim.run()
    # 2s at 0.5 rate = 1.0 done; then 3.0 left at 0.75 = 4s more.
    assert guest.finished_at == pytest.approx(6.0)


def test_group_departure_returns_capacity():
    vm = TaskGroup("vm")
    guest = CpuTask("g", work=1.0, group=vm)
    native = CpuTask("n", work=2.0)
    sim, _cpu = run_tasks(cores=1, tasks=[guest, native])
    # Share until guest finishes at t=2 (native has 1.0 done), then native
    # runs alone for its last 1.0.
    assert guest.finished_at == pytest.approx(2.0)
    assert native.finished_at == pytest.approx(3.0)
