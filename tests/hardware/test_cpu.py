"""Unit and property tests for the processor-sharing CPU model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import CpuTask, ProcessorSharingCpu
from repro.simulation import Simulation, SimulationError


def make_cpu(sim, cores=1, **kwargs):
    # Zero switch cost by default so timing assertions are exact.
    kwargs.setdefault("context_switch_cost", 0.0)
    return ProcessorSharingCpu(sim, cores=cores, **kwargs)


def run_tasks(cores, tasks, context_switch_cost=0.0, speed=1.0, quantum=0.01):
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=cores, speed=speed, quantum=quantum,
                              context_switch_cost=context_switch_cost)
    for task in tasks:
        cpu.submit(task)
    sim.run()
    return sim, cpu


def test_single_task_runs_at_full_speed():
    task = CpuTask("t", work=10.0)
    sim, _cpu = run_tasks(cores=1, tasks=[task])
    assert task.finished_at == pytest.approx(10.0)
    assert task.elapsed == pytest.approx(10.0)


def test_speed_scales_service_time():
    task = CpuTask("t", work=10.0)
    sim, _cpu = run_tasks(cores=1, tasks=[task], speed=2.0)
    assert task.finished_at == pytest.approx(5.0)


def test_two_tasks_share_one_core_equally():
    a = CpuTask("a", work=5.0)
    b = CpuTask("b", work=5.0)
    sim, _cpu = run_tasks(cores=1, tasks=[a, b])
    assert a.finished_at == pytest.approx(10.0)
    assert b.finished_at == pytest.approx(10.0)


def test_two_tasks_on_two_cores_do_not_interfere():
    a = CpuTask("a", work=5.0)
    b = CpuTask("b", work=7.0)
    sim, _cpu = run_tasks(cores=2, tasks=[a, b])
    assert a.finished_at == pytest.approx(5.0)
    assert b.finished_at == pytest.approx(7.0)


def test_short_task_departure_speeds_up_survivor():
    # a and b share a core; once a (1s of work) leaves at t=2, b runs alone.
    a = CpuTask("a", work=1.0)
    b = CpuTask("b", work=4.0)
    sim, _cpu = run_tasks(cores=1, tasks=[a, b])
    assert a.finished_at == pytest.approx(2.0)
    # b got 1s of service by t=2, then 3s more alone.
    assert b.finished_at == pytest.approx(5.0)


def test_late_arrival_slows_down_running_task():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    a = CpuTask("a", work=4.0)
    cpu.submit(a)

    def arrive_later(sim):
        yield sim.timeout(2.0)
        cpu.submit(CpuTask("b", work=1.0))

    sim.spawn(arrive_later(sim))
    sim.run()
    # a runs alone [0,2] (2s done), shares [2,4] (1s done), alone after b
    # finishes at t=4, finishing its last 1s at t=5.
    assert a.finished_at == pytest.approx(5.0)


def test_weighted_sharing():
    a = CpuTask("a", work=6.0, weight=2.0)
    b = CpuTask("b", work=6.0, weight=1.0)
    sim, _cpu = run_tasks(cores=1, tasks=[a, b])
    # a gets 2/3 of the core: finishes at 9.0; b then has 3.0 left of its
    # work after receiving 1/3*9=3.0, finishing at 12.0.
    assert a.finished_at == pytest.approx(9.0)
    assert b.finished_at == pytest.approx(12.0)


def test_rate_factor_dilates_execution():
    task = CpuTask("vm", work=10.0, rate_factor=0.5)
    sim, _cpu = run_tasks(cores=1, tasks=[task])
    assert task.finished_at == pytest.approx(20.0)


def test_max_rate_caps_service():
    task = CpuTask("capped", work=2.0, max_rate=0.25)
    sim, _cpu = run_tasks(cores=1, tasks=[task])
    assert task.finished_at == pytest.approx(8.0)


def test_capped_task_leaves_capacity_to_others():
    capped = CpuTask("capped", work=2.0, max_rate=0.5)
    other = CpuTask("other", work=3.0)
    sim, _cpu = run_tasks(cores=1, tasks=[capped, other])
    # Water-filling: capped pinned at 0.5 core, other gets the rest.
    assert capped.finished_at == pytest.approx(4.0)
    # other runs at 0.5 until t=4 (2s done), then alone: 1s more.
    assert other.finished_at == pytest.approx(5.0)


def test_single_task_is_never_taxed_by_switch_cost():
    task = CpuTask("t", work=1.0)
    sim, _cpu = run_tasks(cores=1, tasks=[task], context_switch_cost=1e-3)
    assert task.finished_at == pytest.approx(1.0)


def test_contended_core_pays_context_switch_tax():
    # Two tasks, one core, 1 ms switch on a 10 ms quantum: 10% tax.
    a = CpuTask("a", work=1.0)
    b = CpuTask("b", work=1.0)
    sim, _cpu = run_tasks(cores=1, tasks=[a, b], context_switch_cost=1e-3,
                          quantum=0.01)
    assert a.finished_at == pytest.approx(2.0 / 0.9, rel=1e-6)


def test_extra_switch_cost_models_world_switch():
    # The VM task pays a bigger preemption price than the plain task.
    vm = CpuTask("vm", work=1.0, extra_switch_cost=1e-3)
    plain = CpuTask("plain", work=1.0)
    other = CpuTask("other", work=10.0)
    sim_vm, _ = run_tasks(cores=1, tasks=[vm, other],
                          context_switch_cost=1e-3, quantum=0.01)
    sim_plain, _ = run_tasks(cores=1, tasks=[plain, CpuTask("o", work=10.0)],
                             context_switch_cost=1e-3, quantum=0.01)
    assert vm.finished_at > plain.finished_at


def test_two_tasks_on_two_cores_pay_no_tax():
    a = CpuTask("a", work=1.0)
    b = CpuTask("b", work=1.0)
    sim, _cpu = run_tasks(cores=2, tasks=[a, b], context_switch_cost=1e-3)
    assert a.finished_at == pytest.approx(1.0)
    assert b.finished_at == pytest.approx(1.0)


def test_zero_work_task_completes_immediately():
    sim = Simulation()
    cpu = make_cpu(sim)
    task = CpuTask("empty", work=0.0)
    cpu.submit(task)
    sim.run()
    assert task.finished_at == 0.0


def test_cancel_returns_remaining_work():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    task = CpuTask("t", work=10.0)
    cpu.submit(task)
    remaining = {}

    def canceller(sim):
        yield sim.timeout(4.0)
        remaining["value"] = cpu.cancel(task)

    sim.spawn(canceller(sim))
    sim.run()
    assert remaining["value"] == pytest.approx(6.0)
    assert task.finished_at is None


def test_cancel_unknown_task_is_error():
    sim = Simulation()
    cpu = make_cpu(sim)
    with pytest.raises(SimulationError):
        cpu.cancel(CpuTask("ghost", work=1.0))


def test_resubmitting_task_is_error():
    sim = Simulation()
    cpu = make_cpu(sim)
    task = CpuTask("t", work=1.0)
    cpu.submit(task)
    with pytest.raises(SimulationError):
        cpu.submit(task)


def test_update_task_rate_factor_midway():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    task = CpuTask("t", work=10.0)
    cpu.submit(task)

    def slow_down(sim):
        yield sim.timeout(5.0)
        cpu.update_task(task, rate_factor=0.5)

    sim.spawn(slow_down(sim))
    sim.run()
    # 5s at full rate, remaining 5s at half rate = 10 more seconds.
    assert task.finished_at == pytest.approx(15.0)


def test_update_max_rate_midway():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    task = CpuTask("t", work=4.0)
    cpu.submit(task)

    def throttle(sim):
        yield sim.timeout(2.0)
        cpu.update_task(task, max_rate=0.5)

    sim.spawn(throttle(sim))
    sim.run()
    assert task.finished_at == pytest.approx(6.0)


def test_clear_max_rate():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    task = CpuTask("t", work=4.0, max_rate=0.5)
    cpu.submit(task)

    def unthrottle(sim):
        yield sim.timeout(4.0)
        cpu.update_task(task, clear_max_rate=True)

    sim.spawn(unthrottle(sim))
    sim.run()
    # 2.0 work done capped by t=4, remaining 2.0 at full speed.
    assert task.finished_at == pytest.approx(6.0)


def test_run_helper_returns_task():
    sim = Simulation()
    cpu = make_cpu(sim)

    def runner(sim):
        task = yield from cpu.run(CpuTask("t", work=2.0))
        return task.finished_at

    proc = sim.spawn(runner(sim))
    assert sim.run_until_complete(proc) == pytest.approx(2.0)


def test_utilization_monitor_tracks_busy_and_idle():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)
    cpu.submit(CpuTask("t", work=5.0))
    sim.run()
    # Busy on [0, 5], idle afterwards.
    assert cpu.utilization.value_at(1.0) == pytest.approx(1.0)
    assert cpu.utilization.last_value == pytest.approx(0.0)


def test_invalid_parameters_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        ProcessorSharingCpu(sim, cores=0)
    with pytest.raises(SimulationError):
        ProcessorSharingCpu(sim, speed=0.0)
    with pytest.raises(SimulationError):
        CpuTask("t", work=-1.0)
    with pytest.raises(SimulationError):
        CpuTask("t", work=1.0, weight=0.0)
    with pytest.raises(SimulationError):
        CpuTask("t", work=1.0, rate_factor=0.0)
    with pytest.raises(SimulationError):
        CpuTask("t", work=1.0, rate_factor=1.5)


@settings(max_examples=30, deadline=None)
@given(works=st.lists(st.floats(min_value=0.1, max_value=20.0),
                      min_size=1, max_size=6),
       cores=st.integers(min_value=1, max_value=4))
def test_property_total_service_conserved(works, cores):
    """Sum of work equals integral of delivered service (no tax case)."""
    tasks = [CpuTask("t%d" % i, work=w) for i, w in enumerate(works)]
    sim, cpu = run_tasks(cores=cores, tasks=tasks)
    for task in tasks:
        assert task.remaining == pytest.approx(0.0, abs=1e-6)
        assert task.finished_at is not None
    # Makespan is bounded below by max(work) and total/cores.
    makespan = max(t.finished_at for t in tasks)
    assert makespan >= max(works) - 1e-6
    assert makespan >= sum(works) / cores - 1e-6
    # And above by running everything serially.
    assert makespan <= sum(works) + 1e-6


@settings(max_examples=30, deadline=None)
@given(works=st.lists(st.floats(min_value=0.1, max_value=10.0),
                      min_size=2, max_size=5))
def test_property_equal_tasks_finish_together(works):
    """Identical concurrent tasks on one core finish simultaneously."""
    work = works[0]
    tasks = [CpuTask("t%d" % i, work=work) for i in range(len(works))]
    sim, cpu = run_tasks(cores=1, tasks=tasks)
    finish_times = {round(t.finished_at, 6) for t in tasks}
    assert len(finish_times) == 1
    assert tasks[0].finished_at == pytest.approx(work * len(tasks))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=5.0),
                min_size=1, max_size=5),
       st.floats(min_value=0.1, max_value=1.0))
def test_property_rate_factor_never_speeds_up(works, factor):
    plain = [CpuTask("p%d" % i, work=w) for i, w in enumerate(works)]
    dilated = [CpuTask("d%d" % i, work=w, rate_factor=factor)
               for i, w in enumerate(works)]
    _, _ = run_tasks(cores=2, tasks=plain)
    _, _ = run_tasks(cores=2, tasks=dilated)
    for p, d in zip(plain, dilated):
        assert d.finished_at >= p.finished_at - 1e-9
