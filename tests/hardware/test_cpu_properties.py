"""Property-based tests of the hierarchical CPU's fairness invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.hardware.cpu import _waterfill
from repro.simulation import Simulation


# ---------------------------------------------------------------------------
# _waterfill: the allocation core used at both scheduling levels
# ---------------------------------------------------------------------------

item_strategy = st.tuples(
    st.floats(min_value=0.1, max_value=10.0),   # weight
    st.floats(min_value=0.0, max_value=2.0),    # cap
)


@settings(max_examples=200, deadline=None)
@given(items=st.lists(item_strategy, min_size=1, max_size=8),
       capacity=st.floats(min_value=0.0, max_value=8.0))
def test_waterfill_conserves_and_respects_caps(items, capacity):
    keyed = [(i, weight, cap) for i, (weight, cap) in enumerate(items)]
    shares = _waterfill(keyed, capacity)
    # Every item allocated, no cap violated, nothing negative.
    assert set(shares) == set(range(len(items)))
    for key, weight, cap in keyed:
        assert -1e-9 <= shares[key] <= cap + 1e-9
    # Total never exceeds capacity.
    assert sum(shares.values()) <= capacity + 1e-6
    # Work-conserving: if demand (sum of caps) >= capacity, all of the
    # capacity is handed out.
    total_cap = sum(cap for _k, _w, cap in keyed)
    if total_cap >= capacity:
        assert sum(shares.values()) == pytest.approx(
            min(capacity, total_cap), rel=1e-6, abs=1e-6)
    else:
        assert sum(shares.values()) == pytest.approx(total_cap, abs=1e-6)


@settings(max_examples=100, deadline=None)
@given(weights=st.lists(st.floats(min_value=0.1, max_value=10.0),
                        min_size=2, max_size=6))
def test_waterfill_uncapped_shares_proportional_to_weights(weights):
    keyed = [(i, w, float("inf")) for i, w in enumerate(weights)]
    shares = _waterfill(keyed, 1.0)
    total_weight = sum(weights)
    for i, weight in enumerate(weights):
        assert shares[i] == pytest.approx(weight / total_weight, rel=1e-6)


# ---------------------------------------------------------------------------
# End-to-end CPU invariants with groups
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(group_sizes=st.lists(st.integers(min_value=1, max_value=3),
                            min_size=1, max_size=3),
       singles=st.integers(min_value=0, max_value=2),
       cores=st.integers(min_value=1, max_value=4))
def test_property_group_work_conservation(group_sizes, singles, cores):
    """All submitted work completes; makespan is physically sensible."""
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=cores, context_switch_cost=0.0)
    tasks = []
    for g, size in enumerate(group_sizes):
        group = TaskGroup("g%d" % g)
        for m in range(size):
            task = CpuTask("g%d-t%d" % (g, m), work=2.0, group=group)
            tasks.append(task)
            cpu.submit(task)
    for s in range(singles):
        task = CpuTask("s%d" % s, work=2.0)
        tasks.append(task)
        cpu.submit(task)
    sim.run()
    total_work = 2.0 * len(tasks)
    makespan = max(t.finished_at for t in tasks)
    assert all(t.remaining == pytest.approx(0.0, abs=1e-6) for t in tasks)
    # Lower bound: total work over all cores; per-vCPU group ceilings
    # can only stretch it further.
    assert makespan >= total_work / cores - 1e-6
    # Upper bound: fully serialized execution.
    assert makespan <= total_work + 1e-6


@settings(max_examples=25, deadline=None)
@given(members=st.integers(min_value=1, max_value=5),
       cores=st.integers(min_value=1, max_value=4))
def test_property_group_never_exceeds_vcpu_ceiling(members, cores):
    """N guest tasks in a 1-vCPU group take >= N*work wall seconds."""
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=cores, context_switch_cost=0.0)
    group = TaskGroup("vm", vcpus=1)
    tasks = [CpuTask("t%d" % i, work=1.0, group=group)
             for i in range(members)]
    for task in tasks:
        cpu.submit(task)
    sim.run()
    makespan = max(t.finished_at for t in tasks)
    assert makespan >= members * 1.0 - 1e-6


@settings(max_examples=20, deadline=None)
@given(cap=st.floats(min_value=0.1, max_value=0.9))
def test_property_group_cap_is_exact(cap):
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    group = TaskGroup("vm", max_rate=cap)
    task = CpuTask("t", work=1.0, group=group)
    cpu.submit(task)
    sim.run()
    assert task.finished_at == pytest.approx(1.0 / cap, rel=1e-6)
