"""Unit tests for disk, NIC and machine composition."""

import pytest

from repro.hardware import Disk, MachineSpec, NetworkInterface, PhysicalMachine
from repro.simulation import Simulation, SimulationError


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------

def test_disk_sequential_read_is_streaming_only():
    sim = Simulation()
    disk = Disk(sim, seek_time=0.01, transfer_rate=10e6)

    def reader(sim):
        yield from disk.read(10_000_000, sequential=True)
        return sim.now

    proc = sim.spawn(reader(sim))
    assert sim.run_until_complete(proc) == pytest.approx(1.0)


def test_disk_random_read_pays_seek():
    sim = Simulation()
    disk = Disk(sim, seek_time=0.01, transfer_rate=10e6)

    def reader(sim):
        yield from disk.read(0, sequential=False)
        return sim.now

    proc = sim.spawn(reader(sim))
    assert sim.run_until_complete(proc) == pytest.approx(0.01)


def test_disk_requests_queue_fifo():
    sim = Simulation()
    disk = Disk(sim, seek_time=0.0, transfer_rate=1e6)
    finishes = []

    def reader(sim, nbytes):
        yield from disk.read(nbytes, sequential=True)
        finishes.append(sim.now)

    sim.spawn(reader(sim, 1_000_000))  # 1s
    sim.spawn(reader(sim, 2_000_000))  # 2s, starts after first
    sim.run()
    assert finishes == [pytest.approx(1.0), pytest.approx(3.0)]


def test_disk_counts_traffic():
    sim = Simulation()
    disk = Disk(sim)

    def worker(sim):
        yield from disk.read(100)
        yield from disk.write(200)

    sim.spawn(worker(sim))
    sim.run()
    assert disk.bytes_read == 100
    assert disk.bytes_written == 200


def test_disk_latency_statistics_include_queueing():
    sim = Simulation()
    disk = Disk(sim, seek_time=0.0, transfer_rate=1e6)

    def reader(sim):
        yield from disk.read(1_000_000, sequential=True)

    sim.spawn(reader(sim))
    sim.spawn(reader(sim))
    sim.run()
    assert disk.request_latency.count == 2
    assert disk.request_latency.maximum == pytest.approx(2.0)


def test_disk_parameter_validation():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Disk(sim, seek_time=-1.0)
    with pytest.raises(SimulationError):
        Disk(sim, transfer_rate=0.0)


# ---------------------------------------------------------------------------
# NIC
# ---------------------------------------------------------------------------

def test_nic_serialization_time():
    sim = Simulation()
    nic = NetworkInterface(sim, bandwidth=12.5e6)  # 100 Mb/s
    assert nic.serialization_time(12_500_000) == pytest.approx(1.0)


def test_nic_tx_and_rx_are_independent():
    sim = Simulation()
    nic = NetworkInterface(sim, bandwidth=1e6)
    finishes = {}

    def sender(sim):
        yield from nic.transmit(1_000_000)
        finishes["tx"] = sim.now

    def receiver(sim):
        yield from nic.receive(1_000_000)
        finishes["rx"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert finishes["tx"] == pytest.approx(1.0)
    assert finishes["rx"] == pytest.approx(1.0)


def test_nic_tx_serializes():
    sim = Simulation()
    nic = NetworkInterface(sim, bandwidth=1e6)
    finishes = []

    def sender(sim):
        yield from nic.transmit(1_000_000)
        finishes.append(sim.now)

    sim.spawn(sender(sim))
    sim.spawn(sender(sim))
    sim.run()
    assert finishes == [pytest.approx(1.0), pytest.approx(2.0)]


def test_nic_counts_traffic():
    sim = Simulation()
    nic = NetworkInterface(sim, bandwidth=1e9)

    def worker(sim):
        yield from nic.transmit(10)
        yield from nic.receive(20)

    sim.spawn(worker(sim))
    sim.run()
    assert nic.bytes_sent == 10
    assert nic.bytes_received == 20


# ---------------------------------------------------------------------------
# PhysicalMachine
# ---------------------------------------------------------------------------

def test_machine_composes_hardware():
    sim = Simulation()
    machine = PhysicalMachine(sim, "node1", site="uf")
    assert machine.cpu.cores == 2
    assert machine.disk is not None
    assert machine.nic is not None
    assert machine.memory_mb == 1024


def test_machine_describe_for_information_service():
    sim = Simulation()
    spec = MachineSpec(cores=4, memory_mb=2048,
                       attributes={"willing_vm_futures": 3})
    machine = PhysicalMachine(sim, "big", site="nw", spec=spec)
    record = machine.describe()
    assert record["name"] == "big"
    assert record["site"] == "nw"
    assert record["cores"] == 4
    assert record["memory_mb"] == 2048
    assert record["willing_vm_futures"] == 3
    assert record["architecture"] == "x86"


def test_machine_requires_name():
    sim = Simulation()
    with pytest.raises(SimulationError):
        PhysicalMachine(sim, "")
