"""Unit tests for the NFS client/server and loopback mounts."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.hardware import Disk
from repro.simulation import Simulation
from repro.storage import LocalFileSystem, NfsClient, NfsServer


def build(sim, wan=False, server_rate=100e6, rpc_overhead=1e-3,
          per_byte=0.0, client_cache=64 * 1024 * 1024):
    if wan:
        net = Network.two_site_wan(sim, "a", ["client"], "b", ["server"],
                                   wan_latency=0.015, wan_bandwidth=2.5e6)
    else:
        net = Network.single_lan(sim, ["client", "server"])
    engine = FlowEngine(sim, net)
    disk = Disk(sim, seek_time=0.0, transfer_rate=server_rate)
    server_fs = LocalFileSystem(sim, disk, cache_bytes=1024 * 1024 * 1024)
    server = NfsServer(sim, "server", server_fs, engine,
                       rpc_overhead=rpc_overhead, per_byte_cost=per_byte)
    client = NfsClient(sim, "client", engine, cache_bytes=client_cache)
    mount = client.mount(server)
    return net, engine, server_fs, server, mount


def run(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


def test_mount_sees_server_files():
    sim = Simulation()
    _net, _engine, server_fs, _server, mount = build(sim)
    server_fs.create("data.bin", 1000)
    assert mount.exists("data.bin")
    assert mount.size("data.bin") == 1000
    assert mount.listdir() == ["data.bin"]
    assert not mount.loopback


def test_loopback_mount_detected():
    sim = Simulation()
    net = Network.single_lan(sim, ["host"])
    engine = FlowEngine(sim, net)
    disk = Disk(sim)
    fs = LocalFileSystem(sim, disk)
    server = NfsServer(sim, "host", fs, engine)
    mount = NfsClient(sim, "host", engine).mount(server)
    assert mount.loopback


def test_read_charges_rpc_overhead_per_chunk():
    sim = Simulation()
    _net, _engine, server_fs, server, mount = build(sim, rpc_overhead=1e-3,
                                                    server_rate=1e12)
    server_fs.create("f", 32768 * 10)

    def reader(sim):
        yield from mount.read("f", 0, 32768 * 10)
        return sim.now

    elapsed = run(sim, reader(sim))
    assert server.rpc_count == 10
    # Ten chunk RPCs at 1 ms each dominate on a fast LAN.
    assert elapsed >= 10 * 1e-3


def test_per_byte_cost_charged():
    sim = Simulation()
    _net, _engine, server_fs, _server, mount = build(
        sim, rpc_overhead=0.0, per_byte=1e-6, server_rate=1e12)
    server_fs.create("f", 32768)

    def reader(sim):
        yield from mount.read("f", 0, 32768)
        return sim.now

    elapsed = run(sim, reader(sim))
    assert elapsed >= 32768 * 1e-6


def test_client_cache_absorbs_repeat_reads():
    sim = Simulation()
    _net, _engine, server_fs, server, mount = build(sim)
    server_fs.create("f", 32768 * 4)
    run(sim, mount.read("f", 0, 32768 * 4))
    rpcs = server.rpc_count
    run(sim, mount.read("f", 0, 32768 * 4))
    assert server.rpc_count == rpcs  # warm: no new RPCs


def test_wan_read_slower_than_lan():
    def elapsed_for(wan):
        sim = Simulation()
        _net, _engine, server_fs, _server, mount = build(sim, wan=wan)
        server_fs.create("f", 32768 * 64)

        def reader(sim):
            yield from mount.read("f", 0, 32768 * 64)
            return sim.now

        return run(sim, reader(sim))

    assert elapsed_for(True) > 3 * elapsed_for(False)


def test_wan_transfer_paced_by_bottleneck():
    sim = Simulation()
    _net, _engine, server_fs, _server, mount = build(sim, wan=True,
                                                     rpc_overhead=0.0)
    nbytes = 32768 * 64  # 2 MiB
    server_fs.create("f", nbytes)

    def reader(sim):
        yield from mount.read("f", 0, nbytes)
        return sim.now

    elapsed = run(sim, reader(sim))
    # 2 MiB over a 2.5 MB/s WAN bottleneck is at least ~0.84 s.
    assert elapsed >= nbytes / 2.5e6


def test_write_pushes_bytes_to_server():
    sim = Simulation()
    _net, _engine, server_fs, server, mount = build(sim)

    def writer(sim):
        yield from mount.write("out", 0, 32768 * 3)

    run(sim, writer(sim))
    assert server_fs.size("out") == 32768 * 3
    assert server.rpc_count == 3


def test_delete_invalidates_client_cache():
    sim = Simulation()
    _net, _engine, server_fs, server, mount = build(sim)
    server_fs.create("f", 32768)
    run(sim, mount.read("f", 0, 32768))
    mount.delete("f")
    assert not mount.exists("f")
    server_fs.create("f", 32768)
    rpcs = server.rpc_count
    run(sim, mount.read("f", 0, 32768))
    assert server.rpc_count == rpcs + 1  # cache was invalidated


def test_loopback_skips_network_but_pays_stack():
    sim = Simulation()
    net = Network.single_lan(sim, ["host"])
    engine = FlowEngine(sim, net)
    disk = Disk(sim, seek_time=0.0, transfer_rate=1e12)
    fs = LocalFileSystem(sim, disk, cache_bytes=1024 * 1024 * 1024)
    server = NfsServer(sim, "host", fs, engine, rpc_overhead=1e-3,
                       per_byte_cost=0.0)
    mount = NfsClient(sim, "host", engine).mount(server)
    fs.create("f", 32768 * 5)

    def reader(sim):
        yield from mount.read("f", 0, 32768 * 5)
        return sim.now

    elapsed = run(sim, reader(sim))
    assert elapsed == pytest.approx(5e-3, abs=1e-3)
