"""Edge-path tests across the storage stack."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.hardware import Disk
from repro.simulation import Simulation
from repro.storage import (
    FileStager,
    LocalFileSystem,
    NfsClient,
    NfsServer,
    PvfsProxy,
    StorageError,
)
from tests.support import run


def local_fs(sim, **kwargs):
    kwargs.setdefault("cache_bytes", 16 * 1024 * 1024)
    return LocalFileSystem(sim, Disk(sim), **kwargs)


# ---------------------------------------------------------------------------
# FileSystem interface behaviours
# ---------------------------------------------------------------------------

def test_read_file_reads_everything():
    sim = Simulation()
    fs = local_fs(sim)
    fs.create("whole", 200_000)
    run(sim, fs.read_file("whole"))
    # Everything is now cached: a repeat costs no disk traffic.
    before = fs.disk.bytes_read
    run(sim, fs.read_file("whole"))
    assert fs.disk.bytes_read == before


def test_zero_byte_read_and_write():
    sim = Simulation()
    fs = local_fs(sim)
    fs.create("f", 100)
    run(sim, fs.read("f", 0, 0))
    run(sim, fs.write("f", 0, 0))
    assert fs.size("f") == 100


def test_create_negative_size_rejected():
    sim = Simulation()
    fs = local_fs(sim)
    with pytest.raises(StorageError):
        fs.create("bad", -1)


# ---------------------------------------------------------------------------
# NFS edge paths
# ---------------------------------------------------------------------------

def nfs_pair(sim):
    net = Network.single_lan(sim, ["client", "server"])
    engine = FlowEngine(sim, net)
    server_fs = LocalFileSystem(sim, Disk(sim), cache_bytes=1024 ** 3)
    server = NfsServer(sim, "server", server_fs, engine)
    mount = NfsClient(sim, "client", engine).mount(server)
    return server_fs, server, mount


def test_nfs_zero_byte_operations():
    sim = Simulation()
    server_fs, server, mount = nfs_pair(sim)
    server_fs.create("f", 100)
    run(sim, mount.read("f", 0, 0))
    run(sim, mount.write("f", 0, 0))
    assert server.rpc_count == 0


def test_nfs_read_past_end_rejected():
    sim = Simulation()
    server_fs, _server, mount = nfs_pair(sim)
    server_fs.create("f", 10)
    with pytest.raises(StorageError):
        run(sim, mount.read("f", 0, 100))


def test_nfs_create_via_mount():
    sim = Simulation()
    server_fs, _server, mount = nfs_pair(sim)
    mount.create("new", 5000)
    assert server_fs.exists("new")
    assert mount.size("new") == 5000


def test_nfs_final_partial_chunk_clamped():
    """A file not aligned to the chunk size reads correctly."""
    sim = Simulation()
    server_fs, server, mount = nfs_pair(sim)
    odd = 32768 + 1000
    server_fs.create("odd", odd)
    run(sim, mount.read("odd", 0, odd))
    assert server.rpc_count == 2


# ---------------------------------------------------------------------------
# PVFS proxy edge paths
# ---------------------------------------------------------------------------

def test_proxy_listdir_merges_buffered_names():
    sim = Simulation()
    fs = local_fs(sim)
    fs.create("base-file", 100)
    proxy = PvfsProxy(sim, fs, cache_bytes=1024 ** 2)
    run(sim, proxy.write("buffered-only", 0, 100))
    names = proxy.listdir()
    assert "base-file" in names
    assert "buffered-only" in names
    assert proxy.exists("buffered-only")


def test_proxy_delete_clears_cache_and_buffer():
    sim = Simulation()
    fs = local_fs(sim)
    fs.create("doomed", 65536)
    proxy = PvfsProxy(sim, fs, cache_bytes=1024 ** 2)
    run(sim, proxy.read("doomed", 0, 65536))
    run(sim, proxy.write("doomed", 0, 100))
    proxy.delete("doomed")
    assert not proxy.exists("doomed")
    assert not fs.exists("doomed")


def test_proxy_create_forwards():
    sim = Simulation()
    fs = local_fs(sim)
    proxy = PvfsProxy(sim, fs, cache_bytes=0)
    proxy.create("fresh", 4096)
    assert fs.exists("fresh")


def test_proxy_sync_empty_is_noop():
    sim = Simulation()
    fs = local_fs(sim)
    proxy = PvfsProxy(sim, fs, cache_bytes=1024 ** 2)

    def syncer(sim):
        flushed = yield from proxy.sync()
        return flushed

    assert run(sim, syncer(sim)) == 0


def test_proxy_negative_prefetch_rejected():
    sim = Simulation()
    fs = local_fs(sim)
    with pytest.raises(StorageError):
        PvfsProxy(sim, fs, prefetch_blocks=-1)


def test_proxy_prefetch_stops_at_eof():
    sim = Simulation()
    fs = local_fs(sim)
    fs.create("tiny", 65536)  # one block
    proxy = PvfsProxy(sim, fs, cache_bytes=1024 ** 2, prefetch_blocks=8)
    run(sim, proxy.read("tiny", 0, 65536))
    sim.run()
    assert proxy.prefetch_issued == 0  # nothing beyond EOF to fetch


# ---------------------------------------------------------------------------
# Stager edge paths
# ---------------------------------------------------------------------------

def test_stager_validation():
    sim = Simulation()
    net = Network.single_lan(sim, ["a", "b"])
    engine = FlowEngine(sim, net)
    with pytest.raises(StorageError):
        FileStager(sim, engine, chunk_bytes=0)
    with pytest.raises(StorageError):
        FileStager(sim, engine, pipeline_depth=0)


def test_stager_same_host_copy():
    sim = Simulation()
    net = Network.single_lan(sim, ["a"])
    engine = FlowEngine(sim, net)
    src = local_fs(sim)
    dst = local_fs(sim)
    stager = FileStager(sim, engine, handshake_time=0.0)
    src.create("f", 3 * 1024 * 1024)

    def mover(sim):
        moved = yield from stager.stage(src, "a", "f", dst, "a")
        return moved

    assert run(sim, mover(sim)) >= 3 * 1024 * 1024
    assert dst.exists("f")
