"""Unit tests for the local file system (DiskFS)."""

import pytest

from repro.hardware import Disk
from repro.simulation import Simulation
from repro.storage import FileNotFound, LocalFileSystem, StorageError
from repro.storage.base import block_span


def make_fs(sim, cache_bytes=16 * 1024 * 1024, seek=0.004, rate=20e6):
    disk = Disk(sim, seek_time=seek, transfer_rate=rate)
    return LocalFileSystem(sim, disk, cache_bytes=cache_bytes), disk


def run(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


# ---------------------------------------------------------------------------
# block_span helper
# ---------------------------------------------------------------------------

def test_block_span_basic():
    # block_span returns a lazy range; compare materialized indices.
    assert list(block_span(0, 100, 64)) == [0, 1]
    assert list(block_span(64, 64, 64)) == [1]
    assert list(block_span(63, 2, 64)) == [0, 1]
    assert list(block_span(0, 0, 64)) == []
    assert not block_span(0, 0, 64)  # empty span is falsy
    assert len(block_span(0, 100, 64)) == 2


def test_block_span_validates():
    with pytest.raises(StorageError):
        block_span(-1, 10, 64)


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------

def test_create_and_stat():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    fs.create("image.vmdk", 1_000_000)
    assert fs.exists("image.vmdk")
    assert fs.size("image.vmdk") == 1_000_000
    assert fs.listdir() == ["image.vmdk"]


def test_missing_file_raises():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    with pytest.raises(FileNotFound):
        fs.size("ghost")


def test_delete_removes_file_and_cache():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    fs.create("f", 65536)
    run(sim, fs.read("f", 0, 65536))
    fs.delete("f")
    assert not fs.exists("f")
    assert fs.cache.size_blocks == 0


# ---------------------------------------------------------------------------
# read path
# ---------------------------------------------------------------------------

def test_cold_sequential_read_pays_one_seek_plus_stream():
    sim = Simulation()
    fs, disk = make_fs(sim, seek=0.01, rate=10e6)
    fs.create("f", 10_000_000)

    def reader(sim):
        yield from fs.read("f", 0, 10_000_000)
        return sim.now

    # ~160 blocks in one miss run: one seek + 1s streaming (block rounding).
    elapsed = run(sim, reader(sim))
    expected_bytes = len(block_span(0, 10_000_000, fs.block_size)) \
        * fs.block_size
    assert elapsed == pytest.approx(0.01 + expected_bytes / 10e6)


def test_warm_read_skips_disk():
    sim = Simulation()
    fs, disk = make_fs(sim)
    fs.create("f", 65536 * 4)
    run(sim, fs.read("f", 0, 65536 * 4))
    before = disk.bytes_read

    def reader(sim):
        start = sim.now
        yield from fs.read("f", 0, 65536 * 4)
        return sim.now - start

    elapsed = run(sim, reader(sim))
    assert disk.bytes_read == before          # no disk traffic
    assert elapsed < 1e-3                     # microseconds of cache cost


def test_read_past_end_rejected():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    fs.create("f", 100)
    with pytest.raises(StorageError):
        run(sim, fs.read("f", 0, 200))


def test_scattered_reads_pay_seek_each():
    sim = Simulation()
    fs, _disk = make_fs(sim, seek=0.01, rate=1e9)
    fs.create("f", 65536 * 100)

    def reader(sim):
        # Ten isolated single-block reads, far apart: ten seeks.
        for i in range(0, 100, 10):
            yield from fs.read("f", i * 65536, 65536, sequential=False)
        return sim.now

    elapsed = run(sim, reader(sim))
    assert elapsed == pytest.approx(10 * 0.01, rel=0.05)


def test_partially_cached_read_splits_runs():
    sim = Simulation()
    fs, disk = make_fs(sim)
    fs.create("f", 65536 * 3)
    # Warm the middle block only.
    run(sim, fs.read("f", 65536, 65536))
    reads_before = disk.bytes_read
    run(sim, fs.read("f", 0, 65536 * 3))
    # Only blocks 0 and 2 hit the disk.
    assert disk.bytes_read - reads_before == 2 * 65536


# ---------------------------------------------------------------------------
# write path
# ---------------------------------------------------------------------------

def test_write_extends_file():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    run(sim, fs.write("new", 0, 1000))
    assert fs.size("new") == 1000
    run(sim, fs.write("new", 1000, 500))
    assert fs.size("new") == 1500


def test_write_takes_disk_time():
    sim = Simulation()
    fs, _disk = make_fs(sim, seek=0.0, rate=10e6)

    def writer(sim):
        yield from fs.write("f", 0, 10_000_000)
        return sim.now

    elapsed = run(sim, writer(sim))
    expected_bytes = len(block_span(0, 10_000_000, fs.block_size)) \
        * fs.block_size
    assert elapsed == pytest.approx(expected_bytes / 10e6)


def test_written_blocks_are_cached():
    sim = Simulation()
    fs, disk = make_fs(sim)
    run(sim, fs.write("f", 0, 65536 * 2))
    before = disk.bytes_read
    run(sim, fs.read("f", 0, 65536 * 2))
    assert disk.bytes_read == before


# ---------------------------------------------------------------------------
# copy (Table 2 persistent mode)
# ---------------------------------------------------------------------------

def test_copy_duplicates_size_and_costs_double_transfer():
    sim = Simulation()
    fs, disk = make_fs(sim, seek=0.0, rate=10e6, cache_bytes=0)

    def copier(sim):
        yield from fs.copy("src", "dst")
        return sim.now

    fs.create("src", 50_000_000)
    elapsed = run(sim, copier(sim))
    assert fs.size("dst") == 50_000_000
    # Read 50 MB + write 50 MB at 10 MB/s = ~10s.
    assert elapsed == pytest.approx(10.0, rel=0.02)


def test_copy_leaves_destination_tail_warm():
    sim = Simulation()
    # Cache holds 8 MB; copy 32 MB: the tail should be resident.
    fs, _disk = make_fs(sim, cache_bytes=8 * 1024 * 1024)
    fs.create("src", 32 * 1024 * 1024)
    run(sim, fs.copy("src", "dst"))
    assert 0.0 < fs.warm_fraction("dst") < 0.5
    # Reading the warm tail is much cheaper than the cold head.
    assert fs.cache.size_bytes == 8 * 1024 * 1024


def test_warm_fraction_empty_file():
    sim = Simulation()
    fs, _disk = make_fs(sim)
    fs.create("empty", 0)
    assert fs.warm_fraction("empty") == 1.0
