"""Unit tests for the PVFS proxy and the whole-file stager."""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.hardware import Disk
from repro.simulation import Simulation
from repro.storage import (
    FileStager,
    LocalFileSystem,
    NfsClient,
    NfsServer,
    PvfsProxy,
)


def wan_fixture(sim, prefetch=0, proxy_cache=512 * 1024 * 1024):
    net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"],
                               wan_latency=0.015, wan_bandwidth=2.5e6)
    engine = FlowEngine(sim, net)
    disk = Disk(sim, seek_time=0.0, transfer_rate=100e6)
    server_fs = LocalFileSystem(sim, disk, cache_bytes=1024 ** 3)
    server = NfsServer(sim, "image", server_fs, engine)
    mount = NfsClient(sim, "compute", engine,
                      cache_bytes=0).mount(server)
    proxy = PvfsProxy(sim, mount, cache_bytes=proxy_cache,
                      prefetch_blocks=prefetch)
    return net, engine, server_fs, server, mount, proxy


def run(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


# ---------------------------------------------------------------------------
# PVFS proxy
# ---------------------------------------------------------------------------

def test_proxy_forwards_misses():
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(sim)
    server_fs.create("image", 32768 * 8)
    run(sim, proxy.read("image", 0, 32768 * 8))
    assert server.rpc_count == 8


def test_proxy_cache_absorbs_repeats():
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(sim)
    server_fs.create("image", 32768 * 8)
    run(sim, proxy.read("image", 0, 32768 * 8))
    rpcs = server.rpc_count

    def second(sim):
        start = sim.now
        yield from proxy.read("image", 0, 32768 * 8)
        return sim.now - start

    elapsed = run(sim, second(sim))
    assert server.rpc_count == rpcs       # all hits
    assert elapsed < 1e-2                 # local proxy service only


def test_proxy_shares_image_across_readers():
    """Figure 2: a master Linux disk shared by multiple dynamic instances."""
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(sim)
    server_fs.create("rh72-master", 32768 * 64)

    durations = []

    def reader(sim, durations=durations):
        start = sim.now
        yield from proxy.read("rh72-master", 0, 32768 * 64)
        durations.append(sim.now - start)

    run(sim, reader(sim))   # first user: cold
    run(sim, reader(sim))   # second user: proxy-warm
    assert durations[1] < durations[0] / 10


def test_proxy_prefetch_warms_ahead():
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(sim,
                                                               prefetch=16)
    server_fs.create("image", 32768 * 64)
    run(sim, proxy.read("image", 0, 32768 * 4))
    assert proxy.prefetch_issued > 0
    sim.run()  # let background prefetch finish
    # The next 16 blocks are already resident.
    assert proxy.cache.contains((proxy.name, "image"), 5)


def test_proxy_prefetch_disabled_by_default_zero():
    sim = Simulation()
    _net, _eng, server_fs, _server, _mount, proxy = wan_fixture(sim,
                                                                prefetch=0)
    server_fs.create("image", 32768 * 64)
    run(sim, proxy.read("image", 0, 32768 * 4))
    assert proxy.prefetch_issued == 0


def test_proxy_write_buffering_and_sync():
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(sim)
    server_fs.create("results", 0)

    def writer(sim):
        start = sim.now
        yield from proxy.write("results", 0, 32768 * 16)
        return sim.now - start

    elapsed = run(sim, writer(sim))
    assert elapsed < 1e-2                    # absorbed locally
    assert proxy.buffered_bytes == 32768 * 16
    assert server_fs.size("results") == 0    # not yet flushed

    def syncer(sim):
        flushed = yield from proxy.sync()
        return flushed

    flushed = run(sim, syncer(sim))
    assert flushed == 32768 * 16
    assert server_fs.size("results") == 32768 * 16
    assert proxy.buffered_bytes == 0


def test_proxy_size_accounts_for_buffered_writes():
    sim = Simulation()
    _net, _eng, server_fs, _server, _mount, proxy = wan_fixture(sim)
    server_fs.create("f", 100)
    run(sim, proxy.write("f", 0, 32768 * 2))
    assert proxy.size("f") == 32768 * 2


def test_proxy_zero_cache_always_forwards():
    sim = Simulation()
    _net, _eng, server_fs, server, _mount, proxy = wan_fixture(
        sim, proxy_cache=0)
    server_fs.create("image", 32768 * 4)
    run(sim, proxy.read("image", 0, 32768 * 4))
    first = server.rpc_count
    run(sim, proxy.read("image", 0, 32768 * 4))
    assert server.rpc_count == 2 * first


# ---------------------------------------------------------------------------
# FileStager (GridFTP-style baseline)
# ---------------------------------------------------------------------------

def stager_fixture(sim, wan_bandwidth=2.5e6):
    net = Network.two_site_wan(sim, "uf", ["dst"], "nw", ["src"],
                               wan_bandwidth=wan_bandwidth)
    engine = FlowEngine(sim, net)
    src_fs = LocalFileSystem(sim, Disk(sim, seek_time=0.0,
                                       transfer_rate=100e6),
                             cache_bytes=0)
    dst_fs = LocalFileSystem(sim, Disk(sim, seek_time=0.0,
                                       transfer_rate=100e6),
                             cache_bytes=0)
    stager = FileStager(sim, engine, handshake_time=0.0)
    return net, src_fs, dst_fs, stager


def test_stager_moves_whole_file():
    sim = Simulation()
    _net, src_fs, dst_fs, stager = stager_fixture(sim)
    src_fs.create("image", 5 * 1024 * 1024)

    def mover(sim):
        total = yield from stager.stage(src_fs, "src", "image",
                                        dst_fs, "dst")
        return total

    total = run(sim, mover(sim))
    assert total >= 5 * 1024 * 1024
    assert dst_fs.size("image") >= 5 * 1024 * 1024


def test_stager_throughput_set_by_bottleneck():
    sim = Simulation()
    _net, src_fs, dst_fs, stager = stager_fixture(sim, wan_bandwidth=1e6)
    size = 10 * 1024 * 1024
    src_fs.create("image", size)

    def mover(sim):
        start = sim.now
        yield from stager.stage(src_fs, "src", "image", dst_fs, "dst")
        return sim.now - start

    elapsed = run(sim, mover(sim))
    # Pipelined: close to size / bottleneck, far below 3x (store-and-forward).
    assert elapsed >= size / 1e6
    assert elapsed < 1.5 * size / 1e6


def test_stager_zero_byte_file():
    sim = Simulation()
    _net, src_fs, dst_fs, stager = stager_fixture(sim)
    src_fs.create("empty", 0)

    def mover(sim):
        total = yield from stager.stage(src_fs, "src", "empty",
                                        dst_fs, "dst")
        return total

    assert run(sim, mover(sim)) == 0
    assert dst_fs.exists("empty")


def test_stager_renames_destination():
    sim = Simulation()
    _net, src_fs, dst_fs, stager = stager_fixture(sim)
    src_fs.create("a", 1024 * 1024)

    def mover(sim):
        yield from stager.stage(src_fs, "src", "a", dst_fs, "dst",
                                dst_name="b")

    run(sim, mover(sim))
    assert dst_fs.exists("b")
    assert not dst_fs.exists("a")
