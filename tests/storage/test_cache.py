"""Unit and property tests for the LRU block cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import BlockCache, StorageError


def test_empty_cache_misses():
    cache = BlockCache(10 * 65536)
    assert not cache.lookup("f", 0)
    assert cache.misses == 1 and cache.hits == 0


def test_insert_then_hit():
    cache = BlockCache(10 * 65536)
    cache.insert("f", 3)
    assert cache.lookup("f", 3)
    assert cache.hits == 1


def test_capacity_eviction_is_lru():
    cache = BlockCache(2 * 65536)
    cache.insert("f", 0)
    cache.insert("f", 1)
    cache.lookup("f", 0)        # make block 0 most recent
    evicted = cache.insert("f", 2)
    assert evicted == ("f", 1)  # block 1 was least recently used
    assert cache.contains("f", 0)
    assert not cache.contains("f", 1)


def test_zero_capacity_disables_caching():
    cache = BlockCache(0)
    assert cache.insert("f", 0) is None
    assert not cache.lookup("f", 0)


def test_reinsert_does_not_evict():
    cache = BlockCache(2 * 65536)
    cache.insert("f", 0)
    cache.insert("f", 1)
    evicted = cache.insert("f", 0)  # already resident
    assert evicted is None
    assert cache.size_blocks == 2


def test_invalidate_file_drops_only_that_file():
    cache = BlockCache(10 * 65536)
    cache.insert("a", 0)
    cache.insert("a", 1)
    cache.insert("b", 0)
    assert cache.invalidate_file("a") == 2
    assert not cache.contains("a", 0)
    assert cache.contains("b", 0)


def test_contains_does_not_touch_counters():
    cache = BlockCache(10 * 65536)
    cache.insert("f", 0)
    cache.contains("f", 0)
    cache.contains("f", 99)
    assert cache.hits == 0 and cache.misses == 0


def test_hit_ratio():
    cache = BlockCache(10 * 65536)
    cache.insert("f", 0)
    cache.lookup("f", 0)
    cache.lookup("f", 1)
    assert cache.hit_ratio == pytest.approx(0.5)


def test_clear_preserves_counters():
    cache = BlockCache(10 * 65536)
    cache.insert("f", 0)
    cache.lookup("f", 0)
    cache.clear()
    assert cache.size_blocks == 0
    assert cache.hits == 1


def test_invalid_parameters():
    with pytest.raises(StorageError):
        BlockCache(-1)
    with pytest.raises(StorageError):
        BlockCache(100, block_size=0)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["insert", "lookup"]),
                              st.integers(min_value=0, max_value=20)),
                    max_size=100),
       capacity_blocks=st.integers(min_value=1, max_value=8))
def test_property_size_never_exceeds_capacity(ops, capacity_blocks):
    cache = BlockCache(capacity_blocks * 64, block_size=64)
    for op, block in ops:
        if op == "insert":
            cache.insert("f", block)
        else:
            cache.lookup("f", block)
        assert cache.size_blocks <= capacity_blocks


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=100),
                       min_size=1, max_size=50))
def test_property_recently_inserted_block_is_resident(blocks):
    cache = BlockCache(4 * 64, block_size=64)
    for block in blocks:
        cache.insert("f", block)
        assert cache.contains("f", block)
