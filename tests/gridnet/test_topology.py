"""Unit tests for network topology and routing."""

import pytest

from repro.gridnet import Network
from repro.simulation import Simulation, SimulationError


def build_triangle(sim):
    net = Network(sim)
    for host in ("a", "b", "c"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.010, bandwidth=1e6)
    net.add_link("b", "c", latency=0.010, bandwidth=1e6)
    net.add_link("a", "c", latency=0.050, bandwidth=10e6)
    return net


def test_add_duplicate_host_rejected():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(SimulationError):
        net.add_host("a")


def test_link_requires_known_nodes():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(SimulationError):
        net.add_link("a", "ghost", latency=0.01, bandwidth=1e6)


def test_route_prefers_lowest_latency():
    sim = Simulation()
    net = build_triangle(sim)
    # a->c direct is 50ms; via b it is 20ms.
    assert net.route("a", "c") == ["a", "b", "c"]
    assert net.latency("a", "c") == pytest.approx(0.020)


def test_rtt_is_twice_latency():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.rtt("a", "b") == pytest.approx(0.020)


def test_bottleneck_bandwidth():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.bottleneck_bandwidth("a", "c") == pytest.approx(1e6)


def test_route_to_self_is_trivial():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.route("a", "a") == ["a"]
    assert net.latency("a", "a") == 0.0
    assert net.bottleneck_bandwidth("a", "a") == float("inf")


def test_no_route_raises():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    net.add_host("island")
    with pytest.raises(SimulationError):
        net.route("a", "island")


def test_route_cache_invalidated_by_new_link():
    sim = Simulation()
    net = Network(sim)
    for host in ("a", "b", "c"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.01, bandwidth=1e6)
    net.add_link("b", "c", latency=0.01, bandwidth=1e6)
    assert net.route("a", "c") == ["a", "b", "c"]
    net.add_link("a", "c", latency=0.001, bandwidth=1e6)
    assert net.route("a", "c") == ["a", "c"]


def test_single_lan_builder():
    sim = Simulation()
    net = Network.single_lan(sim, ["h1", "h2", "h3"])
    assert sorted(net.hosts) == ["h1", "h2", "h3"]
    # Host-switch-host: two LAN hops.
    assert net.rtt("h1", "h2") == pytest.approx(4 * 5e-5)
    assert net.bottleneck_bandwidth("h1", "h2") == pytest.approx(12.5e6)


def test_two_site_wan_builder():
    sim = Simulation()
    net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"])
    assert net.has_host("compute") and net.has_host("image")
    # LAN + WAN + LAN latency, dominated by the 15 ms WAN hop.
    assert net.latency("compute", "image") == pytest.approx(0.015 + 2 * 5e-5)
    assert net.bottleneck_bandwidth("compute", "image") == pytest.approx(2.5e6)
    assert net.host_attributes("compute")["site"] == "uf"


def test_link_between():
    sim = Simulation()
    net = build_triangle(sim)
    link = net.link_between("a", "b")
    assert link is not None and link.latency == pytest.approx(0.010)
    assert net.link_between("b", "a") is link


# -- site-level lookahead queries (the sharded engine's safety margin) --------


def build_three_sites(sim):
    """Three LANs star-joined over a backbone at distinct WAN latencies."""
    net = Network(sim)
    net.add_router("backbone")
    for site, wan in (("uf", 0.010), ("nw", 0.020), ("anl", 0.040)):
        switch = site + "-sw"
        net.add_router(switch)
        net.add_link(switch, "backbone", latency=wan, bandwidth=2.5e6)
        for index in range(2):
            host = "%s-h%d" % (site, index)
            net.add_host(host, site=site)
            net.add_link(host, switch, latency=0.001 * (index + 1),
                         bandwidth=12.5e6)
    return net


def test_sites_and_hosts_in_are_sorted():
    net = build_three_sites(Simulation())
    assert net.sites() == ["anl", "nw", "uf"]
    assert net.hosts_in("uf") == ["uf-h0", "uf-h1"]
    assert net.hosts_in("ghost") == []


def test_min_latency_is_min_over_host_pairs():
    net = build_three_sites(Simulation())
    # Cheapest uf<->nw pair is h0<->h0: 0.001 + 0.010 + 0.020 + 0.001.
    expected = min(net.latency(a, b)
                   for a in net.hosts_in("uf") for b in net.hosts_in("nw"))
    assert net.min_latency("uf", "nw") == expected
    assert net.min_latency("uf", "nw") == pytest.approx(0.032)
    # And it lower-bounds every per-path latency a flow would ride.
    for a in net.hosts_in("uf"):
        for b in net.hosts_in("nw"):
            assert net.min_latency("uf", "nw") <= net.latency(a, b)


def test_min_latency_is_symmetric():
    net = build_three_sites(Simulation())
    for a in ("uf", "nw", "anl"):
        for b in ("uf", "nw", "anl"):
            if a != b:
                assert net.min_latency(a, b) == net.min_latency(b, a)


def test_min_latency_rejects_self_and_unknown_sites():
    net = build_three_sites(Simulation())
    with pytest.raises(SimulationError):
        net.min_latency("uf", "uf")
    with pytest.raises(SimulationError):
        net.min_latency("uf", "ghost")


def test_min_latency_disconnected_sites_is_infinite():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a", site="left")
    net.add_host("b", site="right")  # no link between them
    assert net.min_latency("left", "right") == float("inf")


def test_site_matrix_cache_invalidated_by_topology_change():
    net = build_three_sites(Simulation())
    before = net.min_latency("uf", "anl")
    assert before == pytest.approx(0.052)
    # A shortcut link between the two switches must bust the cache.
    net.add_link("uf-sw", "anl-sw", latency=0.005, bandwidth=2.5e6)
    assert net.min_latency("uf", "anl") == pytest.approx(0.007)
    assert net.min_latency("uf", "anl") < before


def test_site_lookaheads_returns_full_symmetric_matrix():
    net = build_three_sites(Simulation())
    matrix = net.site_lookaheads()
    assert set(matrix) == {(a, b)
                           for a in ("anl", "nw", "uf")
                           for b in ("anl", "nw", "uf") if a != b}
    for (a, b), value in matrix.items():
        assert value == net.min_latency(a, b)
    # The copy is detached: mutating it must not poison the cache.
    matrix[("uf", "nw")] = 0.0
    assert net.min_latency("uf", "nw") == pytest.approx(0.032)


# -- partition-level lookaheads (host and custom shard models) ----------------


def test_host_lookaheads_cover_every_host_pair():
    net = build_three_sites(Simulation())
    matrix = net.host_lookaheads()
    hosts = sorted(net.hosts)
    assert set(matrix) == {(a, b) for a in hosts for b in hosts if a != b}
    for (a, b), value in matrix.items():
        assert value == net.latency(a, b)  # singleton groups: exact


def test_host_lookaheads_tighter_than_site_for_lan_pairs():
    """Same-site host pairs get LAN latencies — boundaries the site
    model cannot even express (intra-site is never a site boundary)."""
    net = build_three_sites(Simulation())
    matrix = net.host_lookaheads()
    assert matrix[("uf-h0", "uf-h1")] == pytest.approx(0.003)
    # Cross-site entries can never undercut the site matrix.
    for (a, b), value in matrix.items():
        site_a = net.site_of(a)
        site_b = net.site_of(b)
        if site_a != site_b:
            assert value >= net.min_latency(site_a, site_b)


def test_partition_lookaheads_custom_grouping():
    net = build_three_sites(Simulation())
    # Pair up uf+nw against anl; leave anl-h1 out of the partition.
    partition = {"uf-h0": "west", "uf-h1": "west", "nw-h0": "west",
                 "nw-h1": "west", "anl-h0": "east"}
    matrix = net.partition_lookaheads(partition)
    assert set(matrix) == {("east", "west"), ("west", "east")}
    expected = min(net.latency(a, "anl-h0")
                   for a in ("uf-h0", "uf-h1", "nw-h0", "nw-h1"))
    assert matrix[("west", "east")] == expected
    assert matrix[("east", "west")] == expected


def test_partition_lookaheads_site_partition_matches_site_matrix():
    net = build_three_sites(Simulation())
    partition = {name: net.site_of(name) for name in net.hosts}
    assert net.partition_lookaheads(partition) == net.site_lookaheads()


def test_partition_lookaheads_rejects_unknown_host():
    net = build_three_sites(Simulation())
    with pytest.raises(SimulationError):
        net.partition_lookaheads({"ghost": "g"})


def test_partition_lookaheads_disconnected_groups_are_infinite():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a", site="left")
    net.add_host("b", site="right")  # no link
    matrix = net.partition_lookaheads({"a": "a", "b": "b"})
    assert matrix[("a", "b")] == float("inf")


def test_site_of_reports_hosts_and_none_for_routers():
    net = build_three_sites(Simulation())
    assert net.site_of("uf-h0") == "uf"
    assert net.site_of("backbone") is None
    assert net.site_of("ghost") is None
