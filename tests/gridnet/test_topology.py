"""Unit tests for network topology and routing."""

import pytest

from repro.gridnet import Network
from repro.simulation import Simulation, SimulationError


def build_triangle(sim):
    net = Network(sim)
    for host in ("a", "b", "c"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.010, bandwidth=1e6)
    net.add_link("b", "c", latency=0.010, bandwidth=1e6)
    net.add_link("a", "c", latency=0.050, bandwidth=10e6)
    return net


def test_add_duplicate_host_rejected():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(SimulationError):
        net.add_host("a")


def test_link_requires_known_nodes():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(SimulationError):
        net.add_link("a", "ghost", latency=0.01, bandwidth=1e6)


def test_route_prefers_lowest_latency():
    sim = Simulation()
    net = build_triangle(sim)
    # a->c direct is 50ms; via b it is 20ms.
    assert net.route("a", "c") == ["a", "b", "c"]
    assert net.latency("a", "c") == pytest.approx(0.020)


def test_rtt_is_twice_latency():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.rtt("a", "b") == pytest.approx(0.020)


def test_bottleneck_bandwidth():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.bottleneck_bandwidth("a", "c") == pytest.approx(1e6)


def test_route_to_self_is_trivial():
    sim = Simulation()
    net = build_triangle(sim)
    assert net.route("a", "a") == ["a"]
    assert net.latency("a", "a") == 0.0
    assert net.bottleneck_bandwidth("a", "a") == float("inf")


def test_no_route_raises():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    net.add_host("island")
    with pytest.raises(SimulationError):
        net.route("a", "island")


def test_route_cache_invalidated_by_new_link():
    sim = Simulation()
    net = Network(sim)
    for host in ("a", "b", "c"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.01, bandwidth=1e6)
    net.add_link("b", "c", latency=0.01, bandwidth=1e6)
    assert net.route("a", "c") == ["a", "b", "c"]
    net.add_link("a", "c", latency=0.001, bandwidth=1e6)
    assert net.route("a", "c") == ["a", "c"]


def test_single_lan_builder():
    sim = Simulation()
    net = Network.single_lan(sim, ["h1", "h2", "h3"])
    assert sorted(net.hosts) == ["h1", "h2", "h3"]
    # Host-switch-host: two LAN hops.
    assert net.rtt("h1", "h2") == pytest.approx(4 * 5e-5)
    assert net.bottleneck_bandwidth("h1", "h2") == pytest.approx(12.5e6)


def test_two_site_wan_builder():
    sim = Simulation()
    net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"])
    assert net.has_host("compute") and net.has_host("image")
    # LAN + WAN + LAN latency, dominated by the 15 ms WAN hop.
    assert net.latency("compute", "image") == pytest.approx(0.015 + 2 * 5e-5)
    assert net.bottleneck_bandwidth("compute", "image") == pytest.approx(2.5e6)
    assert net.host_attributes("compute")["site"] == "uf"


def test_link_between():
    sim = Simulation()
    net = build_triangle(sim)
    link = net.link_between("a", "b")
    assert link is not None and link.latency == pytest.approx(0.010)
    assert net.link_between("b", "a") is link
