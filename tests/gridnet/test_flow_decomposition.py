"""Decomposed max-min filling must be byte-identical to the monolith.

The decomposed progressive filling (:class:`FlowPartition` +
``FlowEngine._refill_decomposed``) splits the capacity table across
per-group fill shards that coordinate through bottleneck summaries.
Its whole contract is *exact* equality with the monolithic fill — the
same rates dict, in the same insertion order, bit for bit — under
arbitrary topologies, flow sets, caps, and join/leave churn, with the
allocation memo and the exclusive-links fast path still applying.
These tests drive monolithic, site-partitioned and host-partitioned
engines through identical scenarios Hypothesis invents and compare the
raw allocation dicts with ``==`` on floats, never ``approx``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gridnet import FlowEngine, FlowPartition, Network
from repro.simulation import Simulation, SimulationError


def multi_site(sim, lan_bws, wan_bws):
    """len(lan_bws) sites chained over WAN links.

    ``lan_bws[s][h]`` is host h's access bandwidth at site s;
    ``wan_bws[s]`` joins site s's router to site s+1's.
    """
    net = Network(sim)
    for s, hosts in enumerate(lan_bws):
        net.add_router("r%d" % s)
        for h, bw in enumerate(hosts):
            name = "s%dh%d" % (s, h)
            net.add_host(name, site="site%d" % s)
            net.add_link(name, "r%d" % s, latency=0.001, bandwidth=bw)
    for s, bw in enumerate(wan_bws):
        net.add_link("r%d" % s, "r%d" % (s + 1), latency=0.010,
                     bandwidth=bw)
    return net


def engine_trio(build_net):
    """(monolithic, by-site, by-host) engines over identical topologies."""
    engines = []
    for style in ("mono", "site", "host"):
        sim = Simulation()
        net = build_net(sim)
        if style == "mono":
            partition = None
        elif style == "site":
            partition = FlowPartition.by_site(net)
        else:
            partition = FlowPartition.by_host(net)
        engines.append(FlowEngine(sim, net, partition=partition))
    return engines


def rates_by_index(engine, flows):
    """The allocation as (flow index, rate) pairs in dict order.

    Flow objects differ between engines, so identity is the creation
    index; *order* of the pairs is the rates dict's insertion order,
    which the decomposition contract also pins.
    """
    index = {flow: i for i, flow in enumerate(flows)}
    return [(index[flow], rate)
            for flow, rate in engine._allocate().items()]


@st.composite
def grid_scenarios(draw):
    """A topology plus a flow list over it (indices into host names)."""
    lan_bws = draw(st.lists(
        st.lists(st.floats(min_value=1e5, max_value=1e7),
                 min_size=1, max_size=3),
        min_size=2, max_size=3))
    wan_bws = draw(st.lists(st.floats(min_value=1e5, max_value=5e6),
                            min_size=len(lan_bws) - 1,
                            max_size=len(lan_bws) - 1))
    hosts = ["s%dh%d" % (s, h)
             for s, site in enumerate(lan_bws) for h in range(len(site))]
    pairs = st.tuples(st.integers(0, len(hosts) - 1),
                      st.integers(0, len(hosts) - 1))
    caps = st.one_of(st.none(),
                     st.floats(min_value=5e4, max_value=2e6))
    flow_specs = draw(st.lists(st.tuples(pairs, caps),
                               min_size=1, max_size=8))
    return lan_bws, wan_bws, hosts, flow_specs


def start_flows(engine, hosts, flow_specs):
    flows = []
    for (src, dst), cap in flow_specs:
        if src == dst:
            continue  # loopback never enters the filling
        flows.append(engine.start_flow(hosts[src], hosts[dst], 1e9,
                                       bandwidth_cap=cap))
    return flows


@settings(max_examples=50, deadline=None)
@given(scenario=grid_scenarios())
def test_decomposed_allocation_is_bitwise_identical(scenario):
    """Arbitrary topology + flows + caps: all three fills agree exactly."""
    lan_bws, wan_bws, hosts, flow_specs = scenario
    engines = engine_trio(lambda sim: multi_site(sim, lan_bws, wan_bws))
    allocations = []
    for engine in engines:
        flows = start_flows(engine, hosts, flow_specs)
        allocations.append(rates_by_index(engine, flows))
        for flow in flows:
            flow.remaining = 0.0  # don't run the gigantic transfers out
    assert allocations[0] == allocations[1]  # exact, including order
    assert allocations[0] == allocations[2]


@settings(max_examples=30, deadline=None)
@given(scenario=grid_scenarios(), cut=st.integers(0, 7))
def test_churn_keeps_fills_identical(scenario, cut):
    """Joins in two waves, then natural finishes: every checkpoint and
    every completion time matches the monolithic engine exactly."""
    lan_bws, wan_bws, hosts, flow_specs = scenario
    first, second = flow_specs[:cut], flow_specs[cut:]
    checkpoints = []
    finish_times = []
    for engine in engine_trio(lambda sim: multi_site(sim, lan_bws,
                                                     wan_bws)):
        # Small transfers so sim.run() retires them through the real
        # leave path (the churn under test), re-filling as they go.
        flows = []
        for (src, dst), cap in first:
            if src != dst:
                flows.append(engine.start_flow(hosts[src], hosts[dst],
                                               2e5, bandwidth_cap=cap))
        snap_a = rates_by_index(engine, flows)
        for (src, dst), cap in second:
            if src != dst:
                flows.append(engine.start_flow(hosts[src], hosts[dst],
                                               2e5, bandwidth_cap=cap))
        snap_b = rates_by_index(engine, flows)
        engine.sim.run()
        checkpoints.append((snap_a, snap_b))
        finish_times.append([flow.finished_at for flow in flows])
    assert checkpoints[0] == checkpoints[1] == checkpoints[2]
    assert finish_times[0] == finish_times[1] == finish_times[2]


def two_site_disjoint(sim):
    """Two sites whose traffic never crosses the WAN: fast-path bait."""
    return multi_site(sim, [[2e6, 2e6], [3e6, 3e6]], [1e6])


def test_exclusive_links_fast_path_survives_decomposition():
    """A disjoint join/leave patches the memo without a decomposed
    fill, exactly as the monolithic engine skips its refill."""
    sim = Simulation()
    net = two_site_disjoint(sim)
    engine = FlowEngine(sim, net, partition=FlowPartition.by_site(net))
    f1 = engine.start_flow("s0h0", "s0h1", 4e6)
    engine.link_usage()  # warm the memo
    fills = engine.full_allocations
    rounds = engine.fill_rounds
    f2 = engine.start_flow("s1h0", "s1h1", 0.3e6)  # exclusive links
    assert engine.current_rate(f1) == pytest.approx(2e6)
    assert engine.current_rate(f2) == pytest.approx(3e6)
    assert engine.full_allocations == fills
    assert engine.fill_rounds == rounds  # the patch ran zero rounds
    sim.run(until=0.2)  # f2 finishes alone; the memo survives minus it
    assert f2.finished_at == pytest.approx(0.1)
    assert engine.full_allocations == fills
    f1.remaining = 0.0


def test_memo_still_one_fill_per_generation():
    sim = Simulation()
    net = multi_site(sim, [[1e6, 1e6], [1e6]], [1e6])
    engine = FlowEngine(sim, net, partition=FlowPartition.by_site(net))
    f1 = engine.start_flow("s0h0", "s1h0", 1e9)
    f2 = engine.start_flow("s0h1", "s1h0", 1e9)
    fills = engine.full_allocations
    for _ in range(5):
        engine.current_rate(f1)
        engine.link_usage()
        engine.available_bandwidth("s0h0", "s1h0")
    assert engine.full_allocations == fills  # all reads hit the memo
    engine.start_flow("s1h0", "s0h0", 1e9)  # shares links: must refill
    engine.link_usage()
    assert engine.full_allocations == fills + 1
    for flow in engine.active_flows:
        flow.remaining = 0.0


def test_decomposition_instrumentation_counts_rounds_and_summaries():
    sim = Simulation()
    net = multi_site(sim, [[1e6], [1e6]], [5e5])
    engine = FlowEngine(sim, net, partition=FlowPartition.by_site(net))
    assert engine.fill_rounds == 0 and engine.summaries_merged == 0
    flow = engine.start_flow("s0h0", "s1h0", 1e9)
    engine.current_rate(flow)
    # The path touches three shards (two LANs + WAN); every round
    # merges one summary per live shard.
    assert engine.fill_rounds >= 1
    assert engine.summaries_merged >= engine.fill_rounds
    flow.remaining = 0.0
    mono = FlowEngine(Simulation(), multi_site(Simulation(), [[1e6]], []))
    assert mono.fill_rounds == 0 and mono.summaries_merged == 0


def test_decompose_switch_keeps_memo_valid():
    """Toggling the protocol mid-run is execution strategy, not state."""
    sim = Simulation()
    net = multi_site(sim, [[1e6, 1e6], [1e6]], [5e5])
    engine = FlowEngine(sim, net)
    f1 = engine.start_flow("s0h0", "s1h0", 1e9)
    before = engine.current_rate(f1)
    fills = engine.full_allocations
    engine.decompose(FlowPartition.by_host(net))
    assert engine.current_rate(f1) == before  # memo reused, no refill
    assert engine.full_allocations == fills
    engine.start_flow("s0h1", "s1h0", 1e9)  # next generation fills
    rates = engine._allocate()              # decomposed this time
    assert engine.full_allocations == fills + 1
    assert engine.fill_rounds >= 1
    for flow in engine.active_flows:
        flow.remaining = 0.0
    assert sum(rates.values()) <= 5e5 * (1 + 1e-9)


# -- FlowPartition.group_of ---------------------------------------------------


def test_partition_assigns_links_to_owners():
    sim = Simulation()
    net = multi_site(sim, [[1e6, 1e6], [1e6]], [5e5])
    by_site = FlowPartition.by_site(net)
    by_host = FlowPartition.by_host(net)
    lan = net.link_between("s0h0", "r0")
    wan = net.link_between("r0", "r1")
    # Site model: a LAN link (host + its router) belongs to the site;
    # the router-router backbone link is the WAN coordinator's.
    assert by_site.group_of(lan) == "site0"
    assert by_site.group_of(wan) == FlowPartition.WAN
    # Host model: a router endpoint adopts the host's group, so access
    # links stay owned by their host; everything interior is WAN.
    assert by_host.group_of(lan) == "s0h0"
    assert by_host.group_of(wan) == FlowPartition.WAN
    # Memoized: the same Link object answers from the cache.
    assert by_site.group_of(lan) == "site0"


def test_partition_cross_group_host_link_is_wan():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a", site="left")
    net.add_host("b", site="right")
    net.add_link("a", "b", latency=0.01, bandwidth=1e6)
    direct = net.link_between("a", "b")
    assert FlowPartition.by_site(net).group_of(direct) == FlowPartition.WAN
    assert FlowPartition.by_host(net).group_of(direct) == FlowPartition.WAN
    same = Network(sim=Simulation())
    same.add_host("c", site="left")
    same.add_host("d", site="left")
    same.add_link("c", "d", latency=0.01, bandwidth=1e6)
    link = same.link_between("c", "d")
    assert FlowPartition.by_site(same).group_of(link) == "left"


def test_grid_rejects_unknown_flow_partition_model():
    from repro.core.grid import VirtualGrid

    with pytest.raises(SimulationError):
        VirtualGrid(sim=Simulation(), flow_partition="galaxy")
