"""Property-based tests of max-min fairness in the flow engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gridnet import FlowEngine, Network
from repro.simulation import Simulation


def star_network(sim, n_hosts, access_bws):
    """Hosts around one hub; host i's access link has bandwidth bws[i]."""
    net = Network(sim)
    net.add_router("hub")
    for i, bw in enumerate(access_bws):
        net.add_host("h%d" % i)
        net.add_link("h%d" % i, "hub", latency=0.0, bandwidth=bw)
    return net


@settings(max_examples=40, deadline=None)
@given(bws=st.lists(st.floats(min_value=1e5, max_value=1e7),
                    min_size=2, max_size=6))
def test_allocation_never_exceeds_any_link(bws):
    """Sum of rates through each link stays within its capacity."""
    sim = Simulation()
    net = star_network(sim, len(bws), bws)
    engine = FlowEngine(sim, net)
    # All hosts send to host 0 concurrently.
    flows = [engine.start_flow("h%d" % i, "h0", 1e9)
             for i in range(1, len(bws))]
    rates = {flow: engine.current_rate(flow) for flow in flows}
    # Host 0's access link carries every flow.
    assert sum(rates.values()) <= bws[0] * (1 + 1e-9)
    # Each sender is limited by its own access link.
    for i, flow in enumerate(flows, start=1):
        assert rates[flow] <= bws[i] * (1 + 1e-9)
    # Cancel cleanly (avoid running the gigantic transfers out).
    for flow in flows:
        flow.remaining = 0.0


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=6))
def test_equal_flows_get_equal_rates(n):
    sim = Simulation()
    net = star_network(sim, n + 1, [1e6] * (n + 1))
    engine = FlowEngine(sim, net)
    flows = [engine.start_flow("h%d" % i, "h0", 1e8)
             for i in range(1, n + 1)]
    rates = [engine.current_rate(flow) for flow in flows]
    assert max(rates) - min(rates) < 1e-6
    assert sum(rates) == pytest.approx(1e6, rel=1e-9)
    for flow in flows:
        flow.remaining = 0.0


@settings(max_examples=30, deadline=None)
@given(fast_bw=st.floats(min_value=2e6, max_value=1e7))
def test_max_min_property_bottlenecked_flow_cannot_gain(fast_bw):
    """The flow pinned by its own slow access link does not reduce what
    faster flows get — the defining max-min property."""
    sim = Simulation()
    net = star_network(sim, 3, [fast_bw + 1e6, 1e6, fast_bw])
    engine = FlowEngine(sim, net)
    slow = engine.start_flow("h1", "h0", 1e9)     # 1 MB/s access
    fast = engine.start_flow("h2", "h0", 1e9)
    slow_rate = engine.current_rate(slow)
    fast_rate = engine.current_rate(fast)
    assert slow_rate == pytest.approx(1e6, rel=1e-6)
    # Fast flow receives everything the shared link has left.
    assert fast_rate == pytest.approx(min(fast_bw, fast_bw + 1e6 - 1e6),
                                      rel=1e-6)
    slow.remaining = 0.0
    fast.remaining = 0.0


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1e5, max_value=2e6),
                      min_size=1, max_size=5))
def test_all_bytes_always_delivered(sizes):
    sim = Simulation()
    net = star_network(sim, len(sizes) + 1, [1e6] * (len(sizes) + 1))
    engine = FlowEngine(sim, net)
    flows = [engine.start_flow("h%d" % (i + 1), "h0", size)
             for i, size in enumerate(sizes)]
    sim.run()
    for flow, size in zip(flows, sizes):
        assert flow.remaining == 0.0
        assert flow.finished_at is not None
        # A flow can never beat its own access link.
        assert flow.finished_at >= size / 1e6 - 1e-6
