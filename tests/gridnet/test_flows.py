"""Unit and property tests for max-min fair flow scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gridnet import FlowEngine, Network
from repro.simulation import Simulation, SimulationError


def dumbbell(sim, bottleneck_bw=1e6):
    """Two hosts per side sharing one bottleneck link."""
    net = Network(sim)
    for host in ("a1", "a2", "b1", "b2"):
        net.add_host(host)
    net.add_router("ra")
    net.add_router("rb")
    for host in ("a1", "a2"):
        net.add_link(host, "ra", latency=0.0, bandwidth=100e6)
    for host in ("b1", "b2"):
        net.add_link(host, "rb", latency=0.0, bandwidth=100e6)
    net.add_link("ra", "rb", latency=0.0, bandwidth=bottleneck_bw)
    return net


def test_single_flow_gets_bottleneck_bandwidth():
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    flow = engine.start_flow("a1", "b1", 1e6)
    sim.run()
    assert flow.finished_at == pytest.approx(1.0)


def test_two_flows_share_bottleneck_equally():
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    f1 = engine.start_flow("a1", "b1", 1e6)
    f2 = engine.start_flow("a2", "b2", 1e6)
    sim.run()
    assert f1.finished_at == pytest.approx(2.0)
    assert f2.finished_at == pytest.approx(2.0)


def test_flow_departure_frees_bandwidth():
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    short = engine.start_flow("a1", "b1", 0.5e6)
    long = engine.start_flow("a2", "b2", 1.5e6)
    sim.run()
    # Shared until short finishes at t=1 (0.5MB each), then long alone.
    assert short.finished_at == pytest.approx(1.0)
    assert long.finished_at == pytest.approx(2.0)


def test_flow_on_disjoint_paths_independent():
    sim = Simulation()
    net = Network(sim)
    for host in ("a", "b", "c", "d"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.0, bandwidth=1e6)
    net.add_link("c", "d", latency=0.0, bandwidth=1e6)
    engine = FlowEngine(sim, net)
    f1 = engine.start_flow("a", "b", 1e6)
    f2 = engine.start_flow("c", "d", 1e6)
    sim.run()
    assert f1.finished_at == pytest.approx(1.0)
    assert f2.finished_at == pytest.approx(1.0)


def test_max_min_unbalanced_paths():
    # Flow X crosses a tight link alone; flow Y shares a wide link with X.
    sim = Simulation()
    net = Network(sim)
    for host in ("a", "b", "c"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.0, bandwidth=1e6)   # tight
    net.add_link("b", "c", latency=0.0, bandwidth=10e6)  # wide
    engine = FlowEngine(sim, net)
    tight = engine.start_flow("a", "c", 1e6)   # crosses both
    wide = engine.start_flow("b", "c", 9e6)    # wide link only
    # Max-min: tight flow pinned at 1e6 by a-b; wide flow gets 9e6.
    assert engine.current_rate(tight) == pytest.approx(1e6)
    assert engine.current_rate(wide) == pytest.approx(9e6)
    sim.run()
    assert tight.finished_at == pytest.approx(1.0)
    assert wide.finished_at == pytest.approx(1.0)


def test_bandwidth_cap_respected():
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    flow = engine.start_flow("a1", "b1", 1e6, bandwidth_cap=0.25e6)
    assert engine.current_rate(flow) == pytest.approx(0.25e6)
    sim.run()
    assert flow.finished_at == pytest.approx(4.0)


def test_capped_flow_leaves_bandwidth_to_peer():
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    capped = engine.start_flow("a1", "b1", 1e6, bandwidth_cap=0.2e6)
    free = engine.start_flow("a2", "b2", 1.6e6)
    assert engine.current_rate(free) == pytest.approx(0.8e6)
    sim.run()
    assert free.finished_at == pytest.approx(2.0)
    assert capped.finished_at == pytest.approx(5.0)


def test_transfer_includes_setup_and_propagation():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.05, bandwidth=1e6)

    def mover(sim):
        yield from engine.transfer("a", "b", 1e6)
        return sim.now

    engine = FlowEngine(sim, net)
    proc = sim.spawn(mover(sim))
    # 1 RTT setup (0.1) + 1.0 transfer + 0.05 final propagation.
    assert sim.run_until_complete(proc) == pytest.approx(1.15)


def test_zero_byte_transfer_is_latency_only():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.05, bandwidth=1e6)
    engine = FlowEngine(sim, net)

    def mover(sim):
        yield from engine.transfer("a", "b", 0)
        return sim.now

    proc = sim.spawn(mover(sim))
    assert sim.run_until_complete(proc) == pytest.approx(0.15)


def test_loopback_flow_completes_immediately():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    engine = FlowEngine(sim, net)
    flow = engine.start_flow("a", "a", 1e9)
    sim.run()
    assert flow.finished_at == pytest.approx(0.0)


def test_flow_requires_registered_hosts():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    engine = FlowEngine(sim, net)
    with pytest.raises(SimulationError):
        engine.start_flow("a", "ghost", 100)


def test_negative_flow_size_rejected():
    sim = Simulation()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0, bandwidth=1e6)
    engine = FlowEngine(sim, net)
    with pytest.raises(SimulationError):
        engine.start_flow("a", "b", -5)


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1e4, max_value=5e6),
                      min_size=1, max_size=5))
def test_property_shared_bottleneck_conserves_capacity(sizes):
    """Total completion never beats the bottleneck's aggregate capacity."""
    sim = Simulation()
    net = dumbbell(sim, bottleneck_bw=1e6)
    engine = FlowEngine(sim, net)
    flows = [engine.start_flow("a1", "b1", size) for size in sizes]
    sim.run()
    makespan = max(f.finished_at for f in flows)
    assert makespan >= sum(sizes) / 1e6 - 1e-6
    # All bytes delivered.
    for flow in flows:
        assert flow.remaining == 0.0


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=1e4, max_value=1e6),
       st.floats(min_value=1e4, max_value=1e6))
def test_property_equal_flows_finish_together(x, y):
    sim = Simulation()
    net = dumbbell(sim)
    engine = FlowEngine(sim, net)
    f1 = engine.start_flow("a1", "b1", x)
    f2 = engine.start_flow("a2", "b2", x)
    sim.run()
    assert f1.finished_at == pytest.approx(f2.finished_at)
