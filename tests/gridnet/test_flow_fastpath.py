"""Allocation-memo regression tests and FlowEngine edge cases.

The memoized max-min allocation (one progressive filling per membership
generation, shared by every rate reader) and the exclusive-links
join/leave fast path must be invisible: identical rates and completion
times to a cold engine, with strictly fewer fillings.
"""

import pytest

from repro.gridnet import FlowEngine, Network
from repro.simulation import Simulation


def dumbbell(sim, bottleneck_bw=1e6):
    """Two hosts per side sharing one bottleneck link."""
    net = Network(sim)
    for host in ("a1", "a2", "b1", "b2"):
        net.add_host(host)
    net.add_router("ra")
    net.add_router("rb")
    for host in ("a1", "a2"):
        net.add_link(host, "ra", latency=0.0, bandwidth=100e6)
    for host in ("b1", "b2"):
        net.add_link(host, "rb", latency=0.0, bandwidth=100e6)
    net.add_link("ra", "rb", latency=0.0, bandwidth=bottleneck_bw)
    return net


def disjoint_pairs(sim):
    """Two host pairs with no shared links at all."""
    net = Network(sim)
    for host in ("a", "b", "c", "d"):
        net.add_host(host)
    net.add_link("a", "b", latency=0.0, bandwidth=2e6)
    net.add_link("c", "d", latency=0.0, bandwidth=3e6)
    return net


# ---------------------------------------------------------------------------
# One progressive filling per membership generation (the API-cost bug:
# link_usage() and available_bandwidth() used to refill on every call).
# ---------------------------------------------------------------------------

def test_repeated_reads_share_one_allocation():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim))
    f1 = engine.start_flow("a1", "b1", 1e6)
    f2 = engine.start_flow("a2", "b2", 1e6)
    fills = engine.full_allocations
    for _ in range(5):
        assert engine.current_rate(f1) == pytest.approx(0.5e6)
        assert engine.current_rate(f2) == pytest.approx(0.5e6)
        usage = engine.link_usage()
        assert max(usage.values()) == pytest.approx(1e6)
        assert engine.available_bandwidth("a1", "b1") == pytest.approx(0.0)
    assert engine.full_allocations == fills  # all 20 reads hit the memo


def test_membership_change_invalidates_memo():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim))
    engine.start_flow("a1", "b1", 1e6)
    engine.link_usage()
    fills = engine.full_allocations
    engine.start_flow("a2", "b2", 1e6)  # shares the bottleneck: must refill
    engine.link_usage()
    assert engine.full_allocations == fills + 1


def test_disjoint_join_and_leave_skip_refill():
    sim = Simulation()
    engine = FlowEngine(sim, disjoint_pairs(sim))
    f1 = engine.start_flow("a", "b", 4e6)
    engine.link_usage()  # warm the memo
    fills = engine.full_allocations
    f2 = engine.start_flow("c", "d", 0.3e6)  # exclusive links: patched in
    assert engine.current_rate(f1) == pytest.approx(2e6)
    assert engine.current_rate(f2) == pytest.approx(3e6)
    assert engine.full_allocations == fills
    sim.run(until=0.2)  # f2 finishes alone at t=0.1; f1 is still moving
    assert f2.finished_at == pytest.approx(0.1)
    assert engine.current_rate(f1) == pytest.approx(2e6)
    assert engine.full_allocations == fills


def test_fast_path_rates_match_cold_engine():
    """Patched-in allocations equal a from-scratch filling, exactly."""
    warm_sim = Simulation()
    warm = FlowEngine(warm_sim, disjoint_pairs(warm_sim))
    wf1 = warm.start_flow("a", "b", 4e6)
    warm.link_usage()  # ensure the second join takes the patch path
    wf2 = warm.start_flow("c", "d", 5e6, bandwidth_cap=2.5e6)

    cold_sim = Simulation()
    cold = FlowEngine(cold_sim, disjoint_pairs(cold_sim))
    cf1 = cold.start_flow("a", "b", 4e6)
    cf2 = cold.start_flow("c", "d", 5e6, bandwidth_cap=2.5e6)

    assert warm.current_rate(wf1) == cold.current_rate(cf1)
    assert warm.current_rate(wf2) == cold.current_rate(cf2)
    warm_sim.run()
    cold_sim.run()
    assert wf1.finished_at == cf1.finished_at
    assert wf2.finished_at == cf2.finished_at


# ---------------------------------------------------------------------------
# Edge cases, exercised against both the cold and the memoized paths
# ---------------------------------------------------------------------------

def test_zero_byte_flow_completes_instantly():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim))
    flow = engine.start_flow("a1", "b1", 0)
    assert flow.done.triggered
    assert flow.finished_at == sim.now
    assert engine.active_flows == []


def test_loopback_flow_has_empty_path_and_completes_instantly():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim))
    flow = engine.start_flow("a1", "a1", 1e9)
    assert flow.links == []
    assert flow.done.triggered
    assert flow.finished_at == sim.now
    assert engine.available_bandwidth("a1", "a1") == float("inf")


def test_bandwidth_cap_tighter_than_fair_share():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim, bottleneck_bw=1e6))
    capped = engine.start_flow("a1", "b1", 1e6, bandwidth_cap=0.25e6)
    other = engine.start_flow("a2", "b2", 1e6)
    # The capped flow pins at its cap; max-min hands the rest to the other.
    assert engine.current_rate(capped) == pytest.approx(0.25e6)
    assert engine.current_rate(other) == pytest.approx(0.75e6)
    sim.run()
    assert capped.finished_at == pytest.approx(4.0)


def test_bandwidth_cap_looser_than_fair_share_is_inert():
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim, bottleneck_bw=1e6))
    capped = engine.start_flow("a1", "b1", 1e6, bandwidth_cap=10e6)
    other = engine.start_flow("a2", "b2", 1e6)
    assert engine.current_rate(capped) == pytest.approx(0.5e6)
    assert engine.current_rate(other) == pytest.approx(0.5e6)


def test_cap_equal_to_path_bottleneck_on_fast_path():
    """cap == min link bandwidth: the tie must resolve like a refill."""
    warm_sim = Simulation()
    warm = FlowEngine(warm_sim, disjoint_pairs(warm_sim))
    warm.start_flow("a", "b", 1e6)
    warm.link_usage()
    wf = warm.start_flow("c", "d", 1e6, bandwidth_cap=3e6)  # cap == 3e6 link

    cold_sim = Simulation()
    cold = FlowEngine(cold_sim, disjoint_pairs(cold_sim))
    cold.start_flow("a", "b", 1e6)
    cf = cold.start_flow("c", "d", 1e6, bandwidth_cap=3e6)
    assert warm.current_rate(wf) == cold.current_rate(cf)


def test_join_and_leave_at_same_instant():
    """A flow finishing exactly when another starts: one consistent epoch."""
    sim = Simulation()
    engine = FlowEngine(sim, dumbbell(sim, bottleneck_bw=1e6))
    first = engine.start_flow("a1", "b1", 1e6)  # finishes at t=1.0

    late = {}

    def starter(sim):
        yield sim.timeout(1.0)
        late["flow"] = engine.start_flow("a2", "b2", 1e6)

    sim.spawn(starter(sim))
    sim.run()
    assert first.finished_at == pytest.approx(1.0)
    # The newcomer saw the full bottleneck from t=1.0 on.
    assert late["flow"].finished_at == pytest.approx(2.0)


def test_flow_count_tracks_joins_and_leaves():
    sim = Simulation()
    engine = FlowEngine(sim, disjoint_pairs(sim))
    f1 = engine.start_flow("a", "b", 2e6)
    f2 = engine.start_flow("c", "d", 3e6)
    assert len(engine.active_flows) == 2
    sim.run()
    assert engine.active_flows == []
    assert f1.finished_at == pytest.approx(1.0)
    assert f2.finished_at == pytest.approx(1.0)
