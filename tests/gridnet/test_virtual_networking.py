"""Unit tests for DHCP, tunneling and the self-optimizing overlay."""

import pytest

from repro.gridnet import (
    DhcpServer,
    EthernetTunnel,
    FlowEngine,
    Network,
    NoAddressAvailable,
    OverlayNetwork,
)
from repro.simulation import Simulation, SimulationError


# ---------------------------------------------------------------------------
# DHCP (Section 3.3, scenario 1)
# ---------------------------------------------------------------------------

def test_dhcp_grants_distinct_addresses():
    sim = Simulation()
    server = DhcpServer(sim, pool_size=4)

    def client(sim, name, out):
        lease = yield from server.acquire(name)
        out.append(lease)

    leases = []
    sim.spawn(client(sim, "vm1", leases))
    sim.spawn(client(sim, "vm2", leases))
    sim.run()
    assert len(leases) == 2
    assert leases[0].address != leases[1].address
    assert server.available == 2


def test_dhcp_handshake_takes_time():
    sim = Simulation()
    server = DhcpServer(sim, handshake_time=0.5)

    def client(sim):
        yield from server.acquire("vm")
        return sim.now

    proc = sim.spawn(client(sim))
    assert sim.run_until_complete(proc) == pytest.approx(0.5)


def test_dhcp_pool_exhaustion():
    sim = Simulation()
    server = DhcpServer(sim, pool_size=1)

    def client(sim, name):
        yield from server.acquire(name)

    sim.spawn(client(sim, "vm1"))
    sim.run()

    def second(sim):
        yield from server.acquire("vm2")

    sim.spawn(second(sim))
    with pytest.raises(NoAddressAvailable):
        sim.run()


def test_dhcp_release_recycles_address():
    sim = Simulation()
    server = DhcpServer(sim, pool_size=1)
    box = []

    def cycle(sim):
        lease = yield from server.acquire("vm1")
        server.release(lease)
        lease2 = yield from server.acquire("vm2")
        box.append((lease, lease2))

    sim.spawn(cycle(sim))
    sim.run()
    lease, lease2 = box[0]
    assert not lease.active
    assert lease2.active
    assert lease.address == lease2.address


def test_dhcp_double_release_is_error():
    sim = Simulation()
    server = DhcpServer(sim)
    box = []

    def client(sim):
        lease = yield from server.acquire("vm")
        box.append(lease)

    sim.spawn(client(sim))
    sim.run()
    server.release(box[0])
    with pytest.raises(SimulationError):
        server.release(box[0])


# ---------------------------------------------------------------------------
# Ethernet tunneling (Section 3.3, scenario 2)
# ---------------------------------------------------------------------------

def make_wan(sim):
    net = Network.two_site_wan(sim, "provider", ["vmhost"],
                               "home", ["gateway"],
                               wan_latency=0.02, wan_bandwidth=1e6)
    return net, FlowEngine(sim, net)


def test_tunnel_establish_assigns_home_address():
    sim = Simulation()
    net, engine = make_wan(sim)
    tunnel = EthernetTunnel(sim, net, engine, "vmhost", "gateway",
                            setup_time=1.0)

    def bring_up(sim):
        address = yield from tunnel.establish("vm1")
        return address

    proc = sim.spawn(bring_up(sim))
    address = sim.run_until_complete(proc)
    assert tunnel.established
    assert address == "home-net/vm1"
    # Setup + one WAN round trip.
    assert sim.now == pytest.approx(1.0 + net.rtt("vmhost", "gateway"))


def test_tunnel_transfer_requires_establishment():
    sim = Simulation()
    net, engine = make_wan(sim)
    tunnel = EthernetTunnel(sim, net, engine, "vmhost", "gateway")

    def mover(sim):
        yield from tunnel.transfer(1000)

    sim.spawn(mover(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_tunnel_charges_encapsulation_overhead():
    sim = Simulation()
    net, engine = make_wan(sim)
    tunnel = EthernetTunnel(sim, net, engine, "vmhost", "gateway",
                            encapsulation_overhead=0.10, setup_time=0.0)

    def mover(sim):
        yield from tunnel.establish("vm")
        start = sim.now
        yield from tunnel.transfer(1e6)
        return sim.now - start

    proc = sim.spawn(mover(sim))
    duration = sim.run_until_complete(proc)
    # 1.1 MB over a 1 MB/s bottleneck plus propagation.
    assert duration == pytest.approx(1.1 + net.latency("vmhost", "gateway"),
                                     rel=1e-3)
    assert tunnel.bytes_tunnelled == 1_000_000


def test_tunnel_effective_bandwidth_below_raw():
    sim = Simulation()
    net, engine = make_wan(sim)
    tunnel = EthernetTunnel(sim, net, engine, "vmhost", "gateway",
                            encapsulation_overhead=0.25)
    assert tunnel.effective_bandwidth() == pytest.approx(1e6 / 1.25)


def test_tunnel_rejects_unknown_endpoints():
    sim = Simulation()
    net, engine = make_wan(sim)
    with pytest.raises(SimulationError):
        EthernetTunnel(sim, net, engine, "vmhost", "nowhere")


# ---------------------------------------------------------------------------
# Overlay (Section 3.3, "natural extension")
# ---------------------------------------------------------------------------

def overlay_fixture(sim):
    net = Network(sim)
    for host in ("x", "y", "z"):
        net.add_host(host)
    net.add_link("x", "y", latency=0.010, bandwidth=1e6)
    net.add_link("y", "z", latency=0.010, bandwidth=1e6)
    net.add_link("x", "z", latency=0.012, bandwidth=1e6)
    overlay = OverlayNetwork(sim, net, per_hop_forwarding_cost=0.001)
    for host in ("x", "y", "z"):
        overlay.join(host)
    return net, overlay


def test_overlay_requires_measurement_before_routing():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    with pytest.raises(SimulationError):
        overlay.overlay_route("x", "z")


def test_overlay_uses_direct_path_when_best():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    proc = sim.spawn(overlay.measure())
    sim.run_until_complete(proc)
    assert overlay.overlay_route("x", "z") == ["x", "z"]
    assert overlay.improvement("x", "z") == pytest.approx(0.0)


def test_overlay_routes_around_policy_penalty():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    # Policy routing makes the direct x-z path terrible (e.g. 100 ms).
    overlay.set_underlay_penalty("x", "z", 0.100)
    proc = sim.spawn(overlay.measure())
    sim.run_until_complete(proc)
    assert overlay.overlay_route("x", "z") == ["x", "y", "z"]
    # Relay path: 10 + 10 ms plus 1 ms forwarding = 21 ms vs 112 ms direct.
    assert overlay.overlay_latency("x", "z") == pytest.approx(0.021)
    assert overlay.improvement("x", "z") == pytest.approx(0.112 - 0.021)


def test_overlay_membership_management():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    assert sorted(overlay.members) == ["x", "y", "z"]
    overlay.leave("y")
    assert sorted(overlay.members) == ["x", "z"]
    with pytest.raises(SimulationError):
        overlay.leave("y")
    with pytest.raises(SimulationError):
        overlay.join("x")


def test_overlay_measure_costs_worst_rtt():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    overlay.set_underlay_penalty("x", "z", 0.100)
    proc = sim.spawn(overlay.measure())
    sim.run_until_complete(proc)
    assert sim.now == pytest.approx(2 * 0.112)


def test_overlay_routing_table_covers_all_pairs():
    sim = Simulation()
    _net, overlay = overlay_fixture(sim)
    proc = sim.spawn(overlay.measure())
    sim.run_until_complete(proc)
    table = overlay.routing_table()
    assert len(table) == 3
