"""``--explain R<id>``: the rule documentation catalogue."""

import pytest

from repro.analysis.cli import main as simlint_main
from repro.analysis.explain import (
    RULE_DOCS,
    all_rule_codes,
    explain_rule,
)
from repro.analysis.rules import default_rules


def _active_rules():
    from repro.analysis.dataflow import deep_rules
    from repro.analysis.scale import scale_rules
    from repro.analysis.shard import shard_rules

    return default_rules() + deep_rules() + shard_rules() + scale_rules()


class TestCatalogue:
    def test_every_registered_rule_is_documented(self):
        for rule in _active_rules():
            assert rule.code.lower() in RULE_DOCS, rule.code
            assert rule.name.lower() in RULE_DOCS, rule.name

    def test_catalogue_covers_e0_through_r26(self):
        assert all_rule_codes() == ["E0"] + \
            ["R%d" % n for n in range(1, 27)]

    def test_documented_names_match_the_implementations(self):
        by_code = {rule.code: rule.name for rule in _active_rules()}
        for code, name in by_code.items():
            assert RULE_DOCS[code.lower()].name == name

    def test_every_doc_has_all_sections(self):
        for code in all_rule_codes():
            text = explain_rule(code)
            for heading in ("Summary:", "Why it matters:",
                            "Fix pattern:", "Suppression:",
                            "See: docs/static_analysis.md"):
                assert heading in text, (code, heading)


class TestLookup:
    def test_lookup_by_code_is_case_insensitive(self):
        assert explain_rule("r22") == explain_rule("R22")

    def test_lookup_by_name(self):
        assert explain_rule("unbounded-growth-container") == \
            explain_rule("R23")

    def test_header_names_code_name_and_pass(self):
        header = explain_rule("R25").splitlines()[0]
        assert "R25" in header and "per-event-allocation" in header
        assert "--scale pass" in header

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            explain_rule("R99")


class TestCli:
    def test_explain_prints_and_exits_zero(self, capsys):
        assert simlint_main(["--explain", "R26"]) == 0
        out = capsys.readouterr().out
        assert "rebuild-in-hot-path" in out and "Fix pattern:" in out

    def test_explain_by_name(self, capsys):
        assert simlint_main(["--explain", "per-event-linear-scan"]) == 0
        assert "R22" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert simlint_main(["--explain", "R99"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err and "--list-rules" in err

    def test_explain_wins_over_analysis_flags(self, capsys):
        # --explain short-circuits: no tree is analyzed.
        assert simlint_main(["--explain", "R1", "--scale",
                             "no/such/path"]) == 0
        assert "global-random" in capsys.readouterr().out
