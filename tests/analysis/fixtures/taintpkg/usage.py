"""Callers that push set-ness and streams across module boundaries."""

from taintpkg.clean import suppressed
from taintpkg.keys import emit_labels, emit_sorted


def trace_all(sim, names):
    emit_labels(sim, set(names))


def trace_sorted(sim, names):
    emit_sorted(sim, set(names))


def calibrate(sim):
    suppressed(sim, sim.streams.stream("cal"))
