"""Fixture package for the interprocedural dataflow tests.

Never imported — only parsed by the analyzer.  Every deliberate
violation is exercised cross-module so the tests prove call-graph
resolution, not just per-file matching; ``clean.py`` holds flows that
must stay silent.
"""
