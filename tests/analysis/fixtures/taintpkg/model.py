"""Cross-module flows every deep rule must catch."""

import random

from taintpkg.clock import jitter, token, worker_rank
from taintpkg.helpers import chained_probe, make_probe, reseed


def schedule(sim):
    delay = jitter()
    yield sim.timeout(delay)


def seed_from_entropy(sim):
    sim.streams.seed(token())


def stagger_by_worker(sim):
    yield sim.timeout(worker_rank())


def kick(sim):
    make_probe(sim)
    yield sim.timeout(1.0)


def kick_chained(sim):
    chained_probe(sim)
    yield sim.timeout(1.0)


def wire(sim):
    rng = sim.streams.stream("model")
    reseed(rng)


def direct(sim):
    rng = sim.streams.stream("direct")
    rng.seed(7)


def forked(sim):
    rng = sim.streams.stream("fork")
    return random.Random(rng.random())
