"""Flows that must stay silent, including a justified suppression."""


def good_delay(sim, rng):
    yield sim.timeout(rng.expovariate(1.0))


def good_wait(sim):
    probe = sim.timeout(2.0)
    yield probe


def good_spawn(sim):
    sim.spawn(good_wait(sim))


def suppressed(sim, rng):
    rng.seed(9)  # simlint: disable=R12  calibration fixture
