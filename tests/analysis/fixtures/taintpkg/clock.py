"""Nondeterminism sources, exported for other fixture modules."""

import os
import time


def stamp():
    return time.time()


def jitter():
    return stamp() * 0.5


def token():
    return os.urandom(8)


def worker_rank():
    return os.getpid() % 4
