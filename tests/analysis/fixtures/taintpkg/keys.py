"""Iteration-order flows: emit_labels is unsafe, emit_sorted launders."""


def emit_labels(sim, labels):
    for label in labels:
        sim.trace.instant(label)


def emit_sorted(sim, labels):
    for label in sorted(labels):
        sim.trace.instant(label)
