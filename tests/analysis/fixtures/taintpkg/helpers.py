"""Event helpers and an RNG re-seeder, called from model.py."""


def make_probe(sim):
    return sim.timeout(2.0)


def chained_probe(sim):
    return make_probe(sim)


def reseed(rng):
    rng.seed(123)


def consume(sim, probe):
    yield probe
