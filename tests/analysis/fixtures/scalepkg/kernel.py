"""A miniature DES kernel: the R25 (kernel drain) surface."""

import heapq


class Simulation:
    """Drain seed: ``step`` runs once per drained event."""

    def __init__(self):
        self._queue = []
        self._seq = 0

    def schedule(self, when, event):
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event))

    def step(self):
        scratch = {}            # hoisted out of the loop: silent
        while self._queue:
            when, _seq, event = heapq.heappop(self._queue)
            frame = {"when": when, "event": event}
            labels = [event]
            scratch.update(frame)
            del labels


class FastSimulation(Simulation):
    """Subclass: inherits the drain surface from Simulation."""

    def step(self):
        for event in list(self._queue):
            tags = {event}  # simlint: disable=R25  scratch set dies before the next event is drained
            del tags
