"""Population-dimensioned state: R22/R23/R24/R26 cases."""

_RESULTS = []


def publish(result):
    """Process generator: module-level per-event accumulation."""
    _RESULTS.append(result)
    yield result


class Frontend:
    """Grows per-session state inside simulation processes."""

    def __init__(self):
        self.sessions = []
        self.outcomes = []  # simlint: disable=R23  experiment artifact kept for the final report
        self.finished = []
        self.batch = []
        self.window = []
        self._by_name = {}
        self._cache = None
        self._rates_cache = {}

    def submit(self, session):
        """Process generator: one per arrival."""
        self.sessions.append(session)
        self.outcomes.append(session)
        self.finished.append(session)
        self.batch.append(session)
        self._by_name[session.name] = session
        yield session

    def reap(self, session):
        self.finished.remove(session)
        self._by_name.pop(session.name, None)

    def lookup(self, name):
        """Hot through the name-based closure: drive() calls it."""
        for session in self.sessions:
            if session.name == name:
                return session
        return None

    def snapshot(self):
        """Hot: a comprehension scan counts too."""
        return [session for session in self.sessions]

    def audit(self):
        """Cold: never reached from a generator."""
        for session in self.sessions:
            session.ping()

    def drive(self):
        """Process generator: makes lookup/snapshot per-event."""
        yield self.lookup("s-1")
        yield self.snapshot()

    def admit(self, session):
        """Process generator: linear membership probe."""
        if session in self.sessions:
            return
        if session.name in self._by_name:
            return
        yield session

    def sweep(self):
        for session in list(self.finished):
            if session in self.sessions:  # simlint: disable=R24  teardown pass, runs once per scenario
                self.finished.remove(session)

    def progress(self):
        """Process generator: full ordered pass per iteration."""
        for _ in range(3):
            ranked = sorted(self.sessions)
            yield ranked

    def rotate(self):
        """Process generator: the swap-drain re-init is an eviction."""
        drained, self.batch = self.batch, []
        yield drained

    def compact(self):
        self.finished[:] = list(self.finished)

    def refresh(self):
        """Process generator: cache rebuilds, guarded and not."""
        self._rates_cache = sorted(self.window)
        if self._cache is None:
            self._cache = sorted(self.window)
        self._memo = sorted(self.window)  # simlint: disable=R26  rebuilt once per epoch by the caller
        yield self._cache
