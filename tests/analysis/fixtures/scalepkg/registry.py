"""Host/site-dimensioned and bounded state: lattice negatives."""

from collections import deque


class Registry:
    """Per-host and per-site tables stay below the population rung."""

    def __init__(self):
        self.hosts = {}
        self.sites = {}
        self._units = {"cpu": 1}

    def attach(self, host):
        """Process generator: grows the host table per event."""
        self.hosts[host.name] = host
        yield host

    def detach(self, host):
        self.hosts.pop(host.name, None)

    def register_site(self, site):
        self.sites[site.name] = site

    def broadcast(self):
        """Process generator: iterating per-host state is fine."""
        for host in self.hosts.values():
            yield host


class Window:
    """A bounded ring is not tracked at all."""

    def __init__(self):
        self.recent_sessions = deque(maxlen=64)


class Ledger:
    """No population name, but per-event growth with no eviction."""

    def __init__(self):
        self.entries = []

    def post(self, item):
        """Process generator: grows per event, never drained."""
        self.entries.append(item)
        yield item


class Spool:
    """The eviction lives in a spawned closure: still counts."""

    def __init__(self):
        self.pending_jobs = {}

    def fetch(self, job):
        """Process generator: hands cleanup to a nested def."""
        self.pending_jobs[job.name] = job

        def finish():
            self.pending_jobs.pop(job.name, None)

        yield finish
