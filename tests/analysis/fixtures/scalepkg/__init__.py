"""Fixture tree for the growth-dimension pass (rules R22-R26)."""
