"""Collectors that never choose a retention bound (R20 fires)."""

from repro.simulation.monitor import TimeSeriesMonitor


class LeakyProbe:
    def __init__(self, name):
        self.utilization = TimeSeriesMonitor(name + ".util")


def make_trace():
    return TimeSeriesMonitor("trace")
