"""Fixture package for simlint rule R20 (unbounded-collector).

Each module exercises one path: ``leaky`` fires, ``bounded`` and
``declared`` stay clean, ``suppressed`` documents the opt-out.
"""
