"""The suppression path: an audited exception with a justification."""

from repro.simulation.monitor import TimeSeriesMonitor


def audit_series():
    return TimeSeriesMonitor("audit")  # simlint: disable=R20  short-lived calibration run
