"""An explicitly declared unbounded series (clean).

``window=None`` states that the full history is wanted — e.g. a
collector whose every sample feeds a final artifact — which is a
retention *choice*, not an oversight.
"""

from repro.simulation.monitor import TimeSeriesMonitor


def full_history_trace():
    return TimeSeriesMonitor("artifact-series", window=None)
