"""Collectors with an explicit retention bound (clean)."""

from repro.simulation.monitor import TimeSeriesMonitor


class BoundedProbe:
    def __init__(self, name):
        self.utilization = TimeSeriesMonitor(name + ".util", window=3600.0)
        self.samples = TimeSeriesMonitor(name + ".samples",
                                         max_samples=4096)
