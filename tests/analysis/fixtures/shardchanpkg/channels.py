"""Clean usage: stamped sends, handlers, read-only observations."""

from repro.simulation import Simulation
from repro.simulation.sharded import ShardWorld


def build_world(group, lookaheads):
    sim = Simulation(seed=7)
    world = ShardWorld(sim, group, lookaheads)
    log = []

    def on_ping(w, message):
        log.append((w.sim.now, message.sender, message.payload))
        w.send("b", "pong", message.payload, latency=0.5)

    world.on_message("ping", on_ping)
    # Pure reads through the handle are permitted.
    horizon_hint = (world.sim.now, world.sim.peek(), world.sim.seed)
    # The shard's own kernel, named directly, is not a handle access.
    sim.call_at(0.25, lambda _sim: None)
    return world, horizon_hint
