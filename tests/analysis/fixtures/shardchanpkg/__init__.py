"""Fixture package for simlint rule R21 (cross-shard-access).

Each module exercises one path: ``bypass`` fires (kernel access and
handle escapes through a shard-world handle), ``channels`` stays
clean (the stamped channel API plus read-only observations), and
``suppressed`` documents the audited opt-out.
"""
