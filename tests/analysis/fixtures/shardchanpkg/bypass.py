"""Violations: kernel access that bypasses the stamped channel API."""

from repro.simulation import Simulation
from repro.simulation.sharded import ShardWorld

world = ShardWorld(Simulation(), "a", {"b": 0.5})


def inject_remote_event(when):
    # Scheduling into a shard without a stamp: placement-dependent.
    world.sim.call_at(when, lambda sim: None)


def steal_kernel_handle():
    # The alias escapes; callers can mutate the queue unstamped.
    return world.sim


def poke_through_back_reference(kernel):
    kernel.world.sim.spawn(_noop(), name="smuggled")


def poke_fresh_world():
    ShardWorld(Simulation(), "b", {}).sim.run(until=1.0)


def _noop():
    yield
