"""The suppression path: an audited exception with a justification."""

from repro.simulation import Simulation
from repro.simulation.sharded import ShardWorld

world = ShardWorld(Simulation(), "a", {})


def drain_for_teardown():
    world.sim.run(until=1.0)  # simlint: disable=R21  single-shard teardown, no peers remain
