"""Site-family fixture: services that (mis)behave toward host objects."""

from shardpkg.hardware import Machine


class GramService:
    """A site entity; own state stays shard-local."""

    def __init__(self, sim, drained):
        self.sim = sim
        self.backlog = 0
        self.finished = []
        self.drained = drained

    def enqueue(self):
        self.backlog += 1  # self-write: clean

    def steal_cycles(self, machine: Machine):
        # R16: site code directly mutating a host-family object.
        machine.load = 0.0
        # R16: mutator method on the host object's state.
        machine.tasks.clear()

    def drain_nicely(self, machine: Machine):
        machine.load = 0.0  # simlint: disable=R16  reset path, audited by hand

    def inspect(self, machine: Machine):
        return machine.load  # reads are not crossings

    def local_bookkeeping(self, registry):
        # Unannotated parameter: the pass cannot place it, stays quiet.
        registry.entries.append(self.backlog)
