"""Fixture package for the shard-affinity pass (rules R15-R19).

Laid out like a miniature repro tree so the family classifier sees all
three entity families: ``shardpkg.hardware`` (host), ``shardpkg.
middleware`` (site), and everything else (shared).  Each module mixes
positive cases, suppressed positives and negatives; the tests assert
on exact lines.  Never imported — the analyzers parse it only.
"""
