"""Shared-family fixture: global state, caches and accumulators."""

import functools
import itertools
from dataclasses import dataclass
from functools import lru_cache

#: R15: module-level mutable, mutated below.
_LIVE_WORLDS = []

#: Read-only lookup table: never mutated, never reported.
_UNITS = {"s": 1.0, "ms": 1e-3}

#: Suppressed positive: mutated, but justified inline.
_DEBUG_SINKS = []  # simlint: disable=R15  test-only sink, cleared per test

#: R15 via `global` rebinding: immutable initializer, rebound at runtime.
_ACTIVE_WORLD = None

#: R17: cache-named module state, mutated below.
_SHARE_CACHE = {}


def register_world(world):
    _LIVE_WORLDS.append(world)


def set_active(world):
    global _ACTIVE_WORLD
    _ACTIVE_WORLD = world


def share_of(key):
    if key not in _SHARE_CACHE:
        _SHARE_CACHE[key] = len(str(key))
    return _SHARE_CACHE[key]


def tap(sink):
    _DEBUG_SINKS.append(sink)


@lru_cache(maxsize=None)
def slow_phi(x):
    # R17: explicitly unbounded lru_cache.
    return x * x


@functools.cache
def slow_psi(x):
    # R17: functools.cache is always unbounded.
    return x + 1


@lru_cache(maxsize=256)
def bounded_helper(x):
    # Bounded lru_cache on a plain function: clean.
    return x - 1


class Sampler:
    """Mutable class: lru_cache on its method pins instances (R17)."""

    def __init__(self, scale):
        self.scale = scale

    @lru_cache(maxsize=64)
    def scaled(self, x):
        return self.scale * x


@dataclass(frozen=True)
class CostTable:
    """Frozen dataclass: the sanctioned value-keyed memo pattern."""

    rate: float

    @lru_cache(maxsize=64)
    def cost(self, n):
        return self.rate * n


class RunningTotal:
    """R18: takes samples, cannot be folded back."""

    _ids = itertools.count()  # simlint: disable=R15  audit-only rank source (mirrors StatAccumulator)

    def __init__(self):
        self.total = 0.0
        self.seq = next(RunningTotal._ids)

    def add(self, value):
        self.total += value


class SampleLog:
    """R18 via append: records samples, no merge."""

    def __init__(self):
        self.samples = []

    def record(self, value):
        self.samples.append(value)


class MergeableTotal:
    """Negative: same intake shape, but merge exists."""

    def __init__(self):
        self.total = 0.0

    def add(self, value):
        self.total += value

    def merge(self, other):
        self.total += other.total
        return self


class InheritedTotal(MergeableTotal):
    """Negative: merge arrives from the base class."""

    def add(self, value):
        self.total += 2.0 * value


class QuietLog:  # simlint: disable=R18  scratch log, never crosses a shard
    """Suppressed positive: intake without merge, justified."""

    def __init__(self):
        self.samples = []

    def record(self, value):
        self.samples.append(value)
