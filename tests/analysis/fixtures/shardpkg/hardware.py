"""Host-family fixture: machines that (mis)behave toward site objects."""

from shardpkg.middleware import GramService


class Machine:
    """A host entity; plain self-state is shard-local (no findings)."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.load = 0.0
        self.tasks = []

    def work(self, amount):
        self.load += amount          # self-write: shard-local, clean
        self.tasks.append(amount)    # ditto

    def nap(self):
        return self.sim.timeout(1.0)  # own timeline: clean

    def report_done(self, gram: GramService):
        # R16: host code directly mutating a site-family object.
        gram.backlog -= 1
        # R16: mutator method on the site object's state.
        gram.finished.append(self.name)
        # R19(b): triggering an event owned by the site entity.
        gram.drained.succeed(self.name)

    def report_quietly(self, gram: GramService):
        gram.backlog -= 1  # simlint: disable=R16  legacy callback, scheduled for PR-7
        gram.drained.succeed(None)  # simlint: disable=R19  legacy callback, scheduled for PR-7

    def borrow_clock(self, scheduler):
        # R19(a): scheduling through another component's sim handle.
        return scheduler.sim.timeout(0.0)

    def read_only_peek(self, gram: GramService):
        return gram.backlog  # reading foreign state is not a write
