"""Near-miss constructs that must stay silent under R15-R19."""

#: Module-level mutable that nothing ever writes: a lookup table.
_DEFAULTS = {"quantum": 0.01, "cores": 1}

#: Immutable binding never rebound through ``global``.
_VERSION = "1.0"


def local_scratch(values):
    # Function-local mutables shadow nothing and report nothing.
    cache = {}
    for value in values:
        cache[value] = value * 2
    return cache


def rebind_local():
    # Plain local rebinding, no ``global``: stays local.
    _VERSION = "2.0"  # noqa: F841 (deliberate shadow)
    return _VERSION


def read_defaults(key):
    return _DEFAULTS.get(key, 0.0)


class Orchestrator:
    """Shared-family class touching anything it likes: no R16/R19."""

    def __init__(self, sim):
        self.sim = sim

    def rebalance(self, machine, gram):
        # Shared-family orchestration may mutate both sides directly;
        # only host<->site writes are crossings.
        machine.load = 0.0
        gram.backlog = 0
        return machine.sim.timeout(0.0)
