"""SARIF 2.1.0 export: document shape, determinism, and round-trip."""

import json

from repro.analysis.core import Finding
from repro.analysis.rules import default_rules
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    findings_from_sarif,
    render_sarif,
    to_sarif,
)

FINDINGS = [
    Finding("src/a.py", 10, 5, "R2", "wall-clock",
            "time.time() in model code"),
    Finding("src/a.py", 44, 1, "R11", "tainted-sim-state",
            "argument 1 of timeout() carries wall-clock taint"),
    Finding("src/b.py", 3, 9, "R2", "wall-clock",
            "time.time() in model code"),
    Finding("src/c.py", 1, 1, "E0", "parse-error",
            "file does not parse: invalid syntax"),
]


class TestDocumentShape:
    def test_version_and_schema(self):
        document = to_sarif(FINDINGS)
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert document["$schema"] == SARIF_SCHEMA
        assert len(document["runs"]) == 1

    def test_driver_and_rule_metadata(self):
        document = to_sarif(FINDINGS, rules=default_rules())
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "simlint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids, key=lambda c: (len(c), c))
        assert "R2" in ids and "E0" in ids

    def test_results_reference_rules_by_index(self):
        document = to_sarif(FINDINGS)
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_parse_errors_are_errors_findings_are_warnings(self):
        document = to_sarif(FINDINGS)
        levels = {result["ruleId"]: result["level"]
                  for result in document["runs"][0]["results"]}
        assert levels["E0"] == "error"
        assert levels["R2"] == levels["R11"] == "warning"

    def test_locations_carry_line_and_column(self):
        document = to_sarif(FINDINGS)
        first = document["runs"][0]["results"][0]
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 10, "startColumn": 5}


class TestRoundTrip:
    def test_findings_survive_a_round_trip(self):
        document = json.loads(render_sarif(FINDINGS))
        restored = findings_from_sarif(document)
        assert [f.to_dict() for f in restored] == \
               [f.to_dict() for f in FINDINGS]

    def test_empty_round_trip(self):
        assert findings_from_sarif(json.loads(render_sarif([]))) == []

    def test_render_is_deterministic(self):
        assert render_sarif(FINDINGS) == render_sarif(FINDINGS)

    def test_cli_emits_parseable_sarif(self, tmp_path):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\n\ndef stamp():\n"
                       "    return time.time()\n")
        import io
        import sys

        buffer = io.StringIO()
        stdout, sys.stdout = sys.stdout, buffer
        try:
            code = main([str(bad), "--format", "sarif"])
        finally:
            sys.stdout = stdout
        assert code == 1
        restored = findings_from_sarif(json.loads(buffer.getvalue()))
        assert [f.code for f in restored] == ["R2"]
