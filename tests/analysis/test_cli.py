"""The simlint CLI: exit codes, output formats, selection, self-lint."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.analysis import analyze_paths
from repro.analysis.cli import main

#: One seeded violation for each of the nine rules.
VIOLATIONS = '''\
import heapq
import random
import time


def draw():
    return random.uniform(0, 1)              # R1


def stamp():
    return time.time()                       # R2


def drain(pending):
    for item in set(pending):                # R3
        print(item)                          # R9


def proc(sim):
    sim.timeout(1.0)                         # R4
    time.sleep(0.1)                          # R5
    yield sim.timeout(1.0)


def due(sim, deadline):
    return sim.now == deadline               # R6


def collect(results=[]):                     # R7
    return results


def push(queue, when, event):
    heapq.heappush(queue, (when, event))     # R8
'''

ALL_CODES = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"]


@pytest.fixture
def violations_file(tmp_path):
    path = tmp_path / "violations.py"
    path.write_text(VIOLATIONS)
    return str(path)


def test_every_rule_fires_on_the_fixture(violations_file):
    found = sorted({f.code for f in analyze_paths([violations_file])})
    assert found == ALL_CODES


def test_cli_exit_nonzero_on_findings(violations_file, capsys):
    assert main([violations_file]) == 1
    out = capsys.readouterr().out
    assert "violations.py" in out
    for code in ALL_CODES:
        assert code in out


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(sim):\n    yield sim.timeout(1.0)\n")
    assert main([str(clean)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_json_output(violations_file, capsys):
    assert main([violations_file, "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"])
    assert {f["code"] for f in payload["findings"]} == set(ALL_CODES)
    first = payload["findings"][0]
    assert {"path", "line", "col", "code", "name", "message"} \
        <= set(first)


def test_cli_select_restricts_rules(violations_file, capsys):
    assert main([violations_file, "--select=R1"]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "R2" not in out


def test_cli_disable_skips_rules(violations_file, capsys):
    assert main([violations_file,
                 "--disable=R2,R3,R4,R5,R6,R7,R8"]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "R8[" not in out


def test_cli_empty_selection_is_usage_error(violations_file):
    assert main([violations_file, "--select=R1", "--disable=R1"]) == 2


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out
    assert "global-random" in out


def test_directory_walk_is_recursive_and_sorted(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "b.py").write_text("import random\nrandom.random()\n")
    sub = package / "sub"
    sub.mkdir()
    (sub / "a.py").write_text("import time\nt = time.time()\n")
    findings = analyze_paths([str(package)])
    assert [f.code for f in findings] == ["R1", "R2"]
    assert findings[0].path.endswith("b.py")


def test_repro_package_is_simlint_clean():
    """The acceptance gate: the shipped tree has zero findings."""
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    findings = analyze_paths([package_dir])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_module_entrypoint(violations_file):
    """``python -m repro.analysis`` works and exits non-zero on findings."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", violations_file],
        capture_output=True, text=True,
        env={**env, "PYTHONPATH": src + os.pathsep
             + env.get("PYTHONPATH", "")})
    assert result.returncode == 1
    assert "R1" in result.stdout


def test_main_cli_analyze_subcommand(violations_file, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["analyze", "--path", violations_file]) == 1
    assert "R4" in capsys.readouterr().out

    clean_dir = os.path.join(
        os.path.dirname(os.path.abspath(repro.__file__)), "analysis")
    assert repro_main(["analyze", "--path", clean_dir, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["count"] == 0
