"""The shard-affinity pass: model, rules R15-R19, inventory, CLI."""

import json
import os

import pytest

import repro
from repro.analysis.cli import main as simlint_main
from repro.analysis.sarif import render_sarif
from repro.analysis.shard import (
    analyze_shard,
    build_shard_model,
    family_of_module,
    registered_shard_rule_classes,
    shard_rules,
)
from repro.analysis.shard.inventory import render_inventory
from repro.analysis.shard.model import GLOBAL, HOST, LOCAL, SHARED, SITE

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "shardpkg")
REPRO_PKG = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.fixture(scope="module")
def fixture_model():
    return build_shard_model([FIXTURE])


@pytest.fixture(scope="module")
def fixture_findings(fixture_model):
    return analyze_shard([FIXTURE], model=fixture_model)


def _at(findings, code, filename):
    return [(f.line, f.col) for f in findings
            if f.code == code and f.path.endswith(filename)]


def _lines(findings, code, filename):
    return [line for line, _col in _at(findings, code, filename)]


# -- entity families -------------------------------------------------------

class TestFamilies:
    def test_host_components(self):
        for name in ("repro.hardware.cpu", "repro.guestos.kernel",
                     "repro.vmm.monitor", "repro.storage.pvfs",
                     "shardpkg.hardware"):
            assert family_of_module(name) == HOST

    def test_site_components(self):
        assert family_of_module("repro.middleware.gram") == SITE
        assert family_of_module("shardpkg.middleware") == SITE

    def test_site_wins_over_host_and_shared(self):
        # dhcp pins gridnet.dhcp to the site family even though the
        # rest of gridnet is shared.
        assert family_of_module("repro.gridnet.dhcp") == SITE
        assert family_of_module("repro.gridnet.flows") == SHARED

    def test_everything_else_is_shared(self):
        for name in ("repro.simulation.kernel", "repro.obs.metrics",
                     "shardpkg.stats", "shardpkg.clean"):
            assert family_of_module(name) == SHARED


# -- the model -------------------------------------------------------------

class TestModel:
    def test_mutated_module_global_is_process_global(self, fixture_model):
        loc = fixture_model.locations[("shardpkg.stats", "_LIVE_WORLDS")]
        assert loc.affinity == GLOBAL
        assert [m.how for m in loc.mutations] == ["method-call"]

    def test_read_only_table_stays_local(self, fixture_model):
        loc = fixture_model.locations[("shardpkg.stats", "_UNITS")]
        assert loc.affinity == LOCAL and not loc.mutations

    def test_global_rebinding_promotes_immutable_binding(
            self, fixture_model):
        loc = fixture_model.locations[("shardpkg.stats",
                                       "_ACTIVE_WORLD")]
        assert loc.kind == "binding" and loc.affinity == GLOBAL

    def test_class_level_counter_tracked_through_next(
            self, fixture_model):
        loc = fixture_model.locations[("shardpkg.stats",
                                       "RunningTotal._ids")]
        assert loc.kind == "counter"
        assert [m.how for m in loc.mutations] == ["next"]

    def test_cache_sites_with_bounds_and_frozen(self, fixture_model):
        sites = {s.function.qualname: s for s in fixture_model.cache_sites
                 if "shardpkg" in s.function.module.name}
        assert sites["shardpkg.stats.slow_phi"].explicit_unbounded
        assert sites["shardpkg.stats.slow_psi"].explicit_unbounded
        helper = sites["shardpkg.stats.bounded_helper"]
        assert helper.bounded and helper.maxsize == 256
        assert not sites["shardpkg.stats.Sampler.scaled"].frozen_dataclass
        assert sites["shardpkg.stats.CostTable.cost"].frozen_dataclass

    def test_self_writes_counted_per_class(self, fixture_model):
        writes = fixture_model.self_writes
        assert writes["shardpkg.hardware.Machine"] >= 4
        assert writes["shardpkg.middleware.GramService"] >= 4


# -- the rules over the fixture --------------------------------------------

class TestRulesOnFixture:
    def test_r15_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R15", "stats.py") == [9, 18]

    def test_r15_skips_cache_named_and_suppressed(self, fixture_findings):
        # _SHARE_CACHE (line 21) is R17's; _DEBUG_SINKS (15) and
        # RunningTotal._ids (86) carry justifications.
        lines = _lines(fixture_findings, "R15", "stats.py")
        for suppressed in (15, 21, 86):
            assert suppressed not in lines

    def test_r16_positives_both_directions(self, fixture_findings):
        assert _lines(fixture_findings, "R16", "hardware.py") == [24, 26]
        assert _lines(fixture_findings, "R16", "middleware.py") == [20, 22]

    def test_r16_suppressed_and_negatives(self, fixture_findings):
        assert 31 not in _lines(fixture_findings, "R16", "hardware.py")
        assert 26 not in _lines(fixture_findings, "R16", "middleware.py")
        # Shared-family orchestration mutating both sides: silent.
        assert not _at(fixture_findings, "R16", "clean.py")

    def test_r17_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R17", "stats.py") == \
            [21, 43, 49, 67]

    def test_r17_sanctioned_patterns_silent(self, fixture_findings):
        lines = _lines(fixture_findings, "R17", "stats.py")
        assert 57 not in lines  # bounded lru_cache on a function
        assert 76 not in lines  # bounded lru_cache on frozen dataclass

    def test_r18_positives_and_negatives(self, fixture_findings):
        assert _lines(fixture_findings, "R18", "stats.py") == [83, 96]
        flagged = {f.message.split()[0]
                   for f in fixture_findings if f.code == "R18"}
        assert "MergeableTotal" not in flagged
        assert "InheritedTotal" not in flagged  # merge via base class
        assert "QuietLog" not in flagged        # suppressed

    def test_r19_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R19", "hardware.py") == [28, 36]

    def test_r19_suppressed_and_shared_negatives(self, fixture_findings):
        assert 32 not in _lines(fixture_findings, "R19", "hardware.py")
        assert not _at(fixture_findings, "R19", "clean.py")

    def test_total_finding_count_is_pinned(self, fixture_findings):
        # Every positive above, nothing else: 2 R15 + 4 R16 + 4 R17 +
        # 2 R18 + 2 R19.
        assert len(fixture_findings) == 14


# -- the installed package is clean ----------------------------------------

class TestRepoIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        assert analyze_shard([REPRO_PKG]) == []


# -- inventory -------------------------------------------------------------

class TestInventory:
    def test_rendering_is_deterministic(self, fixture_model):
        assert render_inventory(fixture_model) == \
            render_inventory(fixture_model)

    def test_sections_and_statuses(self, fixture_model):
        text = render_inventory(fixture_model)
        assert "## Process-global mutable state (R15)" in text
        assert "## Process-wide caches (R17)" in text
        assert "## Shard-crossing edges (R16/R19)" in text
        assert "## Non-mergeable accumulators (R18)" in text
        # Suppressed positives appear as justified, open ones as OPEN.
        assert "OPEN" in text and "justified" in text

    def test_sanctioned_cache_listed_as_ok(self, fixture_model):
        text = render_inventory(fixture_model)
        assert "shardpkg.stats.CostTable.cost()" in text
        assert "frozen-dataclass method" in text

    def test_committed_repo_inventory_is_current(self, monkeypatch):
        # make shardcheck regenerates docs/shard-safety.md; the
        # committed file must match a fresh rendering byte-for-byte.
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        committed = os.path.join(repo_root, "docs", "shard-safety.md")
        if not os.path.exists(committed):
            pytest.skip("inventory not generated yet")
        monkeypatch.chdir(repo_root)
        model = build_shard_model([os.path.join(repo_root, "src",
                                                "repro")])
        rendered = render_inventory(model)
        with open(committed, encoding="utf-8") as handle:
            assert handle.read() == rendered


# -- registry, SARIF and CLI ----------------------------------------------

class TestIntegration:
    def test_registry_exposes_r15_to_r19_in_order(self):
        codes = [cls.code for cls in registered_shard_rule_classes()]
        assert codes == ["R15", "R16", "R17", "R18", "R19"]

    def test_sarif_includes_shard_rules(self, fixture_findings):
        document = json.loads(render_sarif(fixture_findings,
                                           shard_rules()))
        driver = document["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == \
            ["R15", "R16", "R17", "R18", "R19"]
        assert len(document["runs"][0]["results"]) == 14

    def test_cli_shard_flag(self, capsys):
        assert simlint_main(["--shard", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "simlint: 14 findings" in out

    def test_cli_shard_inventory_writes_file(self, tmp_path, capsys):
        target = tmp_path / "inventory.md"
        simlint_main(["--shard-inventory", str(target), FIXTURE])
        capsys.readouterr()
        assert target.read_text().startswith("# Shard-safety inventory")

    def test_cli_select_narrows_to_one_rule(self, capsys):
        assert simlint_main(["--shard", "--select", "R18", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "R18" in out and "R16" not in out

    def test_cli_list_rules_mentions_shard_rules(self, capsys):
        simlint_main(["--shard", "--list-rules"])
        out = capsys.readouterr().out
        for code in ("R15", "R16", "R17", "R18", "R19"):
            assert code in out
