"""Rule R21 (cross-shard-access): inline snippets, the fixture
package golden, and the guarantee that the repro tree itself is clean
(the engine's own round loop carries audited inline suppressions)."""

import os

from repro.analysis import analyze_paths, analyze_source

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "shardchanpkg")

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src", "repro")


def codes(source):
    return [f.code for f in analyze_source(source)]


# -- inline snippets ---------------------------------------------------------

def test_r21_kernel_mutation_through_handle_fires():
    assert "R21" in codes(
        "from repro.simulation.sharded import ShardWorld\n"
        "world = ShardWorld(sim, 'a', {})\n"
        "world.sim.call_at(1.0, fn)\n")


def test_r21_handle_alias_fires():
    assert "R21" in codes(
        "from repro.simulation.sharded import ShardWorld\n"
        "world = ShardWorld(sim, 'a', {})\n"
        "kernel = world.sim\n")


def test_r21_back_reference_chain_fires():
    assert "R21" in codes("def poke(k):\n"
                          "    k.world.sim.schedule(event)\n")


def test_r21_direct_construction_chain_fires():
    assert "R21" in codes(
        "import repro.simulation.sharded as sharded\n"
        "sharded.ShardWorld(sim, 'a', {}).sim.run(until=2.0)\n")


def test_r21_read_only_members_clean():
    assert codes(
        "from repro.simulation.sharded import ShardWorld\n"
        "world = ShardWorld(sim, 'a', {})\n"
        "snapshot = (world.sim.now, world.sim.peek(), world.sim.seed)\n"
    ) == []


def test_r21_unrelated_sim_attribute_clean():
    # ``self.sim`` / ``config.sim.x``: not a shard-world handle.
    assert codes("class Recorder:\n"
                 "    def tick(self):\n"
                 "        return self.sim.run(until=1.0)\n") == []
    assert codes("x = config.sim\n") == []


def test_r21_suppression():
    assert codes(
        "from repro.simulation.sharded import ShardWorld\n"
        "world = ShardWorld(sim, 'a', {})\n"
        "world.sim.run(until=1.0)  "
        "# simlint: disable=R21  teardown\n") == []


# -- fixture-package golden --------------------------------------------------

def test_shardchanpkg_golden():
    findings = [f for f in analyze_paths([FIXTURE]) if f.code == "R21"]
    golden = [(os.path.relpath(f.path, FIXTURE), f.line) for f in findings]
    # Exactly the four bypasses — clean and suppressed modules
    # contribute nothing.
    assert golden == [("bypass.py", 11), ("bypass.py", 16),
                      ("bypass.py", 20), ("bypass.py", 24)]


def test_shardchanpkg_messages_name_the_channel_api():
    for finding in (f for f in analyze_paths([FIXTURE])
                    if f.code == "R21"):
        assert "ShardWorld.send" in finding.message


def test_repro_tree_is_r21_clean():
    """The engine owns its shards via audited inline suppressions;
    nothing else in the model tree reaches through a world handle."""
    assert [f for f in analyze_paths([SRC]) if f.code == "R21"] == []
