"""Per-rule simlint tests: a snippet that fires, one that stays clean,
and the ``# simlint: disable=`` suppression path for every rule."""

import pytest

from repro.analysis import analyze_source


def codes(source):
    """The rule codes simlint reports for a snippet."""
    return [finding.code for finding in analyze_source(source)]


def assert_fires(source, code):
    found = codes(source)
    assert code in found, "expected %s in %r" % (code, found)


def assert_clean(source):
    assert codes(source) == []


# -- R1: global-random -------------------------------------------------------

def test_r1_global_module_call_fires():
    assert_fires("import random\nx = random.uniform(0, 1)\n", "R1")


def test_r1_literal_seed_fires():
    assert_fires("import random\nrng = random.Random(0)\n", "R1")


def test_r1_unseeded_fires():
    assert_fires("import random\nrng = random.Random()\n", "R1")


def test_r1_from_import_fires():
    assert_fires("from random import choice\n", "R1")


def test_r1_injected_stream_clean():
    assert_clean("def f(streams):\n"
                 "    rng = streams.stream('disk')\n"
                 "    return rng.uniform(0, 1)\n")


def test_r1_derived_seed_clean():
    # A non-literal seed (the RandomStreams pattern) is acceptable.
    assert_clean("import random\n"
                 "def derive(name):\n"
                 "    return len(name)\n"
                 "rng = random.Random(derive('disk'))\n")


def test_r1_annotation_clean():
    assert_clean("import random\n"
                 "def f(rng: random.Random) -> None:\n"
                 "    pass\n")


def test_r1_suppression():
    assert_clean("import random\n"
                 "rng = random.Random(0)  # simlint: disable=R1  calib\n")


# -- R2: wall-clock ----------------------------------------------------------

def test_r2_time_time_fires():
    assert_fires("import time\nstart = time.time()\n", "R2")


def test_r2_perf_counter_fires():
    assert_fires("import time\nstart = time.perf_counter()\n", "R2")


def test_r2_datetime_now_fires():
    assert_fires("import datetime\nnow = datetime.datetime.now()\n", "R2")


def test_r2_sim_now_clean():
    assert_clean("def f(sim):\n    return sim.now\n")


def test_r2_suppression_by_name():
    assert_clean("import time\n"
                 "t0 = time.time()  # simlint: disable=wall-clock\n")


# -- R3: set-iteration -------------------------------------------------------

def test_r3_direct_set_literal_fires():
    assert_fires("for x in {1, 2, 3}:\n    print(x)\n", "R3")


def test_r3_set_call_fires():
    assert_fires("for x in set([1, 2]):\n    print(x)\n", "R3")


def test_r3_list_wrapper_still_fires():
    assert_fires("for x in list(set([1, 2])):\n    print(x)\n", "R3")


def test_r3_local_name_propagation_fires():
    assert_fires("def f(items):\n"
                 "    pending = set(items)\n"
                 "    for x in pending:\n"
                 "        print(x)\n", "R3")


def test_r3_self_attribute_propagation_fires():
    assert_fires("class Engine:\n"
                 "    def __init__(self):\n"
                 "        self.active = set()\n"
                 "    def drain(self):\n"
                 "        for x in self.active:\n"
                 "            print(x)\n", "R3")


def test_r3_comprehension_over_set_fires():
    assert_fires("xs = [x for x in {1, 2, 3}]\n", "R3")


def test_r3_sorted_clean():
    assert_clean("def f(items, handle):\n"
                 "    pending = set(items)\n"
                 "    for x in sorted(pending):\n"
                 "        handle(x)\n")


def test_r3_list_iteration_clean():
    assert_clean("def f(handle):\n"
                 "    for x in [1, 2, 3]:\n"
                 "        handle(x)\n")


def test_r3_membership_clean():
    assert_clean("def f(items, x):\n"
                 "    seen = set(items)\n"
                 "    return x in seen\n")


def test_r3_suppression():
    assert_clean("def f(handle):\n"
                 "    for x in {1, 2}:  # simlint: disable=R3\n"
                 "        handle(x)\n")


# -- R4: lost-event ----------------------------------------------------------

def test_r4_discarded_timeout_fires():
    assert_fires("def proc(sim):\n"
                 "    sim.timeout(1.0)\n"
                 "    yield sim.timeout(2.0)\n", "R4")


def test_r4_discarded_event_fires():
    assert_fires("def f(sim):\n    sim.event()\n", "R4")


def test_r4_discarded_constructor_fires():
    assert_fires("def f(sim):\n    Timeout(sim, 1.0)\n", "R4")


def test_r4_yielded_clean():
    assert_clean("def proc(sim):\n    yield sim.timeout(1.0)\n")


def test_r4_stored_clean():
    assert_clean("def f(sim):\n"
                 "    done = sim.event()\n"
                 "    return done\n")


def test_r4_suppression():
    assert_clean("def f(sim):\n"
                 "    sim.event()  # simlint: disable=R4\n")


# -- R5: blocking-call -------------------------------------------------------

def test_r5_sleep_in_generator_fires():
    assert_fires("import time\n"
                 "def proc(sim):\n"
                 "    time.sleep(1)\n"
                 "    yield sim.timeout(1.0)\n", "R5")


def test_r5_bare_sleep_in_generator_fires():
    assert_fires("from time import sleep\n"
                 "def proc(sim):\n"
                 "    sleep(1)\n"
                 "    yield sim.timeout(1.0)\n", "R5")


def test_r5_sleep_outside_generator_clean():
    # Harness code may block; only sim processes are constrained.
    assert_clean("import time\n"
                 "def harness():\n"
                 "    time.sleep(1)\n")


def test_r5_suppression():
    assert_clean("import time\n"
                 "def proc(sim):\n"
                 "    time.sleep(1)  # simlint: disable=R5\n"
                 "    yield sim.timeout(1.0)\n")


# -- R6: float-time-eq -------------------------------------------------------

def test_r6_now_equality_fires():
    assert_fires("def f(sim, deadline):\n"
                 "    return sim.now == deadline\n", "R6")


def test_r6_time_suffix_fires():
    assert_fires("def f(a, b):\n"
                 "    return a.start_time != b.start_time\n", "R6")


def test_r6_inequality_clean():
    assert_clean("def f(sim, deadline):\n"
                 "    return sim.now >= deadline\n")


def test_r6_none_check_clean():
    assert_clean("def f(job):\n"
                 "    return job.completed_at == None\n")


def test_r6_suppression():
    assert_clean("def f(sim, t_end):\n"
                 "    return sim.now == t_end  # simlint: disable=R6\n")


# -- R7: mutable-default -----------------------------------------------------

def test_r7_list_default_fires():
    assert_fires("def f(xs=[]):\n    return xs\n", "R7")


def test_r7_dict_default_fires():
    assert_fires("def f(*, table={}):\n    return table\n", "R7")


def test_r7_call_default_fires():
    assert_fires("def f(seen=set()):\n    return seen\n", "R7")


def test_r7_none_default_clean():
    assert_clean("def f(xs=None):\n    return xs or []\n")


def test_r7_suppression():
    assert_clean("def f(xs=[]):  # simlint: disable=R7\n"
                 "    return xs\n")


# -- R8: heap-key ------------------------------------------------------------

def test_r8_pair_with_payload_fires():
    assert_fires("import heapq\n"
                 "def push(q, when, event):\n"
                 "    heapq.heappush(q, (when, event))\n", "R8")


def test_r8_bare_object_push_fires():
    assert_fires("import heapq\n"
                 "def push(q, when):\n"
                 "    heapq.heappush(q, Item(when))\n", "R8")


def test_r8_counter_tiebreak_clean():
    assert_clean("import heapq\n"
                 "def push(q, when, count, event):\n"
                 "    heapq.heappush(q, (when, count, event))\n")


def test_r8_scalar_pair_clean():
    assert_clean("import heapq\n"
                 "def push(q, when):\n"
                 "    heapq.heappush(q, (when, 0))\n")


def test_r8_suppression():
    assert_clean("import heapq\n"
                 "def push(q, when, event):\n"
                 "    heapq.heappush(q, (when, event))"
                 "  # simlint: disable=R8\n")


# -- R9: bare-print ----------------------------------------------------------

def test_r9_print_in_model_code_fires():
    assert_fires("def report(sim):\n"
                 "    print('done at', sim.now)\n", "R9")


def test_r9_module_level_print_fires():
    assert_fires("print('loading')\n", "R9")


def test_r9_cli_module_exempt():
    source = "def main():\n    print('table')\n"
    assert analyze_source(source, path="src/repro/cli.py") == []
    assert analyze_source(source, path="src/repro/analysis/cli.py") == []


def test_r9_reporting_module_exempt():
    assert analyze_source("print('x')\n",
                          path="src/repro/core/reporting.py") == []


def test_r9_method_named_print_clean():
    # Only the builtin matters; attribute calls are someone's API.
    assert_clean("def f(doc):\n    doc.print()\n")


def test_r9_suppression():
    assert_clean("def debug(sim):\n"
                 "    print(sim.now)  # simlint: disable=R9\n")


# -- R10: pool-size ----------------------------------------------------------

def test_r10_os_cpu_count_fires():
    assert_fires("import os\nworkers = os.cpu_count()\n", "R10")


def test_r10_multiprocessing_cpu_count_fires():
    assert_fires("import multiprocessing\n"
                 "n = multiprocessing.cpu_count()\n", "R10")


def test_r10_getpid_fires():
    assert_fires("import os\nstamp = os.getpid()\n", "R10")


def test_r10_aliased_cpu_count_fires():
    # The final attribute alone is damning however the module is bound.
    assert_fires("import multiprocessing as mp\nn = mp.cpu_count()\n",
                 "R10")


def test_r10_seed_from_worker_count_fires():
    assert_fires("def seeds(streams, workers):\n"
                 "    return streams.spawn_key('rep/%d' % workers)\n",
                 "R10")


def test_r10_seed_from_worker_id_keyword_fires():
    assert_fires("from repro.simulation.randomness import RandomStreams\n"
                 "def make(worker_id):\n"
                 "    return RandomStreams(seed=worker_id)\n", "R10")


def test_r10_seed_from_identity_call_fires():
    assert_fires("import os, random\n"
                 "rng = random.Random(os.getpid())\n", "R10")


def test_r10_seed_from_replication_index_clean():
    # The sanctioned pattern: root seed + replication index only.
    assert_clean("def seeds(streams, count):\n"
                 "    return [streams.spawn_key('rep/%d' % index)\n"
                 "            for index in range(count)]\n")


def test_r10_workers_outside_seeding_clean():
    # Passing a worker count to the harness is the whole point; only
    # identity reads and pool-derived seeds are flagged.
    assert_clean("def fan_out(run, tasks, workers):\n"
                 "    return run(tasks, workers=workers)\n")


def test_r10_suppression():
    assert_clean("import os\n"
                 "n = os.cpu_count()"
                 "  # simlint: disable=R10  harness-side pool sizing\n")


# -- engine behaviour --------------------------------------------------------

def test_file_level_suppression():
    assert_clean("# simlint: disable-file=R1\n"
                 "import random\n"
                 "a = random.Random(0)\n"
                 "b = random.Random(1)\n")


def test_suppression_only_hits_its_line():
    source = ("import random\n"
              "a = random.Random(0)  # simlint: disable=R1\n"
              "b = random.Random(1)\n")
    assert codes(source) == ["R1"]


def test_multiple_codes_in_one_comment():
    assert_clean("import random, heapq\n"
                 "def f(q, when, event):\n"
                 "    heapq.heappush(q, (random.random(), event))"
                 "  # simlint: disable=R1, R8\n")


def test_syntax_error_reported_as_finding():
    findings = analyze_source("def broken(:\n")
    assert [f.code for f in findings] == ["E0"]


def test_findings_are_sorted_and_located():
    source = ("import random\n"
              "b = random.Random(1)\n"
              "a = random.Random(0)\n")
    findings = analyze_source(source, path="mod.py")
    assert [f.line for f in findings] == [2, 3]
    assert all(f.path == "mod.py" for f in findings)
    assert "mod.py:2:" in findings[0].format()


def test_register_rejects_duplicate_codes():
    from repro.analysis import Rule, register

    class Duplicate(Rule):
        code = "R1"
        name = "dup"

    with pytest.raises(ValueError):
        register(Duplicate)


def test_register_rejects_non_rules():
    from repro.analysis import register

    with pytest.raises(TypeError):
        register(object)
