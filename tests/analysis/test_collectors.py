"""Rule R20 (unbounded-collector): inline snippets and the fixture
package golden — the exact findings over ``fixtures/collectorpkg``."""

import os

from repro.analysis import analyze_paths, analyze_source

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "collectorpkg")


def codes(source):
    return [f.code for f in analyze_source(source)]


# -- inline snippets ---------------------------------------------------------

def test_r20_bare_construction_fires():
    assert "R20" in codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "mon = TimeSeriesMonitor('util')\n")


def test_r20_attribute_construction_fires():
    assert "R20" in codes(
        "import repro.simulation.monitor as monitor\n"
        "mon = monitor.TimeSeriesMonitor('util')\n")


def test_r20_window_kwarg_clean():
    assert codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "mon = TimeSeriesMonitor('util', window=3600.0)\n") == []


def test_r20_max_samples_kwarg_clean():
    assert codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "mon = TimeSeriesMonitor('util', max_samples=4096)\n") == []


def test_r20_explicit_none_window_is_a_choice():
    assert codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "mon = TimeSeriesMonitor('util', window=None)\n") == []


def test_r20_kwargs_splat_gets_benefit_of_doubt():
    assert codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "def make(**opts):\n"
        "    return TimeSeriesMonitor('util', **opts)\n") == []


def test_r20_unrelated_call_clean():
    assert codes("x = make_monitor('util')\n") == []


def test_r20_suppression():
    assert codes(
        "from repro.simulation.monitor import TimeSeriesMonitor\n"
        "mon = TimeSeriesMonitor('u')  "
        "# simlint: disable=R20  calibration\n") == []


# -- fixture-package golden --------------------------------------------------

def test_collectorpkg_golden():
    findings = [f for f in analyze_paths([FIXTURE]) if f.code == "R20"]
    golden = [(os.path.relpath(f.path, FIXTURE), f.line) for f in findings]
    # Exactly the two constructions in leaky.py — bounded, declared and
    # suppressed modules contribute nothing.
    assert golden == [("leaky.py", 8), ("leaky.py", 12)]


def test_collectorpkg_messages_name_the_fix():
    findings = [f for f in analyze_paths([FIXTURE]) if f.code == "R20"]
    for finding in findings:
        assert "window=" in finding.message
        assert "max_samples=" in finding.message


def test_repro_package_is_r20_clean():
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src", "repro")
    findings = [f for f in analyze_paths([src]) if f.code == "R20"]
    assert findings == []
