"""The runtime shard-affinity sanitizer (``--shard-model``)."""

import pytest

from repro.analysis.shardsan import (
    SHARD_CROSSING,
    SHARD_VIOLATION,
    ShardAffinitySanitizer,
)
from repro.cli import main as repro_main
from repro.obs.runner import build_scenario, run_scenario
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.monitor import StatAccumulator

#: Three hosts across two sites: h1/h3 share site-a, h2 is site-b.
_PARTITIONS = {"h1": "site-a", "h2": "site-b", "h3": "site-a"}


def _sanitized_sim(model="site"):
    sanitizer = ShardAffinitySanitizer(shard_model=model)
    sim = Simulation(seed=7, tracer=sanitizer)
    # What grid.partitions(model) would hand bind_grid for this map.
    sanitizer.host_partition = dict(_PARTITIONS) if model == "site" \
        else {host: host for host in _PARTITIONS}
    return sim, sanitizer


def _wait(sim, event):
    def waiter(_sim):
        yield event

    sim.spawn(waiter(sim))


def _deliver(delay, produce_track, consume_track, model="site"):
    """Schedule inside one host span, fire inside another; finish."""
    sim, sanitizer = _sanitized_sim(model)
    span = sanitizer.begin("vmm", "produce", track=produce_track)
    event = sim.timeout(delay)
    _wait(sim, event)
    sanitizer.end(span)
    span = sanitizer.begin("vmm", "consume", track=consume_track)
    sim.run()
    sanitizer.end(span)
    sanitizer.finish()
    return sanitizer


class TestConstruction:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            ShardAffinitySanitizer(shard_model="core")

    def test_unknown_partition_model_rejected_by_grid(self):
        sim = Simulation(seed=0)
        grid, _config, _app = build_scenario("table1", sim, seed=0)
        with pytest.raises(SimulationError):
            grid.partitions("core")

    def test_grid_partition_maps(self):
        sim = Simulation(seed=0)
        grid, _config, _app = build_scenario("table1", sim, seed=0)
        assert grid.partitions("site") == {
            "compute1": "uf", "images1": "nw", "data1": "nw"}
        assert grid.partitions("host") == {
            name: name for name in ("compute1", "data1", "images1")}


class TestEventDelivery:
    def test_zero_delay_cross_partition_is_violation(self):
        sanitizer = _deliver(0.0, ("host:h1", "vm:a"), ("host:h2", "vm:b"))
        kinds = [hazard.kind for hazard in sanitizer.hazards]
        assert kinds.count(SHARD_VIOLATION) == 1
        message = next(h.message for h in sanitizer.hazards
                       if h.kind == SHARD_VIOLATION)
        assert "'site-a'" in message and "'site-b'" in message
        assert not sanitizer.crossings

    def test_positive_delay_cross_partition_is_crossing(self):
        sanitizer = _deliver(1.5, ("host:h1", "vm:a"), ("host:h2", "vm:b"))
        assert not [h for h in sanitizer.hazards
                    if h.kind == SHARD_VIOLATION]
        assert [h.kind for h in sanitizer.crossings] == [SHARD_CROSSING]
        assert "1.5" in sanitizer.crossings[0].message

    def test_same_partition_hosts_are_silent_under_site_model(self):
        sanitizer = _deliver(0.0, ("host:h1", "vm:a"), ("host:h3", "vm:c"))
        assert not [h for h in sanitizer.hazards
                    if h.kind == SHARD_VIOLATION]
        assert not sanitizer.crossings

    def test_host_model_splits_colocated_hosts(self):
        sanitizer = _deliver(0.0, ("host:h1", "vm:a"), ("host:h3", "vm:c"),
                             model="host")
        assert [h.kind for h in sanitizer.hazards
                if h.kind == SHARD_VIOLATION] == [SHARD_VIOLATION]

    def test_unowned_context_stays_silent(self):
        sanitizer = _deliver(0.0, ("sched", "gram:g"), ("host:h2", "vm:b"))
        assert not [h for h in sanitizer.hazards
                    if h.kind == SHARD_VIOLATION]
        assert not sanitizer.crossings


class TestResources:
    class _Resource:
        name = "scratch-disk"

    class _Request:
        owner = None
        resource = None

    def test_foreign_acquisition_is_a_crossing(self):
        sim, sanitizer = _sanitized_sim()
        resource = self._Resource()
        span = sanitizer.begin("vmm", "a", track=("host:h1", "vm:a"))
        sanitizer.on_resource_acquired(sim, resource, self._Request())
        sanitizer.end(span)
        span = sanitizer.begin("vmm", "b", track=("host:h2", "vm:b"))
        sanitizer.on_resource_acquired(sim, resource, self._Request())
        sanitizer.end(span)
        sanitizer.finish()
        assert len(sanitizer.crossings) == 1
        assert "scratch-disk" in sanitizer.crossings[0].message
        assert "'site-a'" in sanitizer.crossings[0].message

    def test_same_partition_reacquisition_is_silent(self):
        sim, sanitizer = _sanitized_sim()
        resource = self._Resource()
        for host in ("h1", "h3"):
            span = sanitizer.begin("vmm", host,
                                   track=("host:%s" % host, "vm:x"))
            sanitizer.on_resource_acquired(sim, resource, self._Request())
            sanitizer.end(span)
        sanitizer.finish()
        assert not sanitizer.crossings


class TestMergeAudit:
    def test_cross_partition_merge_is_violation(self):
        sim, sanitizer = _sanitized_sim()
        target = StatAccumulator("total")
        part_a, part_b = StatAccumulator("a"), StatAccumulator("b")
        part_a.add(1.0)
        part_b.add(2.0)
        span = sanitizer.begin("vmm", "a", track=("host:h1", "vm:a"))
        target.merge(part_a)
        sanitizer.end(span)
        span = sanitizer.begin("vmm", "b", track=("host:h2", "vm:b"))
        target.merge(part_b)
        sanitizer.end(span)
        hazards = sanitizer.finish()
        violations = [h for h in hazards if h.kind == SHARD_VIOLATION]
        assert len(violations) == 1 and "total" in violations[0].message

    def test_coordinator_merges_are_fine(self):
        sim, sanitizer = _sanitized_sim()
        target = StatAccumulator("total")
        for value in (1.0, 2.0):
            part = StatAccumulator()
            part.add(value)
            target.merge(part)  # no host span open: coordinator fold
        assert not [h for h in sanitizer.finish()
                    if h.kind == SHARD_VIOLATION]


class TestScenarios:
    @pytest.mark.parametrize("target", ["table2", "table1"])
    def test_replay_is_clean_and_byte_identical(self, target):
        sanitizer = ShardAffinitySanitizer(shard_model="site")
        sim = run_scenario(target, seed=42, tracer=sanitizer)
        assert sanitizer.finish() == []
        plain = run_scenario(target, seed=42)
        assert sim.now == plain.now
        assert sim.metrics.to_json() == plain.metrics.to_json()

    def test_bind_grid_learns_the_topology(self):
        sanitizer = ShardAffinitySanitizer(shard_model="site")
        run_scenario("table1", seed=42, tracer=sanitizer)
        assert sanitizer.host_partition["compute1"] == "uf"
        assert sanitizer.host_partition["images1"] == "nw"

    def test_cli_shard_model_exits_clean(self, capsys):
        assert repro_main(["sanitize", "table2", "--seed", "42",
                           "--shard-model", "site"]) == 0
        out = capsys.readouterr().out
        assert "identical to untraced run" in out
        assert "under the site model" in out
