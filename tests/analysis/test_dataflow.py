"""The interprocedural dataflow pass: symbols, call graph, taint, R11-R14."""

import os

import pytest

import repro
from repro.analysis.dataflow import analyze_project, build_engine
from repro.analysis.dataflow.callgraph import CallGraph, resolve_call
from repro.analysis.dataflow.symbols import build_project, module_name_for
from repro.analysis.dataflow.taint import (
    ENTROPY,
    UNORDERED,
    WALLCLOCK,
    WORKER,
)

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "taintpkg")
REPRO_PKG = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.fixture(scope="module")
def fixture_engine():
    return build_engine([FIXTURE])


@pytest.fixture(scope="module")
def fixture_findings():
    return analyze_project([FIXTURE])


@pytest.fixture(scope="module")
def repo_engine():
    return build_engine([REPRO_PKG])


# -- symbol table ----------------------------------------------------------

class TestSymbols:
    def test_module_names_follow_packages(self):
        path = os.path.join(FIXTURE, "model.py")
        assert module_name_for(path) == "taintpkg.model"

    def test_project_collects_modules_and_functions(self, fixture_engine):
        project = fixture_engine.project
        names = set(project.modules)
        assert {"taintpkg.model", "taintpkg.clock", "taintpkg.helpers",
                "taintpkg.keys", "taintpkg.usage",
                "taintpkg.clean"} <= names
        assert "taintpkg.helpers.make_probe" in project.functions
        assert project.functions["taintpkg.helpers.consume"].is_generator
        assert not project.functions[
            "taintpkg.helpers.make_probe"].is_generator

    def test_import_aliases_expand(self, fixture_engine):
        project = fixture_engine.project
        model = project.modules["taintpkg.model"]
        assert project.expand(model, "jitter") == "taintpkg.clock.jitter"

    def test_syntax_error_becomes_parse_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = analyze_project([str(bad)])
        assert [f.code for f in findings] == ["E0"]


# -- call graph ------------------------------------------------------------

class TestCallGraph:
    def test_cross_module_calls_resolve(self, fixture_engine):
        graph = CallGraph(fixture_engine.project)
        assert "taintpkg.clock.jitter" in graph.callees(
            "taintpkg.model.schedule")
        assert "taintpkg.helpers.make_probe" in graph.callees(
            "taintpkg.helpers.chained_probe")

    def test_external_calls_keep_dotted_names(self, fixture_engine):
        project = fixture_engine.project
        stamp = project.functions["taintpkg.clock.stamp"]
        graph = CallGraph(project)
        assert "time.time" in graph.external["taintpkg.clock.stamp"]
        del stamp

    def test_resolution_repr_modes(self, fixture_engine):
        import ast

        project = fixture_engine.project
        caller = project.functions["taintpkg.model.schedule"]
        calls = [node for node in ast.walk(caller.node)
                 if isinstance(node, ast.Call)]
        resolved = [resolve_call(project, caller, call) for call in calls]
        assert any(r.resolved for r in resolved)

    def test_repo_wide_resolution_spans_all_modules(self, repo_engine):
        """`--deep` must see across every src/repro module."""
        project = repo_engine.project
        graph = CallGraph(project)
        cross = graph.cross_module_edges()
        assert len(project.modules) > 50
        assert len(cross) > 100
        touched = {caller.rsplit(".", 2)[0] for caller, _ in cross} | \
                  {callee.rsplit(".", 2)[0] for _, callee in cross}
        # Every top-level repro subpackage participates in resolved
        # cross-module edges.
        prefixes = {name.split(".")[1] for name in touched
                    if name.startswith("repro.")}
        for package in ("simulation", "obs", "experiments", "middleware",
                        "core", "analysis"):
            assert package in prefixes, package


# -- taint summaries -------------------------------------------------------

class TestTaint:
    def test_sources_taint_returns(self, fixture_engine):
        summary = fixture_engine.summary("taintpkg.clock.stamp")
        assert WALLCLOCK in summary.returns_taint

    def test_taint_propagates_through_calls(self, fixture_engine):
        summary = fixture_engine.summary("taintpkg.clock.jitter")
        assert WALLCLOCK in summary.returns_taint
        assert ENTROPY in fixture_engine.summary(
            "taintpkg.clock.token").returns_taint
        assert WORKER in fixture_engine.summary(
            "taintpkg.clock.worker_rank").returns_taint

    def test_event_helpers_summarized(self, fixture_engine):
        assert fixture_engine.summary(
            "taintpkg.helpers.make_probe").returns_event
        assert fixture_engine.summary(
            "taintpkg.helpers.chained_probe").returns_event

    def test_reseed_param_detected(self, fixture_engine):
        assert "rng" in fixture_engine.summary(
            "taintpkg.helpers.reseed").reseed_params

    def test_setlike_crosses_call_boundary(self, fixture_engine):
        assert "labels" in fixture_engine.summary(
            "taintpkg.keys.emit_labels").setlike_params

    def test_repo_event_factories_summarized(self, repo_engine):
        assert repo_engine.summary(
            "repro.simulation.resources.Resource.request").returns_event
        assert repo_engine.summary(
            "repro.simulation.resources.Store.put").returns_event

    def test_sorted_launders_unordered(self, fixture_engine):
        findings = analyze_project([FIXTURE])
        sorted_lines = [f for f in findings
                        if f.code == "R14" and "emit_sorted" in f.message]
        assert sorted_lines == []

    def test_lattice_kind_labels(self):
        assert {WALLCLOCK, ENTROPY, WORKER, UNORDERED} == {
            "wall-clock", "entropy", "worker-identity",
            "unordered-iteration"}


# -- the deep rules, golden fixture findings -------------------------------

#: (basename, line, code) for every expected fixture finding.
GOLDEN = [
    ("helpers.py", 13, "R12"),
    ("keys.py", 6, "R14"),
    ("model.py", 11, "R11"),
    ("model.py", 15, "R11"),
    ("model.py", 19, "R11"),
    ("model.py", 23, "R13"),
    ("model.py", 28, "R13"),
    ("model.py", 34, "R12"),
    ("model.py", 39, "R12"),
    ("model.py", 44, "R12"),
    ("usage.py", 16, "R12"),
]


class TestDeepRules:
    def test_golden_fixture_findings(self, fixture_findings):
        got = [(os.path.basename(f.path), f.line, f.code)
               for f in fixture_findings]
        assert got == GOLDEN

    def test_r11_covers_all_three_host_taints(self, fixture_findings):
        kinds = {f.message.split(" carries ")[1].split(" taint")[0]
                 for f in fixture_findings if f.code == "R11"}
        assert kinds == {"wall-clock", "entropy", "worker-identity"}

    def test_r13_resolves_through_call_graph(self, fixture_findings):
        chained = [f for f in fixture_findings
                   if f.code == "R13" and "chained_probe" in f.message]
        assert len(chained) == 1

    def test_clean_module_is_silent(self, fixture_findings):
        assert not any(os.path.basename(f.path) == "clean.py"
                       for f in fixture_findings)

    def test_suppression_comment_respected(self, fixture_findings):
        # clean.py's rng.seed(9) carries a justified disable=R12; the
        # stream still reaches it (usage.calibrate), so without the
        # comment it would be reported like helpers.py:13.
        assert not any("clean.py" in f.path for f in fixture_findings)

    def test_repro_package_is_deep_clean(self):
        findings = analyze_project([REPRO_PKG])
        assert findings == [], [f.format() for f in findings]

    def test_findings_are_deterministic(self):
        first = analyze_project([FIXTURE])
        second = analyze_project([FIXTURE])
        assert [f.to_dict() for f in first] == \
               [f.to_dict() for f in second]
