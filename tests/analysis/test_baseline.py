"""The findings baseline ratchet: absorb recorded debt, fail on new."""

import json

import pytest

from repro.analysis.baseline import (
    filter_new,
    fingerprint,
    load_baseline,
    make_baseline,
    render_baseline,
)
from repro.analysis.cli import main
from repro.analysis.core import Finding


def finding(path="src/a.py", line=10, code="R2", message="wall clock"):
    return Finding(path, line, 1, code, "slug", message)


class TestFingerprint:
    def test_line_numbers_do_not_matter(self):
        assert fingerprint(finding(line=10)) == fingerprint(finding(line=99))

    def test_path_code_and_message_do_matter(self):
        base = fingerprint(finding())
        assert fingerprint(finding(path="src/b.py")) != base
        assert fingerprint(finding(code="R3")) != base
        assert fingerprint(finding(message="other")) != base


class TestRatchet:
    def test_known_findings_are_absorbed(self):
        old = [finding(line=10), finding(path="src/b.py")]
        baseline = {fingerprint(f): 1 for f in old}
        moved = [finding(line=55), finding(path="src/b.py")]
        assert filter_new(moved, baseline) == []

    def test_new_findings_surface(self):
        baseline = {fingerprint(finding()): 1}
        fresh = finding(path="src/new.py")
        assert filter_new([finding(), fresh], baseline) == [fresh]

    def test_counts_bound_absorption(self):
        # Two recorded findings absorb two, the third is new debt.
        baseline = {fingerprint(finding()): 2}
        three = [finding(line=n) for n in (1, 2, 3)]
        assert len(filter_new(three, baseline)) == 1

    def test_round_trip_through_disk(self, tmp_path):
        findings = [finding(), finding(line=20), finding(code="R3")]
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(findings))
        assert filter_new(findings, load_baseline(str(path))) == []

    def test_document_is_versioned_and_sorted(self):
        document = make_baseline([finding(code="R3"), finding()])
        assert document["version"] == 1
        entries = [(e["path"], e["code"]) for e in document["findings"]]
        assert entries == sorted(entries)

    def test_bad_baseline_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


VIOLATION = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestCliIntegration:
    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "old.py").write_text(VIOLATION)
        return tmp_path

    def test_write_then_gate(self, tree, capsys):
        baseline = tree / "baseline.json"
        assert main([str(tree), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # Same debt: gate passes.
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # New finding in a new file: gate fails and reports only it.
        (tree / "new.py").write_text(VIOLATION)
        assert main([str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "new.py" in out and "old.py" not in out

    def test_missing_baseline_is_a_usage_error(self, tree, capsys):
        code = main([str(tree), "--baseline", str(tree / "nope.json")])
        capsys.readouterr()
        assert code == 2
