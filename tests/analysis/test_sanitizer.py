"""simsan: each hazard class fires on an injected bug and stays silent
on clean runs, and sanitized runs never change simulation results."""

import pytest

from repro.analysis.sanitizer import (
    LOST_EVENT,
    MERGE_ORDER,
    ORDERING_RACE,
    RESOURCE_LEAK,
    DeterminismSanitizer,
)
from repro.experiments.runner import merge_accumulators
from repro.simulation import monitor as monitor_module
from repro.simulation.kernel import Simulation
from repro.simulation.monitor import StatAccumulator
from repro.simulation.resources import Resource


def sanitized_sim(seed=0):
    sanitizer = DeterminismSanitizer()
    return Simulation(seed=seed, tracer=sanitizer), sanitizer


@pytest.fixture(autouse=True)
def _no_leftover_audit():
    yield
    # A test that fails before finish() must not leak the merge audit
    # into the rest of the suite.
    monitor_module.set_merge_audit(None)


class TestOrderingRace:
    def test_same_instant_any_of_is_a_hazard(self):
        sim, sanitizer = sanitized_sim()

        def racer(sim):
            yield sim.any_of([sim.timeout(5.0), sim.timeout(5.0)])

        sim.spawn(racer(sim))
        sim.run()
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [ORDERING_RACE]
        assert hazards[0].time == 5.0

    def test_race_reported_once_per_condition(self):
        sim, sanitizer = sanitized_sim()

        def racer(sim):
            yield sim.any_of([sim.timeout(2.0) for _ in range(4)])

        sim.spawn(racer(sim))
        sim.run()
        assert len(sanitizer.finish()) == 1

    def test_staggered_any_of_is_clean(self):
        sim, sanitizer = sanitized_sim()

        def waiter(sim):
            yield sim.any_of([sim.timeout(5.0), sim.timeout(7.0)])

        sim.spawn(waiter(sim))
        sim.run()
        assert sanitizer.finish() == []

    def test_all_of_same_instant_is_clean(self):
        # all_of consumes every sub-event: order cannot change the
        # outcome, so identical timestamps are fine.
        sim, sanitizer = sanitized_sim()

        def waiter(sim):
            yield sim.all_of([sim.timeout(5.0), sim.timeout(5.0)])

        sim.spawn(waiter(sim))
        sim.run()
        assert sanitizer.finish() == []

    def test_same_time_different_conditions_is_clean(self):
        sim, sanitizer = sanitized_sim()

        def waiter(sim):
            first = sim.any_of([sim.timeout(3.0), sim.timeout(4.0)])
            second = sim.any_of([sim.timeout(3.0), sim.timeout(6.0)])
            yield sim.all_of([first, second])

        sim.spawn(waiter(sim))
        sim.run()
        assert sanitizer.finish() == []


class TestResourceLeak:
    def test_terminating_while_holding_is_a_hazard(self):
        sim, sanitizer = sanitized_sim()
        resource = Resource(sim, capacity=1)

        def leaker(sim):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)

        sim.spawn(leaker(sim), name="leaky")
        sim.run()
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [RESOURCE_LEAK]
        assert "leaky" in hazards[0].message

    def test_release_in_finally_is_clean(self):
        sim, sanitizer = sanitized_sim()
        resource = Resource(sim, capacity=1)

        def worker(sim):
            request = resource.request()
            yield request
            try:
                yield sim.timeout(1.0)
            finally:
                resource.release(request)

        sim.spawn(worker(sim))
        sim.run()
        assert sanitizer.finish() == []

    def test_queued_grant_is_charged_to_the_requester(self):
        # The slot is granted inside the *releaser's* wake-up loop; the
        # hazard must still name the waiter that leaked it.
        sim, sanitizer = sanitized_sim()
        resource = Resource(sim, capacity=1)

        def polite(sim):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)
            resource.release(request)

        def rude(sim):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)

        sim.spawn(polite(sim), name="polite")
        sim.spawn(rude(sim), name="rude")
        sim.run()
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [RESOURCE_LEAK]
        assert "rude" in hazards[0].message


class TestLostEvent:
    def test_unobserved_fired_event_is_a_hazard(self):
        sim, sanitizer = sanitized_sim()

        def loser(sim):
            sim.timeout(3.0)  # never yielded: fires into the void
            yield sim.timeout(1.0)

        sim.spawn(loser(sim))
        sim.run()
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [LOST_EVENT]
        assert hazards[0].time == 3.0

    def test_late_observation_retires_the_candidate(self):
        sim, sanitizer = sanitized_sim()

        def late(sim):
            probe = sim.timeout(1.0)
            yield sim.timeout(2.0)  # probe fires unobserved meanwhile
            yield probe             # ...then is consumed after the fact

        sim.spawn(late(sim))
        sim.run()
        assert sanitizer.finish() == []

    def test_process_termination_events_are_exempt(self):
        sim, sanitizer = sanitized_sim()

        def worker(sim):
            yield sim.timeout(1.0)

        sim.spawn(worker(sim))  # nobody waits for the process: fine
        sim.run()
        assert sanitizer.finish() == []

    def test_span_context_attached(self):
        sim, sanitizer = sanitized_sim()

        def loser(sim):
            span = sim.trace.begin("phase", "boot")
            sim.timeout(3.0)
            yield sim.timeout(5.0)
            sim.trace.end(span)

        sim.spawn(loser(sim))
        sim.run()
        hazards = sanitizer.finish()
        assert hazards[0].spans == ("phase/boot",)
        assert "phase/boot" in hazards[0].render()


class TestMergeOrder:
    def test_out_of_order_fold_is_a_hazard(self):
        sim, sanitizer = sanitized_sim()
        parts = [StatAccumulator("p%d" % i) for i in range(3)]
        for part in parts:
            part.add(1.0)
        merge_accumulators([parts[1], parts[0], parts[2]])
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [MERGE_ORDER]
        del sim

    def test_double_merge_is_a_hazard(self):
        sim, sanitizer = sanitized_sim()
        part = StatAccumulator("part")
        part.add(1.0)
        total = StatAccumulator("total")
        total.merge(part)
        total.merge(part)
        hazards = sanitizer.finish()
        assert [h.kind for h in hazards] == [MERGE_ORDER]
        assert "twice" in hazards[0].message
        del sim

    def test_task_order_fold_is_clean(self):
        sim, sanitizer = sanitized_sim()
        parts = [StatAccumulator("p%d" % i) for i in range(4)]
        for part in parts:
            part.add(2.0)
        merge_accumulators(parts)
        assert sanitizer.finish() == []
        del sim

    def test_unpickled_parts_are_not_compared(self):
        import pickle

        sim, sanitizer = sanitized_sim()
        parts = []
        for i in range(2):
            part = StatAccumulator("w%d" % i)
            part.add(float(i))
            parts.append(pickle.loads(pickle.dumps(part)))
        assert all(part._seq is None for part in parts)
        merge_accumulators(list(reversed(parts)))
        assert sanitizer.finish() == []
        del sim

    def test_audit_uninstalled_after_finish(self):
        sim, sanitizer = sanitized_sim()
        sanitizer.finish()
        assert monitor_module._merge_audit is None
        del sim


class TestPureObserver:
    def test_sanitized_run_matches_plain_run(self):
        def build(tracer):
            sim = Simulation(seed=7, tracer=tracer)
            resource = Resource(sim, capacity=2)
            results = []

            def worker(sim, index):
                request = resource.request()
                yield request
                try:
                    delay = sim.streams.stream("svc").expovariate(1.0)
                    yield sim.timeout(delay)
                    results.append((index, sim.now))
                finally:
                    resource.release(request)

            for index in range(6):
                sim.spawn(worker(sim, index), name="w%d" % index)
            sim.run()
            return sim.now, results

        sanitizer = DeterminismSanitizer()
        sanitized = build(sanitizer)
        assert sanitizer.finish() == []
        plain = build(None)
        assert sanitized == plain

    def test_finish_is_idempotent(self):
        sim, sanitizer = sanitized_sim()

        def loser(sim):
            sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.spawn(loser(sim))
        sim.run()
        assert sanitizer.finish() == sanitizer.finish()
        assert len(sanitizer.finish()) == 1

    @pytest.mark.parametrize("scenario", ["figure1", "table1", "table2"])
    def test_obs_scenarios_are_hazard_free_and_identical(self, scenario):
        from repro.obs.runner import run_scenario

        sanitizer = DeterminismSanitizer()
        sim = run_scenario(scenario, seed=42, tracer=sanitizer)
        assert sanitizer.finish() == []
        plain = run_scenario(scenario, seed=42)
        assert sim.now == plain.now
        assert sim.metrics.to_json() == plain.metrics.to_json()
