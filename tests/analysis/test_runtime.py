"""The analysis-runtime guard: the full gate must stay fast.

``make check`` runs every pass on every invocation; if the combined
``--deep --shard --scale`` gate creeps past a few seconds, developers
stop running it.  The CLI shares one parsed project model across the
three project passes — this test pins that property by wall clock.
"""

import os
import time

import repro
from repro.analysis.cli import main as simlint_main

REPRO_PKG = os.path.dirname(os.path.abspath(repro.__file__))

#: Generous ceiling: the combined pass runs in ~4s on the reference
#: container; before the shared-project-model change it took ~5.5s.
BUDGET_SECONDS = 5.0


def test_full_gate_over_src_repro_stays_under_budget(capsys):
    started = time.monotonic()
    status = simlint_main(["--deep", "--shard", "--scale", REPRO_PKG])
    elapsed = time.monotonic() - started
    out = capsys.readouterr().out
    assert status == 0 and "simlint: 0 findings" in out
    assert elapsed < BUDGET_SECONDS, \
        "--deep --shard --scale took %.2fs (budget %.1fs)" \
        % (elapsed, BUDGET_SECONDS)


def test_shared_project_model_is_reused(monkeypatch):
    # The three project passes must parse the tree exactly once.
    import repro.analysis.cli as cli
    from repro.analysis.dataflow import symbols

    calls = []
    real = symbols.build_project

    def counting(paths):
        calls.append(list(paths))
        return real(paths)

    monkeypatch.setattr(symbols, "build_project", counting)
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures", "scalepkg")
    cli.main(["--deep", "--shard", "--scale", "--disable",
              "R8,R9", fixture])
    assert len(calls) == 1
