"""The growth-dimension pass: model, rules R22-R26, inventory, CLI."""

import json
import os

import pytest

import repro
from repro.analysis.cli import main as simlint_main
from repro.analysis.sarif import render_sarif
from repro.analysis.scale import (
    BOUNDED,
    PER_HOST,
    PER_SITE,
    POPULATION,
    analyze_scale,
    build_scale_model,
    dim_order,
    registered_scale_rule_classes,
    scale_rules,
)
from repro.analysis.scale.inventory import render_inventory

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "scalepkg")
REPRO_PKG = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.fixture(scope="module")
def fixture_model():
    return build_scale_model([FIXTURE])


@pytest.fixture(scope="module")
def fixture_findings(fixture_model):
    return analyze_scale([FIXTURE], model=fixture_model)


def _at(findings, code, filename):
    return [(f.line, f.col) for f in findings
            if f.code == code and f.path.endswith(filename)]


def _lines(findings, code, filename):
    return [line for line, _col in _at(findings, code, filename)]


def _collection(model, owner, name):
    return model.collections[(owner, name)]


# -- the lattice -----------------------------------------------------------

class TestLattice:
    def test_dimensions_are_totally_ordered(self):
        assert dim_order(BOUNDED) < dim_order(PER_HOST) \
            < dim_order(PER_SITE) < dim_order(POPULATION)

    def test_population_is_the_per_session_dimension(self):
        assert POPULATION == "per-session"


# -- the model -------------------------------------------------------------

class TestModel:
    def test_name_and_payload_promote_to_population(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.sessions.Frontend", "sessions")
        assert coll.dimension == POPULATION and coll.kind == "list"

    def test_host_and_site_names_stay_below_population(
            self, fixture_model):
        registry = "scalepkg.registry.Registry"
        assert _collection(fixture_model, registry,
                           "hosts").dimension == PER_HOST
        assert _collection(fixture_model, registry,
                           "sites").dimension == PER_SITE

    def test_config_table_without_growth_is_bounded(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.registry.Registry", "_units")
        assert coll.dimension == BOUNDED and not coll.grows

    def test_hot_growth_without_eviction_promotes(self, fixture_model):
        # ``entries`` has no population-shaped name or payload; growing
        # per event with no shrink anywhere is what promotes it.
        coll = _collection(fixture_model,
                           "scalepkg.registry.Ledger", "entries")
        assert coll.dimension == POPULATION
        assert "no eviction" in coll.why

    def test_bounded_deque_ring_is_not_tracked(self, fixture_model):
        assert ("scalepkg.registry.Window",
                "recent_sessions") not in fixture_model.collections

    def test_swap_drain_reinit_counts_as_shrink(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.sessions.Frontend", "batch")
        assert [s.how for s in coll.shrinks] == ["reset"]

    def test_full_slice_store_counts_as_prune(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.sessions.Frontend", "finished")
        assert "prune" in [s.how for s in coll.shrinks]

    def test_eviction_in_nested_def_is_seen(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.registry.Spool", "pending_jobs")
        assert [s.how for s in coll.shrinks] == ["pop"]
        assert coll.shrinks[0].function.name == "fetch"

    def test_heap_push_and_pop_are_grow_and_shrink(self, fixture_model):
        coll = _collection(fixture_model,
                           "scalepkg.kernel.Simulation", "_queue")
        assert [s.how for s in coll.grows] == ["heappush"]
        assert [s.how for s in coll.shrinks] == ["heappop"]
        assert coll.dimension == BOUNDED

    def test_generators_and_drains_seed_the_hot_set(self, fixture_model):
        hot = fixture_model.hot
        assert hot["scalepkg.sessions.Frontend.submit"] \
            == "simulation process (generator)"
        assert hot["scalepkg.kernel.Simulation.step"] \
            == "kernel drain method"
        assert "scalepkg.kernel.FastSimulation.step" \
            in fixture_model.kernel_hot  # subclass inherits the drain

    def test_name_based_closure_reaches_called_methods(
            self, fixture_model):
        reason = fixture_model.hot["scalepkg.sessions.Frontend.lookup"]
        assert "scalepkg.sessions.Frontend.drive" in reason
        assert "scalepkg.sessions.Frontend.audit" not in \
            fixture_model.hot


# -- the rules over the fixture --------------------------------------------

class TestRulesOnFixture:
    def test_r22_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R22", "sessions.py") == [40, 47]

    def test_r22_cold_scan_and_sub_population_scan_silent(
            self, fixture_findings):
        # audit() is cold; broadcast() iterates per-host state.
        lines = _lines(fixture_findings, "R22", "sessions.py")
        assert 51 not in lines
        assert not _at(fixture_findings, "R22", "registry.py")

    def test_r23_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R23", "sessions.py") == [3, 16]
        assert _lines(fixture_findings, "R23", "registry.py") == [42]

    def test_r23_evicted_and_suppressed_silent(self, fixture_findings):
        lines = _lines(fixture_findings, "R23", "sessions.py")
        # outcomes (17) is suppressed; finished (18) has remove/prune;
        # batch (19) has the swap-drain re-init; _by_name (21) has pop.
        for silent in (17, 18, 19, 21):
            assert silent not in lines
        # pending_jobs' eviction lives in a nested def (registry.py:55).
        assert _lines(fixture_findings, "R23", "registry.py") == [42]

    def test_r24_positives(self, fixture_findings):
        assert _lines(fixture_findings, "R24", "sessions.py") == [61, 75]

    def test_r24_dict_probe_and_suppressed_silent(self, fixture_findings):
        lines = _lines(fixture_findings, "R24", "sessions.py")
        assert 63 not in lines  # dict membership is O(1)
        assert 69 not in lines  # suppressed teardown probe

    def test_r25_positive_groups_sites_per_function(
            self, fixture_findings):
        findings = [f for f in fixture_findings if f.code == "R25"]
        assert _lines(fixture_findings, "R25", "kernel.py") == [21]
        assert "1 more site(s)" in findings[0].message

    def test_r25_hoisted_and_suppressed_silent(self, fixture_findings):
        lines = _lines(fixture_findings, "R25", "kernel.py")
        assert 18 not in lines  # hoisted out of the loop
        assert 33 not in lines  # suppressed in FastSimulation.step

    def test_r26_positive(self, fixture_findings):
        assert _lines(fixture_findings, "R26", "sessions.py") == [88]

    def test_r26_guarded_and_suppressed_silent(self, fixture_findings):
        lines = _lines(fixture_findings, "R26", "sessions.py")
        assert 90 not in lines  # behind ``if ... is None``
        assert 91 not in lines  # suppressed

    def test_total_finding_count_is_pinned(self, fixture_findings):
        # Every positive above, nothing else: 2 R22 + 3 R23 + 2 R24 +
        # 1 R25 + 1 R26.
        assert len(fixture_findings) == 9


# -- the installed package is clean ----------------------------------------

class TestRepoIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        assert analyze_scale([REPRO_PKG]) == []


# -- inventory -------------------------------------------------------------

class TestInventory:
    def test_rendering_is_deterministic(self, fixture_model):
        assert render_inventory(fixture_model) == \
            render_inventory(fixture_model)

    def test_sections_and_statuses(self, fixture_model):
        text = render_inventory(fixture_model)
        assert "## Growth dimensions" in text
        assert "## Collections that scale with the scenario" in text
        for code in ("R22", "R23", "R24", "R25", "R26"):
            assert "(%s)" % code in text
        # Suppressed positives appear as justified, open ones as OPEN.
        assert "OPEN" in text and "justified" in text

    def test_dimension_rows_carry_provenance(self, fixture_model):
        text = render_inventory(fixture_model)
        assert "`Frontend.sessions`" in text
        assert "per-session" in text and "per-host" in text

    def test_committed_repo_inventory_is_current(self, monkeypatch):
        # make scalecheck regenerates docs/scale-readiness.md; the
        # committed file must match a fresh rendering byte-for-byte.
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        committed = os.path.join(repo_root, "docs", "scale-readiness.md")
        if not os.path.exists(committed):
            pytest.skip("inventory not generated yet")
        monkeypatch.chdir(repo_root)
        model = build_scale_model([os.path.join(repo_root, "src",
                                                "repro")])
        rendered = render_inventory(model)
        with open(committed, encoding="utf-8") as handle:
            assert handle.read() == rendered


# -- registry, SARIF and CLI ----------------------------------------------

class TestIntegration:
    def test_registry_exposes_r22_to_r26_in_order(self):
        codes = [cls.code for cls in registered_scale_rule_classes()]
        assert codes == ["R22", "R23", "R24", "R25", "R26"]

    def test_sarif_includes_scale_rules(self, fixture_findings):
        document = json.loads(render_sarif(fixture_findings,
                                           scale_rules()))
        driver = document["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == \
            ["R22", "R23", "R24", "R25", "R26"]
        assert len(document["runs"][0]["results"]) == 9

    def test_cli_scale_flag(self, capsys):
        assert simlint_main(["--scale", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "simlint: 9 findings" in out

    def test_cli_scale_inventory_writes_file(self, tmp_path, capsys):
        target = tmp_path / "inventory.md"
        simlint_main(["--scale-inventory", str(target), FIXTURE])
        capsys.readouterr()
        assert target.read_text().startswith(
            "# Scale-readiness inventory")

    def test_cli_select_narrows_to_one_rule(self, capsys):
        assert simlint_main(["--scale", "--select", "R23", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "R23" in out and "R24" not in out

    def test_cli_list_rules_mentions_scale_rules(self, capsys):
        simlint_main(["--scale", "--list-rules"])
        out = capsys.readouterr().out
        for code in ("R22", "R23", "R24", "R25", "R26"):
            assert code in out
