"""Unit tests for the VirtualGrid facade and reporting helpers."""

import pytest

from repro.core import VirtualGrid, format_table
from repro.simulation import SimulationError
from tests.support import GB, demo_grid


# ---------------------------------------------------------------------------
# Construction and registry
# ---------------------------------------------------------------------------

def test_duplicate_site_rejected():
    grid = VirtualGrid()
    grid.add_site("uf")
    with pytest.raises(SimulationError):
        grid.add_site("uf")


def test_host_requires_existing_site():
    grid = VirtualGrid()
    with pytest.raises(SimulationError):
        grid.add_compute_host("c1", site="nowhere")


def test_duplicate_host_rejected():
    grid = VirtualGrid()
    grid.add_site("uf")
    grid.add_compute_host("c1", site="uf")
    with pytest.raises(SimulationError):
        grid.add_image_server("c1", site="uf")


def test_compute_host_registers_machine_and_future():
    grid = VirtualGrid()
    grid.add_site("uf")
    machine = grid.add_compute_host("c1", site="uf", vm_futures=3,
                                    max_memory_mb=256)
    assert machine.name == "c1"
    assert grid.info.select("machines", name="c1")
    futures = grid.info.select("vm_futures", host="c1")
    assert futures[0]["count"] == 3
    assert futures[0]["max_memory_mb"] == 256
    assert grid.vmm_for("c1") is not None
    assert grid.gram_for("c1") is not None


def test_publish_image_advertises():
    grid = VirtualGrid()
    grid.add_site("nw")
    grid.add_image_server("i1", site="nw")
    image = grid.publish_image("i1", "rh72", 1 * GB, warm_state_mb=64,
                               os_name="redhat-7.2")
    assert image.size_bytes == 1 * GB
    records = grid.info.select("images", image="rh72")
    assert records[0]["has_warm_state"] is True
    assert records[0]["os"] == "redhat-7.2"
    # The warm memory state exists on the server.
    server = grid.image_server_for("i1")
    assert server.fs.exists("rh72.memstate")


def test_registry_lookup_errors():
    grid = VirtualGrid()
    grid.add_site("uf")
    grid.add_compute_host("c1", site="uf")
    with pytest.raises(SimulationError):
        grid.vmm_for("ghost")
    with pytest.raises(SimulationError):
        grid.gram_for("ghost")
    with pytest.raises(SimulationError):
        grid.image_server_for("c1")       # wrong role
    with pytest.raises(SimulationError):
        grid.dhcp_for("nowhere")
    with pytest.raises(SimulationError):
        grid.data_server_for("c1")
    with pytest.raises(SimulationError):
        grid.machine_for("ghost")
    with pytest.raises(SimulationError):
        grid.host_for("ghost")
    with pytest.raises(SimulationError):
        grid.home_gateway_of("nobody")


def test_add_user_creates_home_site_and_gateway():
    grid = VirtualGrid()
    user = grid.add_user("ana")
    assert user.name == "ana"
    gateway = grid.home_gateway_of("ana")
    assert grid.network.has_host(gateway)
    assert grid.accounts.authorized("ana", "grid", "instantiate")


def test_data_server_property():
    grid = VirtualGrid()
    assert grid.data_server is None
    grid.add_site("nw")
    first = grid.add_data_server("d1", site="nw")
    grid.add_data_server("d2", site="nw")
    assert grid.data_server is first
    assert grid.data_server_for("d2") is not first


def test_image_proxy_shared_per_host_server_pair():
    grid = demo_grid()
    proxy_a = grid.image_proxy_for("compute1", "images1", 128 * 1024 * 1024)
    proxy_b = grid.image_proxy_for("compute1", "images1", 999)
    assert proxy_a is proxy_b  # cached; cache size from first call


def test_grid_repr():
    grid = demo_grid()
    text = repr(grid)
    assert "sites=" in text and "hosts=" in text


# ---------------------------------------------------------------------------
# format_table
# ---------------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["Name", "Value"],
                        [["alpha", 1.5], ["b", 22]],
                        title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1].startswith("Name")
    assert set(lines[2]) <= {"-", " "}
    assert "alpha" in lines[3]
    assert "1.50" in lines[3]   # floats formatted to 2 places
    assert "22" in lines[4]


def test_format_table_empty_rows():
    text = format_table(["A"], [])
    assert "A" in text
