"""Meta tests: the public API surface is importable and documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.simulation",
    "repro.hardware",
    "repro.guestos",
    "repro.vmm",
    "repro.storage",
    "repro.gridnet",
    "repro.middleware",
    "repro.scheduling",
    "repro.prediction",
    "repro.workloads",
    "repro.experiments",
    "repro.core",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, "%s lacks a docstring" % package_name
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), \
            "%s.__all__ names missing attribute %s" % (package_name, name)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(name)
    assert not undocumented, \
        "%s: undocumented public items %s" % (package_name, undocumented)


def test_flat_api_is_complete():
    from repro.core import api

    for name in api.__all__:
        assert hasattr(api, name), "api.__all__ names missing %s" % name
    # A representative cross-section actually is the same object.
    from repro.core import VirtualGrid
    assert api.VirtualGrid is VirtualGrid
    from repro.middleware import SessionConfig
    assert api.SessionConfig is SessionConfig


def test_public_class_methods_documented_samples():
    """Spot-check: every public method on the central classes has docs."""
    from repro.core.api import (
        GridSession,
        OperatingSystem,
        ProcessorSharingCpu,
        VirtualGrid,
        VirtualMachine,
        VirtualMachineMonitor,
    )

    for cls in (VirtualGrid, GridSession, VirtualMachine,
                VirtualMachineMonitor, OperatingSystem,
                ProcessorSharingCpu):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert inspect.getdoc(member), \
                    "%s.%s lacks a docstring" % (cls.__name__, name)
