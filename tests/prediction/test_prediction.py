"""Unit tests for the RPS-style prediction toolkit."""

import math
import random

import pytest

from repro.hardware import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.prediction import (
    ArPredictor,
    HostLoadSensor,
    LastValuePredictor,
    RunningTimePredictor,
    WindowedMeanPredictor,
    evaluate_predictor,
)
from repro.simulation import Simulation, SimulationError
from repro.workloads import HostLoadTrace


# ---------------------------------------------------------------------------
# Predictors
# ---------------------------------------------------------------------------

def test_last_value_predictor():
    p = LastValuePredictor().fit([1.0, 2.0, 3.0])
    assert p.predict(3) == [3.0, 3.0, 3.0]
    with pytest.raises(SimulationError):
        LastValuePredictor().predict()
    with pytest.raises(SimulationError):
        LastValuePredictor().fit([])


def test_windowed_mean_predictor():
    p = WindowedMeanPredictor(window=2).fit([10.0, 1.0, 3.0])
    assert p.predict(1) == [2.0]
    with pytest.raises(SimulationError):
        WindowedMeanPredictor(window=0)


def test_ar_predictor_learns_ar1_process():
    rng = random.Random(3)
    phi = 0.8
    values = [0.0]
    for _i in range(500):
        values.append(phi * values[-1] + rng.gauss(0, 0.1))
    p = ArPredictor(order=2).fit(values)
    forecast = p.predict(1)[0]
    assert forecast == pytest.approx(phi * values[-1], abs=0.15)


def test_ar_predictor_multi_step_decays_to_mean():
    # A strongly mean-reverting series: long forecasts approach the mean.
    values = [1.0, -1.0] * 100
    p = ArPredictor(order=2).fit(values)
    far = p.predict(50)[-1]
    assert abs(far) <= 1.0 + 1e-9


def test_ar_predictor_needs_enough_data():
    with pytest.raises(SimulationError):
        ArPredictor(order=8).fit([1.0, 2.0, 3.0])
    with pytest.raises(SimulationError):
        ArPredictor(order=0)
    with pytest.raises(SimulationError):
        ArPredictor(order=2).predict()


def test_evaluate_predictor_ranks_models_on_autocorrelated_load():
    """On AR-ish host load, AR beats the windowed mean (RPS's result)."""
    rng = random.Random(9)
    trace = HostLoadTrace.synthetic(1.0, rng, length=400,
                                    autocorrelation=0.95)
    mse_ar = evaluate_predictor(lambda: ArPredictor(order=4),
                                trace.values, warmup=50)
    mse_mean = evaluate_predictor(lambda: WindowedMeanPredictor(window=32),
                                  trace.values, warmup=50)
    assert mse_ar < mse_mean


def test_evaluate_predictor_validation():
    with pytest.raises(SimulationError):
        evaluate_predictor(LastValuePredictor, [1.0, 2.0], warmup=16)


# ---------------------------------------------------------------------------
# Sensor
# ---------------------------------------------------------------------------

def test_host_load_sensor_samples_run_queue():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    sensor = HostLoadSensor(cpu, period=1.0)
    sensor.start()
    cpu.submit(CpuTask("a", work=5.0))
    cpu.submit(CpuTask("b", work=5.0))
    sim.run(until=20.0)
    sensor.stop()
    assert len(sensor.series) == 20
    # Two runnable tasks for the first ~10 s, none afterwards.
    assert sensor.series[2] == pytest.approx(2.0)
    assert sensor.series[-1] == pytest.approx(0.0)


def test_group_sensor_measures_vm_share():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm = TaskGroup("vm")
    sensor = HostLoadSensor(cpu, period=1.0, group=vm)
    sensor.start()
    cpu.submit(CpuTask("guest", work=100.0, group=vm))
    cpu.submit(CpuTask("native", work=100.0))
    sim.run(until=5.0)
    sensor.stop()
    assert sensor.series[-1] == pytest.approx(0.5)


def test_sensor_validation():
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim)
    with pytest.raises(SimulationError):
        HostLoadSensor(cpu, period=0.0)
    sensor = HostLoadSensor(cpu)
    sensor.start()
    with pytest.raises(SimulationError):
        sensor.start()


# ---------------------------------------------------------------------------
# Running-time prediction
# ---------------------------------------------------------------------------

def test_dilation_model():
    rtp = RunningTimePredictor(LastValuePredictor, cores=1)
    assert rtp.dilation(0.0) == pytest.approx(1.0)
    assert rtp.dilation(1.0) == pytest.approx(2.0)
    rtp2 = RunningTimePredictor(LastValuePredictor, cores=2)
    assert rtp2.dilation(1.0) == pytest.approx(1.0)   # second core absorbs
    assert rtp2.dilation(3.0) == pytest.approx(2.0)


def test_predict_running_time_on_idle_host():
    rtp = RunningTimePredictor(LastValuePredictor, cores=1)
    assert rtp.predict_running_time(10.0, [0.0] * 5) == pytest.approx(10.0)


def test_predict_running_time_on_loaded_host():
    rtp = RunningTimePredictor(LastValuePredictor, cores=1)
    predicted = rtp.predict_running_time(10.0, [1.0] * 5)
    assert predicted == pytest.approx(20.0)


def test_predict_running_time_validation():
    rtp = RunningTimePredictor(LastValuePredictor)
    assert rtp.predict_running_time(0.0, [1.0]) == 0.0
    with pytest.raises(SimulationError):
        rtp.predict_running_time(-1.0, [1.0])
    with pytest.raises(SimulationError):
        RunningTimePredictor(LastValuePredictor, cores=0)


def test_rank_hosts_prefers_idle_machine():
    rtp = RunningTimePredictor(LastValuePredictor, cores=1)
    ranking = rtp.rank_hosts(10.0, {
        "busy": [2.0] * 8,
        "idle": [0.1] * 8,
        "medium": [0.8] * 8,
    })
    assert ranking == ["idle", "medium", "busy"]


def test_prediction_matches_simulation():
    """End to end: predicted wall time tracks the simulated outcome."""
    sim = Simulation()
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    # Steady background load of 1.0 (one competing task).
    cpu.submit(CpuTask("background", work=10_000.0))
    sensor = HostLoadSensor(cpu, period=1.0)
    sensor.start()
    sim.run(until=30.0)
    # The run queue (1.0: the background task) is the other-work load a
    # newly arriving job will compete with.
    history = list(sensor.series)

    task = CpuTask("job", work=20.0)
    cpu.submit(task)
    sim.run(until=30.0 + 200.0)
    actual = task.finished_at - task.started_at
    rtp = RunningTimePredictor(LastValuePredictor, cores=1)
    predicted = rtp.predict_running_time(20.0, history)
    assert predicted == pytest.approx(actual, rel=0.1)
