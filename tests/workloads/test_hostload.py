"""Unit tests for host-load traces and playback."""

import random

import pytest

from repro.simulation import Simulation, SimulationError
from repro.workloads import HostLoadTrace, LoadPlayback, synthetic_compute
from tests.support import booted_host_os, physical_rig, run


# ---------------------------------------------------------------------------
# HostLoadTrace
# ---------------------------------------------------------------------------

def test_trace_basics():
    trace = HostLoadTrace([0.5, 1.0, 0.0], interval=2.0)
    assert len(trace) == 3
    assert trace.duration == 6.0
    assert trace.mean == pytest.approx(0.5)


def test_trace_validation():
    with pytest.raises(SimulationError):
        HostLoadTrace([1.0], interval=0.0)
    with pytest.raises(SimulationError):
        HostLoadTrace([-0.1])


def test_value_at_wraps():
    trace = HostLoadTrace([1.0, 2.0], interval=1.0)
    assert trace.value_at(0.5) == 1.0
    assert trace.value_at(1.5) == 2.0
    assert trace.value_at(2.5) == 1.0  # wraps around


def test_none_trace_is_idle():
    trace = HostLoadTrace.none()
    assert trace.mean == 0.0


def test_synthetic_trace_hits_target_mean():
    rng = random.Random(7)
    trace = HostLoadTrace.synthetic(1.0, rng, length=5000)
    assert trace.mean == pytest.approx(1.0, rel=0.25)
    assert all(v >= 0 for v in trace.values)


def test_synthetic_trace_is_autocorrelated():
    rng = random.Random(7)
    trace = HostLoadTrace.synthetic(1.0, rng, length=3000,
                                    autocorrelation=0.9)
    values = trace.values
    mean = trace.mean
    num = sum((a - mean) * (b - mean)
              for a, b in zip(values, values[1:]))
    den = sum((v - mean) ** 2 for v in values)
    assert num / den > 0.5  # strong lag-1 autocorrelation


def test_light_lighter_than_heavy():
    rng1, rng2 = random.Random(1), random.Random(1)
    light = HostLoadTrace.light(rng1, length=2000)
    heavy = HostLoadTrace.heavy(rng2, length=2000)
    assert heavy.mean > 3 * light.mean


def test_synthetic_validation():
    rng = random.Random(0)
    with pytest.raises(SimulationError):
        HostLoadTrace.synthetic(-1.0, rng)
    with pytest.raises(SimulationError):
        HostLoadTrace.synthetic(1.0, rng, autocorrelation=1.0)


# ---------------------------------------------------------------------------
# LoadPlayback
# ---------------------------------------------------------------------------

def test_playback_injects_expected_work():
    sim = Simulation()
    _machine, host = physical_rig(sim, cores=4)
    os = booted_host_os(sim, host)
    trace = HostLoadTrace([1.0] * 10, interval=1.0)
    playback = LoadPlayback(os, trace)
    injected = run(sim, playback.run(10.0))
    assert injected == pytest.approx(10.0)
    sim.run()  # drain remaining bursts
    # The machine actually consumed that CPU.
    consumed = sum(r.user_time for r in os.results)
    assert consumed == pytest.approx(10.0, rel=0.01)


def test_playback_zero_load_spawns_nothing():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    playback = LoadPlayback(os, HostLoadTrace.none(length=5))
    injected = run(sim, playback.run(5.0))
    assert injected == 0.0
    assert os.results == []


def test_playback_fractional_load_single_burst_per_interval():
    sim = Simulation()
    _machine, host = physical_rig(sim, cores=2)
    os = booted_host_os(sim, host)
    playback = LoadPlayback(os, HostLoadTrace([0.5] * 4, interval=1.0))
    run(sim, playback.run(4.0))
    sim.run()
    assert len(os.results) == 4


def test_playback_heavy_load_multiple_bursts():
    sim = Simulation()
    _machine, host = physical_rig(sim, cores=4)
    os = booted_host_os(sim, host)
    playback = LoadPlayback(os, HostLoadTrace([2.5] * 2, interval=1.0))
    run(sim, playback.run(2.0))
    sim.run()
    # ceil(2.5) = 3 bursts per interval.
    assert len(os.results) == 6


def test_playback_slows_down_competing_task():
    def task_time(load):
        sim = Simulation()
        _machine, host = physical_rig(sim, cores=1)
        os = booted_host_os(sim, host)
        playback = LoadPlayback(os, HostLoadTrace([load] * 300,
                                                  interval=1.0))
        sim.spawn(playback.run(300.0))
        result = run(sim, os.run_application(synthetic_compute(20.0)))
        return result.wall_time

    assert task_time(1.0) > 1.5 * task_time(0.0)
