"""Unit tests for the application model and SPEC-like workloads."""

import pytest

from repro.simulation import SimulationError
from repro.workloads import (
    Application,
    ComputePhase,
    IoPhase,
    KernelEventRates,
    micro_test_task,
    spec_climate,
    spec_seis,
    synthetic_compute,
)


def test_kernel_event_rates_validation():
    with pytest.raises(SimulationError):
        KernelEventRates(syscalls_per_sec=-1)
    with pytest.raises(SimulationError):
        KernelEventRates(pagefaults_per_sec=-1)


def test_compute_phase_validation():
    with pytest.raises(SimulationError):
        ComputePhase(-1.0)
    with pytest.raises(SimulationError):
        ComputePhase(1.0, sys_seconds=-1.0)


def test_io_phase_validation():
    with pytest.raises(SimulationError):
        IoPhase("/x", -1)


def test_application_needs_phases():
    with pytest.raises(SimulationError):
        Application("empty", [])


def test_application_totals():
    app = Application("t", [
        ComputePhase(10.0, 2.0),
        IoPhase("/a", 100),
        ComputePhase(5.0, 1.0),
        IoPhase("/b", 200, write=True),
    ])
    assert app.total_user_seconds == pytest.approx(15.0)
    assert app.total_sys_seconds == pytest.approx(3.0)
    assert app.total_io_bytes == 300


def test_spec_seis_matches_paper_profile():
    app = spec_seis()
    assert app.total_user_seconds == pytest.approx(16395.0)
    assert app.total_sys_seconds == pytest.approx(19.0)
    assert app.input_files  # has a trace deck


def test_spec_climate_matches_paper_profile():
    app = spec_climate()
    assert app.total_user_seconds == pytest.approx(9304.0)
    assert app.total_sys_seconds == pytest.approx(3.0)


def test_spec_climate_faults_more_than_seis():
    """The 4% vs 1% VM dilation difference comes from fault rates."""
    seis_rate = max(p.rates.pagefaults_per_sec for p in spec_seis().phases
                    if isinstance(p, ComputePhase))
    climate_rate = max(p.rates.pagefaults_per_sec
                       for p in spec_climate().phases
                       if isinstance(p, ComputePhase))
    assert climate_rate > 4 * seis_rate


def test_scale_preserves_ratios():
    full = spec_seis(1.0)
    tiny = spec_seis(0.01)
    assert tiny.total_user_seconds == pytest.approx(
        full.total_user_seconds * 0.01)
    ratio_full = full.total_sys_seconds / full.total_user_seconds
    ratio_tiny = tiny.total_sys_seconds / tiny.total_user_seconds
    assert ratio_full == pytest.approx(ratio_tiny)


def test_scale_validation():
    with pytest.raises(SimulationError):
        spec_seis(0.0)
    with pytest.raises(SimulationError):
        spec_climate(-1.0)


def test_synthetic_compute():
    app = synthetic_compute(3.0)
    assert app.total_user_seconds == pytest.approx(3.0)
    assert app.total_io_bytes == 0
    with pytest.raises(SimulationError):
        synthetic_compute(0.0)


def test_micro_test_task_is_compute_bound():
    app = micro_test_task(2.0)
    assert app.total_user_seconds == pytest.approx(2.0)
    assert app.total_sys_seconds == 0.0
    with pytest.raises(SimulationError):
        micro_test_task(0.0)
