"""Shared fixtures/builders for the test suite."""

from repro.guestos import GuestOsProfile, OperatingSystem, PhysicalHost
from repro.hardware import MachineSpec, PhysicalMachine
from repro.simulation import Simulation
from repro.vmm import DiskImage, VirtualMachineMonitor, VmConfig

#: A small, fast boot profile for tests (full-size boots live in benches).
TINY_GUEST = GuestOsProfile(
    kernel_read_bytes=2 * 1024 * 1024,
    scattered_reads=80,
    scattered_read_bytes=32 * 1024,
    boot_cpu_user=0.5,
    boot_cpu_sys=0.5,
    boot_jitter=0.0,
    boot_footprint_bytes=64 * 1024 * 1024,
)

GB = 1024 ** 3
MB = 1024 ** 2


def physical_rig(sim: Simulation, name: str = "host1", cores: int = 2,
                 disk_rate: float = 20e6, cache_bytes: float = 256 * MB):
    """A physical machine with an attached host interface + root FS."""
    spec = MachineSpec(cores=cores, disk_transfer_rate=disk_rate)
    machine = PhysicalMachine(sim, name, spec=spec)
    host = PhysicalHost(machine, cache_bytes=cache_bytes)
    return machine, host


def booted_host_os(sim: Simulation, host) -> OperatingSystem:
    """A host operating system, mounted on the host root FS and 'booted'."""
    os = OperatingSystem(host, name="host-linux")
    os.mount("/", host.root_fs)
    os.mark_booted()
    return os


def vm_rig(sim: Simulation, host=None, image_size: int = 1 * GB,
           disk_mode: str = "nonpersistent", vm_name: str = "vm1",
           memory_mb: int = 128, profile: GuestOsProfile = TINY_GUEST):
    """A VMM on a host plus one defined VM over a local image."""
    if host is None:
        _machine, host = physical_rig(sim)
    vmm = VirtualMachineMonitor(host)
    image = DiskImage(host.root_fs, "rh72.img", image_size, create=True)
    config = VmConfig(vm_name, memory_mb=memory_mb, guest_profile=profile)
    vm = vmm.create_vm(config, image, disk_mode=disk_mode)
    return vmm, image, vm


def run(sim: Simulation, generator):
    """Spawn a generator and run the simulation to its completion."""
    return sim.run_until_complete(sim.spawn(generator))


def demo_grid(seed: int = 0, image_size: int = 1 * GB,
              warm_state_mb: int = 128):
    """A two-site grid: compute at 'uf', image + data servers at 'nw'."""
    from repro.core import VirtualGrid

    grid = VirtualGrid(seed=seed)
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("compute1", site="uf")
    grid.add_image_server("images1", site="nw")
    grid.publish_image("images1", "rh72", image_size,
                       warm_state_mb=warm_state_mb)
    grid.add_data_server("data1", site="nw")
    grid.add_user("ana")
    return grid


def tiny_session_config(**overrides):
    """A SessionConfig using the fast test guest profile."""
    from repro.middleware import SessionConfig

    defaults = dict(user="ana", image="rh72", guest_profile=TINY_GUEST)
    defaults.update(overrides)
    return SessionConfig(**defaults)
