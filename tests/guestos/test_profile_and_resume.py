"""Tests for guest-OS profiles, resume, and playback saturation."""

import pytest

from repro.guestos import GuestOsProfile, OperatingSystem, OsCosts
from repro.simulation import Simulation, SimulationError
from repro.workloads import HostLoadTrace, LoadPlayback
from tests.support import booted_host_os, physical_rig, run


# ---------------------------------------------------------------------------
# GuestOsProfile
# ---------------------------------------------------------------------------

def test_profile_validation():
    with pytest.raises(SimulationError):
        GuestOsProfile(scattered_reads=-1)
    with pytest.raises(SimulationError):
        GuestOsProfile(kernel_read_bytes=-1)
    with pytest.raises(SimulationError):
        GuestOsProfile(boot_jitter=1.0)
    with pytest.raises(SimulationError):
        GuestOsProfile(timer_hz=-1.0)


def test_total_boot_read_bytes():
    profile = GuestOsProfile(kernel_read_bytes=10_000_000,
                             scattered_reads=100,
                             scattered_read_bytes=1000)
    assert profile.total_boot_read_bytes == 10_100_000


def test_os_costs_validation():
    with pytest.raises(SimulationError):
        OsCosts(syscall=-1.0)
    with pytest.raises(SimulationError):
        OsCosts(quantum=0.0)


# ---------------------------------------------------------------------------
# resume()
# ---------------------------------------------------------------------------

def test_resume_marks_booted_and_costs_cpu():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host)
    os.mount("/", host.root_fs)
    assert not os.booted
    run(sim, os.resume())
    assert os.booted
    assert sim.now > 0  # resume CPU was consumed


def test_boot_jitter_varies_durations():
    durations = set()
    for seed in range(4):
        import random
        sim = Simulation()
        _machine, host = physical_rig(sim)
        profile = GuestOsProfile(kernel_read_bytes=4 * 1024 * 1024,
                                 scattered_reads=200,
                                 boot_cpu_user=2.0, boot_cpu_sys=2.0,
                                 boot_jitter=0.2,
                                 boot_footprint_bytes=64 * 1024 * 1024)
        os = OperatingSystem(host, profile=profile,
                             rng=random.Random(seed))
        os.mount("/", host.root_fs)
        os.install()
        durations.add(round(run(sim, os.boot()), 3))
    assert len(durations) > 1


# ---------------------------------------------------------------------------
# Playback under saturation
# ---------------------------------------------------------------------------

def test_playback_drops_excess_on_saturated_machine():
    """A mean-2.0 trace cannot fit on one core: the playback holds the
    queue steady and reports the dropped work instead of diverging."""
    sim = Simulation()
    _machine, host = physical_rig(sim, cores=1)
    os = booted_host_os(sim, host)
    playback = LoadPlayback(os, HostLoadTrace([2.0] * 60, interval=1.0))
    injected = run(sim, playback.run(60.0))
    assert playback.work_dropped > 0
    assert injected + playback.work_dropped == pytest.approx(120.0)
    # Injection stabilizes near the machine's capacity (1 CPU-s/s),
    # rather than queueing unboundedly.
    assert injected < 90.0
