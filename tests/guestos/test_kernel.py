"""Unit tests for the operating-system model on physical hardware."""

import pytest

from repro.guestos import GuestOsProfile, OperatingSystem, OsCosts
from repro.simulation import Simulation, SimulationError
from repro.storage import StorageError
from repro.workloads import (
    Application,
    ComputePhase,
    IoPhase,
    KernelEventRates,
    synthetic_compute,
)
from tests.support import booted_host_os, physical_rig, run


def test_mount_and_resolve_longest_prefix():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host)
    os.mount("/", host.root_fs)
    other = object()

    class FakeFs:
        pass

    fake = FakeFs()
    os.mount("/data", fake)
    fs, _path = os.resolve("/data/input.bin")
    assert fs is fake
    fs, _path = os.resolve("/etc/passwd")
    assert fs is host.root_fs


def test_mount_validation():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host)
    with pytest.raises(SimulationError):
        os.mount("relative", host.root_fs)
    os.mount("/", host.root_fs)
    with pytest.raises(SimulationError):
        os.mount("/", host.root_fs)


def test_unmount():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host)
    os.mount("/", host.root_fs)
    os.unmount("/")
    with pytest.raises(StorageError):
        os.resolve("/anything")
    with pytest.raises(SimulationError):
        os.unmount("/")


def test_run_application_requires_boot():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host)
    os.mount("/", host.root_fs)
    with pytest.raises(SimulationError):
        run(sim, os.run_application(synthetic_compute(1.0)))


def test_compute_accounting_on_physical_is_exact():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    app = Application("job", [ComputePhase(10.0, 2.0,
                                           KernelEventRates(1000.0, 500.0))])
    result = run(sim, os.run_application(app))
    # Physical hardware: kernel-event rates cost nothing extra.
    assert result.user_time == pytest.approx(10.0)
    assert result.sys_time == pytest.approx(2.0)
    assert result.wall_time == pytest.approx(12.0)
    assert result.cpu_time == pytest.approx(12.0)


def test_io_phase_moves_time_and_charges_sys():
    sim = Simulation()
    _machine, host = physical_rig(sim, disk_rate=10e6)
    os = booted_host_os(sim, host)
    nbytes = 10_000_000
    app = Application("reader", [IoPhase("/data/in", nbytes)],
                      input_files={"/data/in": nbytes})
    result = run(sim, os.run_application(app))
    assert result.io_bytes == nbytes
    # Wall time at least the disk streaming time.
    assert result.wall_time >= nbytes / 10e6
    # Sys time from the native I/O path cost model.
    assert result.sys_time > 0
    assert result.user_time == 0.0


def test_io_write_phase_creates_output():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    app = Application("writer", [IoPhase("/out/result", 1_000_000,
                                         write=True)])
    run(sim, os.run_application(app))
    assert host.root_fs.exists("/out/result")


def test_input_files_provisioned_once():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    app = Application("job", [IoPhase("/data/in", 1000)],
                      input_files={"/data/in": 1000})
    run(sim, os.run_application(app))
    run(sim, os.run_application(app))
    assert len(os.results) == 2


def test_results_recorded_in_order():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    run(sim, os.run_application(synthetic_compute(1.0, name="first")))
    run(sim, os.run_application(synthetic_compute(1.0, name="second")))
    assert [r.name for r in os.results] == ["first", "second"]


def test_two_applications_share_cpu():
    sim = Simulation()
    _machine, host = physical_rig(sim, cores=1)
    os = booted_host_os(sim, host)
    sim.spawn(os.run_application(synthetic_compute(5.0, name="a")))
    sim.spawn(os.run_application(synthetic_compute(5.0, name="b")))
    sim.run()
    # ~10 s each (plus a tiny context-switch tax while time-sliced).
    assert all(r.wall_time == pytest.approx(10.0, rel=0.01)
               for r in os.results)
    assert all(r.wall_time >= 10.0 for r in os.results)
    assert all(r.user_time == pytest.approx(5.0) for r in os.results)


def test_boot_requires_install():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = OperatingSystem(host, profile=GuestOsProfile(boot_jitter=0.0))
    os.mount("/", host.root_fs)
    with pytest.raises(StorageError):
        run(sim, os.boot())


def test_boot_reads_and_computes():
    sim = Simulation()
    _machine, host = physical_rig(sim, disk_rate=20e6)
    profile = GuestOsProfile(kernel_read_bytes=4 * 1024 * 1024,
                             scattered_reads=100,
                             scattered_read_bytes=32768,
                             boot_cpu_user=1.0, boot_cpu_sys=1.0,
                             boot_jitter=0.0,
                             boot_footprint_bytes=64 * 1024 * 1024)
    os = OperatingSystem(host, profile=profile)
    os.mount("/", host.root_fs)
    os.install()
    duration = run(sim, os.boot())
    assert os.booted
    assert duration == pytest.approx(os.boot_duration)
    # At least the CPU part plus 100 seeks.
    assert duration > 2.0 + 100 * 0.004 * 0.5


def test_double_boot_rejected():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    with pytest.raises(SimulationError):
        run(sim, os.boot())


def test_shutdown_then_not_booted():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    run(sim, os.shutdown())
    assert not os.booted
    with pytest.raises(SimulationError):
        run(sim, os.shutdown())


def test_os_costs_io_model():
    costs = OsCosts(syscall=1e-6, io_cpu_per_byte=1e-9)
    assert costs.io_sys_seconds(1000, 10) == pytest.approx(1e-5 + 1e-6)


def test_provision_file():
    sim = Simulation()
    _machine, host = physical_rig(sim)
    os = booted_host_os(sim, host)
    os.provision_file("/var/data", 12345)
    assert host.root_fs.size("/var/data") == 12345
