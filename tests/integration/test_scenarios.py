"""Cross-subsystem integration scenarios.

Each test combines several of the paper's mechanisms the way a real
deployment would — sessions + consoles + scheduling + metering +
archival — and checks that their interactions behave physically.
"""

import pytest

from repro.hardware import CpuTask
from repro.middleware import TapeArchive, UsageMeter, VncConsole
from repro.scheduling import InteractivePolicyDaemon, parse_constraints
from repro.vmm import VmState
from repro.workloads import synthetic_compute
from tests.support import TINY_GUEST, demo_grid, tiny_session_config


def established(grid=None, **overrides):
    grid = grid or demo_grid()
    session = grid.new_session(tiny_session_config(**overrides))
    grid.run(session.establish())
    return grid, session


def test_console_stalls_during_hibernation():
    """An interactive user feels a hibernate/wake cycle as one long
    keystroke — the latency cost of treating machines as data."""
    grid, session = established()
    grid.add_compute_host("desk", site="uf")
    console = VncConsole(grid, session.vm, "desk")
    grid.run(console.typing_burst(count=3, think_time=0.01))
    baseline = console.latency.mean

    grid.run(session.hibernate())
    stroke = grid.sim.spawn(console.keystroke())
    hibernated_at = grid.sim.now
    grid.sim.run(until=hibernated_at + 30.0)
    assert stroke.is_alive                     # stuck: guest is frozen
    grid.run(session.wake())
    rtt = grid.sim.run_until_complete(stroke)
    assert rtt > 30.0                          # the whole frozen window
    assert rtt > 100 * baseline


def test_owner_policy_throttles_grid_session():
    """The desktop-owner story end to end: a grid VM on an owner's
    machine is throttled the moment the owner starts working."""
    grid, session = established(host_constraints={"host": "compute1"})
    cpu = session.vmm.machine.cpu
    policy = parse_constraints("limit cpu 0.9\nlimit cpu 0.1 "
                               "when interactive")
    daemon = InteractivePolicyDaemon(cpu, [session.vm.group], policy,
                                     poll_interval=0.2)
    daemon.start()

    job = grid.sim.spawn(session.run_application(synthetic_compute(60.0)))
    start = grid.sim.now
    grid.sim.run(until=start + 10.0)

    # Owner sits down for 30 seconds of editing.
    owner = CpuTask("owner-editing", work=4.0, max_rate=0.2)
    cpu.submit(owner)
    grid.sim.run(until=start + 40.0)
    assert daemon.transitions >= 1
    grid.sim.run_until_complete(job)
    wall = grid.sim.now - start
    # 60s of work: ~10s nearly full speed, ~20-30s at 10%, rest at 90%:
    # far slower than unthrottled but it did finish.
    assert wall > 70.0
    daemon.stop()


def test_two_users_billed_separately():
    """A CPU-server provider meters two tenants independently."""
    grid = demo_grid()
    grid.add_user("bob")
    s1 = grid.new_session(tiny_session_config(vm_name="ana-vm"))
    s2 = grid.new_session(tiny_session_config(user="bob",
                                              vm_name="bob-vm"))
    grid.run(s1.establish())
    grid.run(s2.establish())
    meter = UsageMeter(s1.vmm.machine.cpu, "compute1",
                       rate_per_cpu_hour=3600.0)
    meter.open_account(s1.vm.group, "ana-vm", "ana")
    meter.open_account(s2.vm.group, "bob-vm", "bob")
    j1 = grid.sim.spawn(s1.run_application(synthetic_compute(20.0)))
    j2 = grid.sim.spawn(s2.run_application(synthetic_compute(10.0)))
    grid.sim.run()
    assert not j1.is_alive and not j2.is_alive
    r1 = meter.close_account(s1.vm.group)
    r2 = meter.close_account(s2.vm.group)
    assert r1.cpu_seconds == pytest.approx(20.0, rel=0.05)
    assert r2.cpu_seconds == pytest.approx(10.0, rel=0.05)
    assert meter.invoice("ana") > meter.invoice("bob")


def test_hibernate_archive_revive_then_migrate():
    """The full life cycle: run, hibernate, go to tape, come back,
    migrate to another site, finish."""
    grid = demo_grid()
    grid.add_compute_host("compute2", site="nw")
    session = grid.new_session(tiny_session_config(
        host_constraints={"host": "compute1"}))
    grid.run(session.establish())
    job = grid.sim.spawn(session.run_application(synthetic_compute(40.0)))
    grid.sim.run(until=grid.sim.now + 10.0)

    grid.run(session.hibernate())
    tape = TapeArchive(grid.sim, mount_time=5.0)
    grid.run(session.archive_to(tape))
    # A week passes (simulated); the user comes back.
    grid.sim.run(until=grid.sim.now + 1000.0)
    grid.run(session.revive_from(tape))
    assert session.vm.state is VmState.RUNNING

    grid.run(session.migrate_to("compute2"))
    assert session.vm.vmm.machine.name == "compute2"
    grid.sim.run_until_complete(job)
    result = session.guest_os.results[-1]
    assert result.user_time > 40.0 * 0.99
    assert "/home/ana" in session.guest_os.mounts


def test_info_service_tracks_vm_through_migration():
    grid = demo_grid()
    grid.add_compute_host("compute2", site="nw")
    session = grid.new_session(tiny_session_config(
        host_constraints={"host": "compute1"}))
    grid.run(session.establish())
    record = grid.info.select("vms", name=session.vm.name)[0]
    assert record["host"] == "compute1"
    grid.run(session.migrate_to("compute2"))
    record = grid.info.select("vms", name=session.vm.name)[0]
    assert record["host"] == "compute2"
    assert record["site"] == "nw"


def test_dhcp_pool_exhaustion_bounds_site_vms():
    """The site's address pool is a real capacity limit for scenario-1
    networking."""
    grid = demo_grid()
    # Shrink the uf pool to 1 address.
    from repro.gridnet import DhcpServer
    grid._sites["uf"] = DhcpServer(grid.sim, subnet="10.9.0", pool_size=1)
    s1 = grid.new_session(tiny_session_config(vm_name="vm-a"))
    grid.run(s1.establish())
    s2 = grid.new_session(tiny_session_config(vm_name="vm-b"))
    from repro.gridnet import NoAddressAvailable
    with pytest.raises(NoAddressAvailable):
        grid.run(s2.establish())
    # Releasing the first VM's lease frees the address for a retry.
    grid.run(s1.shutdown())
    s3 = grid.new_session(tiny_session_config(vm_name="vm-c"))
    grid.run(s3.establish())
    assert s3.vm.address.startswith("10.9.0.")
