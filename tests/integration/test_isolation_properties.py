"""Section 2.2's qualitative claims, demonstrated as invariants.

"Security and isolation", "Customization", "Administrator privileges",
"Resource control", "Site-independence" — each argued qualitatively in
the paper, each checkable mechanically here.
"""

import pytest

from repro.guestos import GuestOsProfile
from repro.workloads import (
    Application,
    IoPhase,
    architecture_simulation,
    device_simulation,
    synthetic_compute,
)
from tests.support import MB, TINY_GUEST, demo_grid, tiny_session_config


def two_user_grid():
    grid = demo_grid()
    grid.add_user("mallory")
    good = grid.new_session(tiny_session_config(vm_name="ana-vm"))
    evil = grid.new_session(tiny_session_config(user="mallory",
                                                vm_name="mallory-vm"))
    grid.run(good.establish())
    grid.run(evil.establish())
    return grid, good, evil


def test_filesystem_isolation_between_vms():
    """A malicious user 'can only compromise their own operating system
    within a virtual machine' — the guests share no file namespace."""
    grid, good, evil = two_user_grid()
    # Mallory fills her guest with garbage.
    vandalism = Application("rm-rf", [IoPhase("/etc/passwd", 1 * MB,
                                              write=True)])
    grid.run(evil.run_application(vandalism))
    # Ana's guest has no such file; Mallory's writes landed in her own
    # guest FS and her own copy-on-write diff only.
    assert not good.guest_os.resolve("/etc/passwd")[0].exists(
        "/etc/passwd")
    assert evil.vm.vdisk.diff_bytes > 0
    assert good.vm.vdisk.diff_bytes == 0
    # The shared master image was never written.
    image_fs = grid.image_server_for("images1").fs
    assert image_fs.size("rh72") == good.vm.vdisk.base.size_bytes


def test_host_filesystem_protected_from_guests():
    """Guest writes never reach the host's namespace directly — only
    the VM's own diff file grows."""
    grid, good, _evil = two_user_grid()
    host_fs = good.vmm.host.root_fs
    files_before = set(host_fs.listdir())
    grid.run(good.run_application(
        Application("w", [IoPhase("/anywhere", 4 * MB, write=True)])))
    new_files = set(host_fs.listdir()) - files_before
    # At most the VM's own diff appeared; no foreign host files.
    assert new_files <= {good.vm.vdisk.diff_name}


def test_resource_isolation_under_attack():
    """A fork-bomb in Mallory's VM cannot starve Ana's VM below its
    fair share: VMs compete as single entities."""
    grid, good, evil = two_user_grid()
    # Mallory spawns many concurrent hogs inside her guest.
    for i in range(6):
        grid.sim.spawn(evil.guest_os.run_application(
            synthetic_compute(500.0, name="hog%d" % i)))
    start = grid.sim.now
    result = grid.run(good.run_application(synthetic_compute(10.0)))
    # Dual-core host, two VM entities: Ana still gets a full core.
    assert result.wall_time < 10.0 * 1.10


def test_root_in_guest_is_harmless():
    """'It is then possible to grant root privileges to untrusted grid
    applications' — root inside the guest touches nothing outside."""
    grid, good, evil = two_user_grid()
    host_files_before = set(good.vmm.host.root_fs.listdir())
    result = grid.run(evil.run_application(
        Application("rootkit", [IoPhase("/boot/system", 1 * MB,
                                        write=True)]),
        ))
    assert result is not None
    # Host untouched except possibly Mallory's own diff growth.
    after = set(good.vmm.host.root_fs.listdir())
    assert after - host_files_before <= {evil.vm.vdisk.diff_name}


def test_guest_user_identity_decoupled_from_owner():
    """In-guest identities are arbitrary; accounting still binds the VM
    to its logical owner."""
    grid, good, _evil = two_user_grid()
    result = grid.run(good.guest_os.run_application(
        synthetic_compute(1.0), guest_user="root"))
    assert result.guest_user == "root"
    assert good.vm.owner == "ana"           # middleware-level identity


def test_customization_per_user_virtual_hardware():
    """'Virtual machines can be highly customized without requiring
    system restarts': two VMs with different memory/OS on one host."""
    grid = demo_grid()
    big_profile = GuestOsProfile(name="redhat-7.1",
                                 kernel_read_bytes=TINY_GUEST
                                 .kernel_read_bytes,
                                 scattered_reads=TINY_GUEST.scattered_reads,
                                 scattered_read_bytes=TINY_GUEST
                                 .scattered_read_bytes,
                                 boot_cpu_user=0.5, boot_cpu_sys=0.5,
                                 boot_jitter=0.0,
                                 boot_footprint_bytes=64 * MB)
    small = grid.new_session(tiny_session_config(vm_name="small-vm",
                                                 memory_mb=64))
    big = grid.new_session(tiny_session_config(
        vm_name="big-vm", memory_mb=256, guest_profile=big_profile))
    grid.run(small.establish())
    grid.run(big.establish())
    assert small.vm.config.memory_mb == 64
    assert big.vm.config.memory_mb == 256
    assert small.vmm is big.vmm              # same physical machine
    assert big.vm.guest_os.name == "redhat-7.1"
    assert small.vm.guest_os.name == "redhat-7.2"


def test_site_independence_same_image_either_site():
    """'A VM guest presents a consistent run-time environment regardless
    of the software configuration of the VM host'."""
    grid = demo_grid()
    grid.add_compute_host("compute2", site="nw")
    app = device_simulation(hours=0.002)
    results = {}
    for host in ("compute1", "compute2"):
        session = grid.new_session(tiny_session_config(
            vm_name="vm-on-" + host, host_constraints={"host": host}))
        grid.run(session.establish())
        results[host] = grid.run(session.run_application(app))
    # Identical environment: identical user/sys accounting on both
    # hosts (wall differs with WAN distance to the image server).
    assert results["compute1"].user_time == pytest.approx(
        results["compute2"].user_time)
    assert results["compute1"].sys_time == pytest.approx(
        results["compute2"].sys_time, rel=0.01)


def test_punch_workloads_profiles():
    arch = architecture_simulation(hours=0.5)
    device = device_simulation(hours=0.5)
    assert arch.total_user_seconds == pytest.approx(0.5 * 3600 * 0.995,
                                                    rel=0.01)
    assert device.total_io_bytes == 12 * MB
    # Device simulation faults harder than the architecture simulator.
    from repro.workloads import ComputePhase
    arch_rate = max(p.rates.pagefaults_per_sec for p in arch.phases
                    if isinstance(p, ComputePhase))
    device_rate = max(p.rates.pagefaults_per_sec for p in device.phases
                      if isinstance(p, ComputePhase))
    assert device_rate > 2 * arch_rate
    with pytest.raises(Exception):
        architecture_simulation(hours=0.0)
    with pytest.raises(Exception):
        device_simulation(hours=-1.0)
