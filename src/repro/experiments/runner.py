"""Deterministic parallel replication runner.

The paper's quantitative artifacts are embarrassingly parallel: every
replication (a Figure 1 scenario, one Table 2 startup sample, one
ablation world) builds its own :class:`~repro.simulation.kernel.
Simulation` from its own seed and never touches another replication's
state.  This module fans those replications across a
:mod:`multiprocessing` pool while keeping the repo's hard determinism
invariant: **the results are a pure function of the root seed** —
never of the worker count, worker identity, host core count or
completion order.

Three rules make that true:

* **Seeds come from the task, not the worker.**  Each replication's
  seed is supplied by the caller (or derived with
  :func:`replication_seeds` from :meth:`RandomStreams.spawn_key`),
  indexed by the replication's position.  Nothing here reads
  ``os.cpu_count()`` or a worker id — simlint rule R10 enforces this
  repo-wide.
* **Results come back in task order.**  :func:`run_replications`
  returns results indexed like its task list regardless of which
  worker finished first, so downstream accumulation is identical to a
  sequential run.
* **Statistics fold in a fixed order.**  :func:`merge_accumulators`
  folds per-replication :class:`StatAccumulator` parts left-to-right
  in task order via the Chan parallel-variance ``merge``, so the same
  parts always produce the same bits.  (The experiment drivers that
  predate this runner feed raw per-replication samples to their
  accumulators in task order instead — same guarantee, and bit-compatible
  with their historical sequential outputs.)

``workers=1`` (the default everywhere) never touches
:mod:`multiprocessing` at all, so existing entry points behave exactly
as before.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.simulation.monitor import StatAccumulator
from repro.simulation.randomness import RandomStreams
from repro.simulation.workerpool import register_shutdown

__all__ = ["run_replications", "replication_seeds", "merge_accumulators",
           "shutdown_pool"]

#: The warm worker pool, reused across experiment stages.  Spawning a
#: fresh pool per stage costs a fork + interpreter warm-up per worker
#: per stage; experiments like table2 run six stages back to back, so
#: the pool is kept until the worker count changes or the process exits.
#: Deliberately process-global *infrastructure*, not model state: the
#: pool carries no simulation data between tasks (workers receive every
#: input by argument and return parts by value; see
#: tests/experiments/test_pool_state_isolation.py for the proof), so
#: reuse cannot couple replications.  The teardown discipline (one
#: atexit hook, reset on failure) is shared with the sharded engine's
#: persistent worker group through repro.simulation.workerpool.
_POOL = None  # simlint: disable=R15  process infrastructure; workers exchange state only by argument/return
_POOL_WORKERS = 0  # simlint: disable=R15  paired with _POOL above


def _warm_pool(workers: int):
    """The shared pool for ``workers`` processes, creating it on demand."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        # Imported lazily: sequential runs must not pay for (or depend
        # on) multiprocessing machinery.
        import multiprocessing

        _POOL = multiprocessing.Pool(processes=workers)
        _POOL_WORKERS = workers
        register_shutdown(shutdown_pool)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the warm pool (no-op when none is running).

    Registered atexit; also the reset path when a worker dies and the
    pool can no longer be trusted.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0


def replication_seeds(root_seed: int, name: str, count: int) -> List[int]:
    """One independent child seed per replication.

    Derived from :meth:`RandomStreams.spawn_key` under the
    ``name/index`` key, so the i-th replication of an experiment draws
    the same stream no matter how many workers run it, which other
    experiments share the root seed, or which worker picks it up.
    """
    streams = RandomStreams(root_seed)
    return [streams.spawn_key("%s/%d" % (name, index))
            for index in range(count)]


def run_replications(fn: Callable[..., Any],
                     tasks: Sequence[Tuple],
                     workers: int = 1,
                     chunksize: Optional[int] = None) -> List[Any]:
    """Run ``fn(*task)`` for every task; results in task order.

    ``fn`` must be a module-level callable and every task an argument
    tuple (both cross the process boundary when ``workers > 1``).  With
    ``workers <= 1`` the tasks run sequentially in-process — no pool,
    no pickling, bit-for-bit the historical code path.  With more, a
    warm ``multiprocessing`` pool — created once and reused across
    calls until the worker count changes — maps the tasks; ``starmap``
    already returns results positionally, which is what makes the
    fan-out invisible to downstream accumulation.

    The worker count bounds *wall-clock concurrency only*; it must
    never reach the model (simlint R10 flags attempts).
    """
    tasks = [tuple(task) for task in tasks]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    if chunksize is None:
        # Large replication counts amortize dispatch IPC by shipping
        # chunks; small counts keep chunk 1 so stragglers rebalance.
        # The split never reaches the model, so results are identical
        # for any chunk size — this is wall-clock tuning only.
        chunksize = max(1, min(32, len(tasks) // (workers * 4)))
    pool = _warm_pool(workers)
    try:
        return pool.starmap(fn, tasks, chunksize=chunksize)
    except Exception:
        # A worker death poisons the pool; never reuse it.
        shutdown_pool()
        raise


def merge_accumulators(parts: Sequence[StatAccumulator],
                       name: str = "") -> StatAccumulator:
    """Fold per-replication accumulators in task order.

    Uses :meth:`StatAccumulator.merge` (Chan et al. parallel variance),
    folding left-to-right over ``parts`` — a fixed order, so the result
    is byte-identical for any worker count that produced the parts.
    """
    total = StatAccumulator(name or (parts[0].name if parts else ""))
    for part in parts:
        total.merge(part)
    return total
