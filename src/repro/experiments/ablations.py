"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1 — proxy cache** (Section 3.1, image management): "read-only
  sharing patterns can be exploited by proxy-based virtual file
  systems".  Instantiate the same warm image repeatedly through a PVFS
  proxy, with and without the proxy's disk cache.
* **A2 — scheduler mechanisms** (Section 3.2): enforce the same
  compiled owner policy (local work reserved half the machine, two VMs
  sharing the grid half 3:1) with every mechanism the paper lists and
  compare accuracy.
* **A3 — staging versus on-demand** (Section 3.1): "the transfer of
  entire VM states can lead to unnecessary traffic due to the copying
  of unused data" — sweep the fraction of the image actually touched
  and find the crossover between GridFTP whole-file staging and
  on-demand NFS block access.
* **A4 — VMM cost sensitivity** (Section 2.3): "previous experience
  with successful VMM architectures has shown that such overheads can
  be made smaller with implementation optimizations ... VM assists and
  in-memory network hyper-sockets" — sweep the trap-and-emulate costs
  and watch the macro overhead scale with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import run_replications
from repro.experiments.testbed import (
    GUEST_MEMORY_MB,
    IMAGE_BYTES,
    MB,
    compute_node_spec,
    guest_profile,
    vmm_costs,
)
from repro.gridnet.flows import FlowEngine
from repro.gridnet.topology import Network
from repro.guestos.interface import PhysicalHost
from repro.hardware.cpu import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.hardware.machine import PhysicalMachine
from repro.scheduling.lottery import LotteryScheduler
from repro.scheduling.modulation import DutyCycleModulator
from repro.scheduling.realtime import PeriodicEnforcer
from repro.scheduling.wfq import WfqScheduler
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.randomness import RandomStreams
from repro.storage.nfs import NfsClient, NfsServer
from repro.storage.pvfs import PvfsProxy
from repro.storage.transfer import FileStager
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VmConfig

__all__ = [
    "ProxyCacheResult",
    "SchedulerAblationRow",
    "StagingPoint",
    "VmmCostPoint",
    "run_proxy_cache_ablation",
    "run_scheduler_ablation",
    "run_staging_ablation",
    "run_vmm_cost_sensitivity",
]

_IMAGE = "rh72.img"
_MEMSTATE = "rh72.memstate"


# ---------------------------------------------------------------------------
# A1: proxy cache
# ---------------------------------------------------------------------------

@dataclass
class ProxyCacheResult:
    """Startup latencies of successive instantiations of one image."""

    proxy_cache: bool
    startup_times: List[float]

    @property
    def cold(self) -> float:
        return self.startup_times[0]

    @property
    def warm_mean(self) -> float:
        tail = self.startup_times[1:]
        return sum(tail) / len(tail) if tail else float("nan")


def _proxy_cache_world(cache_on: bool, instantiations: int,
                       seed: int) -> ProxyCacheResult:
    """One cache configuration: a fresh WAN world, repeated restores."""
    sim = Simulation()
    streams = RandomStreams(seed)
    net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"])
    engine = FlowEngine(sim, net)
    compute = PhysicalMachine(sim, "compute", site="uf",
                              spec=compute_node_spec())
    host = PhysicalHost(compute, cache_bytes=256 * MB)
    vmm = VirtualMachineMonitor(host, costs=vmm_costs())
    image_machine = PhysicalMachine(sim, "image", site="nw",
                                    spec=compute_node_spec())
    image_host = PhysicalHost(image_machine, cache_bytes=512 * MB)
    image_host.root_fs.create(_IMAGE, IMAGE_BYTES)
    image_host.root_fs.create(_MEMSTATE, GUEST_MEMORY_MB * MB)
    nfsd = NfsServer(sim, "image", image_host.root_fs, engine)
    mount = NfsClient(sim, "compute", engine,
                      cache_bytes=16 * MB).mount(nfsd)
    proxy = PvfsProxy(sim, mount,
                      cache_bytes=512 * MB if cache_on else 0,
                      name="pvfs@compute")
    base = DiskImage(proxy, _IMAGE, IMAGE_BYTES)

    times: List[float] = []

    def one(sim, index):
        config = VmConfig("vm%d" % index, memory_mb=GUEST_MEMORY_MB,
                          guest_profile=guest_profile())
        vm = vmm.create_vm(config, base, disk_mode="nonpersistent",
                           remote_cpu_per_byte=vmm.costs
                           .remote_state_cpu_per_byte,
                           rng=streams.stream("vm%d" % index))
        duration = yield from vmm.power_on(
            vm, mode="restore", memstate=(proxy, _MEMSTATE),
            memstate_is_remote=True)
        vmm.destroy(vm)
        return duration

    for index in range(instantiations):
        times.append(sim.run_until_complete(
            sim.spawn(one(sim, index),
                      name="ablation.proxycache.%d" % index)))
    return ProxyCacheResult(cache_on, times)


def run_proxy_cache_ablation(instantiations: int = 4, seed: int = 0,
                             workers: int = 1, shards: int = 1,
                             strict_shards: bool = False
                             ) -> List[ProxyCacheResult]:
    """Repeated VM-restores of a shared image over the WAN, cache on/off."""
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "ablation worlds share one proxy cache",
                        strict=strict_shards)
    tasks = [(cache_on, instantiations, seed)
             for cache_on in (True, False)]
    return run_replications(_proxy_cache_world, tasks, workers=workers)


# ---------------------------------------------------------------------------
# A2: scheduler mechanisms
# ---------------------------------------------------------------------------

MECHANISMS = ("group-cap", "periodic", "lottery", "wfq", "sigstop")

#: The compiled policy: local work keeps 1/2, VMs split the rest 3:1.
_TARGETS = {"vm1": 0.375, "vm2": 0.125}


@dataclass
class SchedulerAblationRow:
    """Achieved versus target share for one VM under one mechanism."""

    mechanism: str
    vm: str
    target: float
    achieved: float

    @property
    def error(self) -> float:
        return abs(self.achieved - self.target)


def _scheduler_world(mechanism: str, duration: float,
                     seed: int) -> List[SchedulerAblationRow]:
    """One mechanism enforcing the compiled policy in a fresh world."""
    rows: List[SchedulerAblationRow] = []
    sim = Simulation()
    streams = RandomStreams(seed)
    cpu = ProcessorSharingCpu(sim, cores=1, context_switch_cost=0.0)
    vm1 = TaskGroup("vm1")
    vm2 = TaskGroup("vm2")
    local_group = TaskGroup("local")
    feed = {}
    for group in (vm1, vm2):
        task = CpuTask("work-" + group.name, work=10 * duration,
                       group=group)
        cpu.submit(task)
        feed[group.name] = task
    # The owner's local workload, always demanding.
    local = CpuTask("local-work", work=10 * duration, group=local_group)
    cpu.submit(local)

    controller = None
    if mechanism == "group-cap":
        cpu.update_group(vm1, max_rate=_TARGETS["vm1"])
        cpu.update_group(vm2, max_rate=_TARGETS["vm2"])
    elif mechanism == "periodic":
        controller = PeriodicEnforcer(cpu, {
            vm1: (0.1 * _TARGETS["vm1"], 0.1),
            vm2: (0.1 * _TARGETS["vm2"], 0.1),
        })
        controller.start()
    elif mechanism == "lottery":
        controller = LotteryScheduler(
            cpu, {vm1: 3, vm2: 1, local_group: 4}, quantum=0.05,
            rng=streams.stream("lottery"))
        controller.start()
    elif mechanism == "wfq":
        controller = WfqScheduler(
            cpu, {vm1: 3.0, vm2: 1.0, local_group: 4.0}, quantum=0.05)
        controller.start()
    elif mechanism == "sigstop":
        controllers = [
            DutyCycleModulator(cpu, vm1, duty=_TARGETS["vm1"],
                               period=1.0, signal_cost=0.0),
            DutyCycleModulator(cpu, vm2, duty=_TARGETS["vm2"],
                               period=1.0, signal_cost=0.0),
        ]
        for modulator in controllers:
            modulator.start()
    else:  # pragma: no cover
        raise SimulationError("unknown mechanism %r" % mechanism)

    sim.run(until=duration)
    cpu.sync()
    for name, target in _TARGETS.items():
        task = feed[name]
        achieved = (task.work - task.remaining) / duration
        rows.append(SchedulerAblationRow(mechanism, name, target,
                                         achieved))
    return rows


def run_scheduler_ablation(duration: float = 400.0, seed: int = 0,
                           workers: int = 1, shards: int = 1,
                           strict_shards: bool = False
                           ) -> List[SchedulerAblationRow]:
    """Enforce the same owner policy with all five mechanisms."""
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "scheduler worlds couple VMs through "
                        "one host", strict=strict_shards)
    tasks = [(mechanism, duration, seed) for mechanism in MECHANISMS]
    grouped = run_replications(_scheduler_world, tasks, workers=workers)
    return [row for rows in grouped for row in rows]


# ---------------------------------------------------------------------------
# A3: staging versus on-demand access
# ---------------------------------------------------------------------------

@dataclass
class StagingPoint:
    """Completion times at one working-set fraction."""

    fraction: float
    on_demand_time: float
    staged_time: float

    @property
    def on_demand_wins(self) -> bool:
        return self.on_demand_time < self.staged_time


def _staging_point(fraction: float, image_bytes: int) -> StagingPoint:
    """One working-set fraction: staged vs on-demand in fresh worlds."""
    touched = int(image_bytes * fraction)

    def world():
        sim = Simulation()
        net = Network.two_site_wan(sim, "uf", ["compute"], "nw",
                                   ["image"])
        engine = FlowEngine(sim, net)
        compute = PhysicalMachine(sim, "compute", site="uf",
                                  spec=compute_node_spec())
        host = PhysicalHost(compute, cache_bytes=256 * MB)
        image_machine = PhysicalMachine(sim, "image", site="nw",
                                        spec=compute_node_spec())
        image_host = PhysicalHost(image_machine, cache_bytes=512 * MB)
        image_host.root_fs.create(_IMAGE, image_bytes)
        return sim, net, engine, host, image_host

    # Strategy 1: on-demand block access through NFS.
    sim, _net, engine, host, image_host = world()
    nfsd = NfsServer(sim, "image", image_host.root_fs, engine)
    mount = NfsClient(sim, "compute", engine,
                      cache_bytes=32 * MB).mount(nfsd)

    def on_demand(sim, mount=mount, touched=touched):
        yield from mount.read(_IMAGE, 0, touched, sequential=True)
        return sim.now

    on_demand_time = sim.run_until_complete(
        sim.spawn(on_demand(sim), name="ablation.ondemand"))

    # Strategy 2: stage the whole file, then read locally.
    sim, _net, engine, host, image_host = world()
    stager = FileStager(sim, engine)

    def staged(sim, host=host, image_host=image_host, touched=touched,
               stager=stager):
        yield from stager.stage(image_host.root_fs, "image", _IMAGE,
                                host.root_fs, "compute")
        yield from host.root_fs.read(_IMAGE, 0, touched,
                                     sequential=True)
        return sim.now

    staged_time = sim.run_until_complete(
        sim.spawn(staged(sim), name="ablation.staged"))
    return StagingPoint(fraction, on_demand_time, staged_time)


def run_staging_ablation(fractions: Sequence[float] = (
        0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0),
        image_bytes: int = 512 * MB,
        workers: int = 1, shards: int = 1,
        strict_shards: bool = False) -> List[StagingPoint]:
    """Sweep the touched fraction of an image; compare access strategies."""
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "staging worlds are one two-site kernel",
                        strict=strict_shards)
    for fraction in fractions:
        if not 0 < fraction <= 1.0:
            raise SimulationError("fractions must be in (0, 1]")
    tasks = [(fraction, image_bytes) for fraction in fractions]
    return run_replications(_staging_point, tasks, workers=workers)


# ---------------------------------------------------------------------------
# A4: VMM cost sensitivity
# ---------------------------------------------------------------------------

@dataclass
class VmmCostPoint:
    """Macro overhead at one trap-cost multiplier."""

    multiplier: float
    overhead: float


def _scaled_costs(multiplier: float):
    """The calibrated VMM costs with every emulation price scaled."""
    from dataclasses import replace

    base = vmm_costs()
    return replace(
        base,
        syscall_trap=base.syscall_trap * multiplier,
        pagefault_trap=base.pagefault_trap * multiplier,
        timer_trap=base.timer_trap * multiplier,
        world_switch=base.world_switch * multiplier,
        guest_context_switch=base.guest_context_switch * multiplier,
        io_emulation_per_byte=base.io_emulation_per_byte * multiplier,
        sys_dilation=1.0 + (base.sys_dilation - 1.0) * multiplier,
    )


def _vmm_cost_point(multiplier: float, scale: float, seed: int,
                    physical_cpu_time: float) -> VmmCostPoint:
    """One multiplier: a fresh VM world against the shared baseline."""
    from repro.experiments.table1 import macro_run
    from repro.workloads.applications import spec_climate

    result = macro_run(lambda: spec_climate(scale), "vm-localdisk",
                       seed=seed, costs=_scaled_costs(multiplier))
    overhead = result.cpu_time / physical_cpu_time - 1.0
    return VmmCostPoint(multiplier, overhead)


def run_vmm_cost_sensitivity(multipliers: Sequence[float] = (
        0.25, 0.5, 1.0, 2.0, 4.0),
        scale: float = 0.25, seed: int = 0,
        workers: int = 1) -> List[VmmCostPoint]:
    """SPECclimate's VM overhead as the trap-and-emulate costs scale.

    Implementation optimizations (VM assists, paravirtual devices)
    shrink the per-event costs; this sweep shows the macro overhead
    moving with them — the paper's argument that observed overheads are
    an upper bound, not a law.
    """
    from repro.experiments.table1 import macro_run
    from repro.workloads.applications import spec_climate

    for multiplier in multipliers:
        if multiplier <= 0:
            raise SimulationError("multipliers must be positive")
    physical = macro_run(lambda: spec_climate(scale), "physical",
                         seed=seed)
    tasks = [(multiplier, scale, seed, physical.cpu_time)
             for multiplier in multipliers]
    return run_replications(_vmm_cost_point, tasks, workers=workers)
