"""Table 2: VM startup times through globusrun.

Six configurations — {VM-reboot, VM-restore} x {Persistent,
Non-persistent DiskFS, Non-persistent LoopbackNFS} — each timed as the
paper does: "wall-clock execution time from the beginning to the end of
the execution of globusrun", ten samples each, on a LAN host.

* *Persistent*: an explicit copy of the 2 GB disk is created in the
  host's local file system before the VM starts.
* *Non-persistent DiskFS*: no copy; modifications go to a diff file;
  state is read from the host's native file system.
* *Non-persistent LoopbackNFS*: as DiskFS, but state resides in a
  loopback-mounted NFS partition, "simulating a remote file system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.testbed import (
    GUEST_MEMORY_MB,
    IMAGE_BYTES,
    MB,
    compute_node_spec,
    guest_profile,
    vmm_costs,
)
from repro.experiments.runner import run_replications
from repro.gridnet.flows import FlowEngine, FlowPartition
from repro.gridnet.topology import Network
from repro.guestos.interface import PhysicalHost
from repro.hardware.machine import PhysicalMachine
from repro.middleware.gram import GramGateway
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.monitor import StatAccumulator
from repro.simulation.randomness import RandomStreams
from repro.storage.nfs import NfsClient, NfsServer
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VmConfig

__all__ = ["Table2Row", "STORAGE_MODES", "START_MODES", "run_table2",
           "startup_sample", "table2_tasks", "table2_shard_run",
           "build_table2_world"]

START_MODES = ("reboot", "restore")
STORAGE_MODES = ("persistent", "nonpersistent-diskfs",
                 "nonpersistent-loopbacknfs")

_IMAGE = "rh72.img"
_MEMSTATE = "rh72.memstate"


@dataclass
class Table2Row:
    """One cell of Table 2 (mean/std/min/max over the samples)."""

    start_mode: str
    storage_mode: str
    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int


def startup_sample(start_mode: str, storage_mode: str, seed: int) -> float:
    """One globusrun-timed VM startup in a fresh world.

    Returns the wall-clock seconds globusrun took.
    """
    if start_mode not in START_MODES:
        raise SimulationError("unknown start mode %r" % start_mode)
    if storage_mode not in STORAGE_MODES:
        raise SimulationError("unknown storage mode %r" % storage_mode)

    sim = Simulation()
    streams = RandomStreams(seed)
    machine = PhysicalMachine(sim, "compute", site="lan",
                              spec=compute_node_spec())
    host = PhysicalHost(machine, cache_bytes=512 * MB)
    vmm = VirtualMachineMonitor(host, costs=vmm_costs())
    gram = GramGateway(sim, "compute", rng=streams.stream("gram"))

    # The master image (and its warm memory state) pre-exist on the
    # host's local disk, exactly as in the paper's LAN setup.
    host.root_fs.create(_IMAGE, IMAGE_BYTES)
    host.root_fs.create(_MEMSTATE, GUEST_MEMORY_MB * MB)

    net = Network.single_lan(sim, ["compute"])
    engine = FlowEngine(sim, net, partition=FlowPartition.by_site(net))

    loopback = storage_mode == "nonpersistent-loopbacknfs"
    if loopback:
        nfsd = NfsServer(sim, "compute", host.root_fs, engine)
        mount = NfsClient(sim, "compute", engine,
                          cache_bytes=64 * MB).mount(nfsd)
        state_fs = mount
        remote_cpu = vmm.costs.remote_state_cpu_per_byte
    else:
        state_fs = host.root_fs
        remote_cpu = 0.0

    config = VmConfig("vm1", memory_mb=GUEST_MEMORY_MB,
                      guest_profile=guest_profile())

    def body(sim):
        if storage_mode == "persistent":
            # Explicit whole-disk copy before the VM starts up.
            yield from host.root_fs.copy(_IMAGE, _IMAGE + ".private")
            base = DiskImage(host.root_fs, _IMAGE + ".private", IMAGE_BYTES)
            disk_mode = "persistent"
            memstate = (host.root_fs, _MEMSTATE)
            remote = False
        else:
            base = DiskImage(state_fs, _IMAGE, IMAGE_BYTES)
            disk_mode = "nonpersistent"
            memstate = (state_fs, _MEMSTATE)
            remote = loopback
        vm = vmm.create_vm(config, base, disk_mode=disk_mode,
                           remote_cpu_per_byte=remote_cpu,
                           rng=streams.stream("vm"))
        mode = "boot" if start_mode == "reboot" else "restore"
        yield from vmm.power_on(vm, mode=mode, memstate=memstate,
                                memstate_is_remote=remote)
        return vm

    job = sim.run_until_complete(
        sim.spawn(gram.submit(body(sim), name="startup"),
                  name="table2.globusrun"))
    return job.total_time


def table2_tasks(samples: int, seed: int) -> List[Tuple[str, str, int]]:
    """The table's replication tasks in canonical (cell-major) order.

    Each task is ``(start_mode, storage_mode, sample_seed)`` — the full
    argument tuple of :func:`startup_sample`, whose value is a pure
    function of it.  Both the sequential and the sharded drivers
    consume this one list, so the table is a function of it alone.
    """
    cells = [(start_mode, storage_mode)
             for start_mode in START_MODES
             for storage_mode in STORAGE_MODES]
    return [(start_mode, storage_mode, seed * 1000 + i * 7 + 1)
            for start_mode, storage_mode in cells
            for i in range(samples)]


def _shard_assignments(count: int, samples: int,
                       shard_model: str) -> List[str]:
    """Group label per task index under a shard model.

    ``site`` puts each table *cell*'s worlds in one group (six groups —
    the coarse split that mirrors one topology shape per shard);
    ``host`` gives every sample world its own group (``6 * samples``
    groups), unlocking shard counts above the cell count.  Labels are
    zero-padded so the plan's canonical sorted order is task order.
    """
    if shard_model == "site":
        return ["cell%d" % (index // samples) for index in range(count)]
    if shard_model == "host":
        return ["world%05d" % index for index in range(count)]
    raise SimulationError("unknown shard model %r "
                          "(expected 'site' or 'host')" % shard_model)


def build_table2_world(group, lookaheads, assignments):
    """Builder: one shard's slice of the table's independent worlds.

    The samples are independent simulated worlds, so the decomposition
    is at the experiment level: the shard's kernel runs its slice (in
    task order) inside a single time-zero event — which is exactly the
    one conservative window the plan's channel-free groups get — and
    ships ``(task_index, value)`` pairs back through ``collect``.
    Running the samples inside the kernel's event (rather than at build
    time) keeps their CPU inside the engine's per-round accounting.
    """
    from repro.simulation.sharded import ShardWorld

    sim = Simulation()
    world = ShardWorld(sim, group, lookaheads)
    world.close_outbound()
    tasks = assignments[group]
    values: List[Tuple[int, float]] = []

    def run_slice(_sim):
        for index, start_mode, storage_mode, sample_seed in tasks:
            values.append((index, startup_sample(start_mode, storage_mode,
                                                 sample_seed)))

    sim.call_at(0.0, run_slice)
    world.collect = lambda _world: list(values)
    return world


def table2_shard_run(samples: int = 10, seed: int = 0, shards: int = 1,
                     shard_model: str = "site"):
    """Run the table's worlds under the sharded engine.

    Returns ``(values, run)``: the per-task sample values in task order
    (identical to the sequential driver's — each value is a pure
    function of its task tuple) and the :class:`ShardRunResult` with
    the per-shard CPU accounting the critical-path benchmark reads.
    """
    from repro.simulation.sharded import ShardPlan, ShardedSimulation

    tasks = table2_tasks(samples, seed)
    labels = _shard_assignments(len(tasks), samples, shard_model)
    assignments: Dict[str, List[tuple]] = {}
    for index, (task, label) in enumerate(zip(tasks, labels)):
        assignments.setdefault(label, []).append((index,) + task)
    plan = ShardPlan(sorted(assignments))
    engine = ShardedSimulation(build_table2_world, plan, shards=shards,
                               kwargs={"assignments": assignments})
    run = engine.run()
    values: List[float] = [0.0] * len(tasks)
    for group in plan.groups:
        for index, value in run.data(group):
            values[index] = value
    return values, run


def run_table2(samples: int = 10, seed: int = 0, workers: int = 1,
               shards: int = 1, shard_model: str = "site"
               ) -> List[Table2Row]:
    """The full table: every (start, storage) cell over ``samples`` runs.

    Every sample is an independent simulated world.  ``workers`` fans
    the replications out across processes through the replication
    runner; ``shards > 1`` instead decomposes the experiment under the
    sharded engine (grouped per table cell for ``shard_model="site"``,
    per sample world for ``"host"``).  Either way the values come back
    in task order and feed each cell's accumulator exactly as a
    sequential run would, keeping the table byte-identical for any
    worker count, shard count, and shard model.
    """
    tasks = table2_tasks(samples, seed)
    if shards > 1:
        values, _run = table2_shard_run(samples, seed, shards=shards,
                                        shard_model=shard_model)
    else:
        values = run_replications(startup_sample, tasks, workers=workers)
    cells = [(start_mode, storage_mode)
             for start_mode in START_MODES
             for storage_mode in STORAGE_MODES]
    rows = []
    for cell_index, (start_mode, storage_mode) in enumerate(cells):
        acc = StatAccumulator("%s/%s" % (start_mode, storage_mode))
        for value in values[cell_index * samples:(cell_index + 1) * samples]:
            acc.add(value)
        rows.append(Table2Row(start_mode, storage_mode, acc.mean,
                              acc.stdev, acc.minimum, acc.maximum,
                              acc.count))
    return rows


def rows_by_key(rows: List[Table2Row]) -> Dict[Tuple[str, str], Table2Row]:
    """Index rows for assertions."""
    return {(r.start_mode, r.storage_mode): r for r in rows}
