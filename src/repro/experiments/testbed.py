"""The simulated testbed shared by the paper's experiments.

Section 2.3's hardware: dual Pentium III class nodes with 512 MB - 1 GB
of memory, a commodity IDE disk (~17 MB/s effective with file-system
overheads), 100 Mb/s switched Ethernet on the LAN, and a ~2.5 MB/s
usable wide-area path between the University of Florida and
Northwestern.  The VM is VMware Workstation 3.0a-like: 128 MB of guest
memory and a 2 GB virtual disk with a Red Hat 7.x guest.
"""

from __future__ import annotations

from repro.guestos.profile import GuestOsProfile
from repro.hardware.machine import MachineSpec
from repro.vmm.costs import VmmCosts
from repro.vmm.virtual_machine import VmConfig

__all__ = [
    "GB",
    "MB",
    "IMAGE_BYTES",
    "GUEST_MEMORY_MB",
    "compute_node_spec",
    "guest_profile",
    "vm_config",
    "vmm_costs",
]

MB = 1024 ** 2
GB = 1024 ** 3

#: The 2 GB virtual disk of the paper's Table 2 experiment.
IMAGE_BYTES = 2 * GB
#: The 128 MB guest of both experiments.
GUEST_MEMORY_MB = 128


def compute_node_spec(memory_mb: int = 1024) -> MachineSpec:
    """A dual Pentium III compute node."""
    return MachineSpec(
        cores=2,
        cpu_speed=1.0,
        memory_mb=memory_mb,
        disk_seek_time=0.004,
        disk_transfer_rate=17e6,
        nic_bandwidth=12.5e6,
    )


def guest_profile() -> GuestOsProfile:
    """The Red Hat 7.x guest boot profile (defaults are calibrated)."""
    return GuestOsProfile()


def vm_config(name: str = "vm") -> VmConfig:
    """A VMware Workstation 3.0a-like VM: 128 MB, one vCPU."""
    return VmConfig(name, memory_mb=GUEST_MEMORY_MB,
                    guest_profile=guest_profile())


def vmm_costs() -> VmmCosts:
    """The calibrated trap-and-emulate cost model."""
    return VmmCosts()
