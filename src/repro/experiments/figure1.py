"""Figure 1: microbenchmark slowdown under background load.

Twelve scenarios: three background-load levels (none, light, heavy —
synthetic PSC-style traces played back Dinda-style) crossed with "all
four possible combinations of placing load and test tasks on the
physical machine and the virtual machine" (one VM, as in the paper).
The two virtualization mechanisms the paper names are both exercised:

* load on the *physical* machine preempts the VMM process — **world
  switches** tax the VM's test task;
* load on the *virtual* machine shares the guest with the test task —
  emulated **guest context switches** tax both.

For every scenario the test task runs ``samples`` times back to back;
slowdown is wall time over the unloaded-physical-machine wall time of
the same task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.testbed import (
    GUEST_MEMORY_MB,
    IMAGE_BYTES,
    MB,
    compute_node_spec,
    guest_profile,
    vmm_costs,
)
from repro.experiments.runner import run_replications
from repro.guestos.interface import PhysicalHost
from repro.guestos.kernel import OperatingSystem
from repro.hardware.machine import PhysicalMachine
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.monitor import StatAccumulator
from repro.simulation.randomness import RandomStreams
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VmConfig
from repro.workloads.hostload import HostLoadTrace, LoadPlayback
from repro.workloads.microbench import micro_test_task

__all__ = ["Figure1Result", "LOAD_LEVELS", "PLACEMENTS", "run_figure1"]

LOAD_LEVELS = ("none", "light", "heavy")
#: (test placement, load placement).
PLACEMENTS = (("physical", "physical"), ("physical", "vm"),
              ("vm", "physical"), ("vm", "vm"))

_IMAGE = "rh72.img"


@dataclass
class Figure1Result:
    """One bar of Figure 1: mean slowdown +/- one standard deviation."""

    load_level: str
    test_on: str
    load_on: str
    mean_slowdown: float
    std_slowdown: float
    samples: int

    @property
    def scenario(self) -> str:
        return "load=%s test@%s load@%s" % (self.load_level, self.test_on,
                                            self.load_on)


def _make_trace(level: str, streams: RandomStreams,
                length: int) -> HostLoadTrace:
    rng = streams.stream("trace/" + level)
    if level == "none":
        return HostLoadTrace.none(length=length)
    if level == "light":
        return HostLoadTrace.light(rng, length=length)
    if level == "heavy":
        return HostLoadTrace.heavy(rng, length=length)
    raise SimulationError("unknown load level %r" % level)


def _boot_vm(sim, vmm, streams, name: str):
    """A dedicated VM on the host, booted from a quick profile.

    Boot cost is irrelevant here (Figure 1 measures steady state), so a
    pre-provisioned non-persistent VM boots once per scenario.
    """
    vmm.host.root_fs.create(_IMAGE + "." + name, IMAGE_BYTES)
    base = DiskImage(vmm.host.root_fs, _IMAGE + "." + name, IMAGE_BYTES)
    config = VmConfig(name, memory_mb=GUEST_MEMORY_MB,
                      guest_profile=guest_profile())
    vm = vmm.create_vm(config, base, rng=streams.stream("vm/" + name))
    sim.run_until_complete(sim.spawn(vmm.power_on(vm, mode="boot"),
                                     name="figure1.boot." + name))
    return vm


def _scenario(load_level: str, test_on: str, load_on: str, samples: int,
              test_seconds: float, seed: int) -> Tuple[float, float, list]:
    sim = Simulation()
    streams = RandomStreams(seed)
    machine = PhysicalMachine(sim, "compute", site="uf",
                              spec=compute_node_spec())
    host = PhysicalHost(machine, cache_bytes=256 * MB)
    host_os = OperatingSystem(host, name="host-linux",
                              rng=streams.stream("hostos"))
    host_os.mount("/", host.root_fs)
    host_os.mark_booted()
    vmm = VirtualMachineMonitor(host, costs=vmm_costs())

    # One virtual machine, as in the paper; test and load are placed on
    # the physical machine or inside that VM.
    vm = None
    if "vm" in (test_on, load_on):
        vm = _boot_vm(sim, vmm, streams, "the-vm")
    test_os = vm.guest_os if test_on == "vm" else host_os
    load_os = vm.guest_os if load_on == "vm" else host_os

    # Background load playback for the whole scenario duration.
    horizon = samples * test_seconds * 4 + 60.0
    trace = _make_trace(load_level, streams,
                        length=int(horizon) + 10)
    playback = LoadPlayback(load_os, trace)
    sim.spawn(playback.run(horizon), name="figure1.loadplayback")

    stats = StatAccumulator()
    slowdowns: List[float] = []

    def sampler(sim):
        for _i in range(samples):
            result = yield from test_os.run_application(
                micro_test_task(test_seconds), pname="test-task")
            slowdowns.append(result.wall_time / test_seconds)
        return slowdowns

    sim.run_until_complete(sim.spawn(sampler(sim), name="figure1.sampler"))
    stats.extend(slowdowns)
    return stats.mean, stats.stdev, slowdowns


def run_figure1(samples: int = 100, test_seconds: float = 3.0,
                seed: int = 0, workers: int = 1, shards: int = 1,
                strict_shards: bool = False) -> List[Figure1Result]:
    """All twelve scenarios of Figure 1.

    The paper uses 1000 samples; 100 keeps the default run quick while
    leaving the means stable (pass ``samples=1000`` for the full run —
    with ``workers=N`` the twelve independent scenario worlds fan out
    across a process pool and the results stay byte-identical).

    Each scenario world couples the test and load VMs through one host
    and its CPU scheduler, so it is non-decomposable: ``shards > 1``
    prints a notice (or raises under ``strict_shards``) and runs the
    identical inline path — ``workers`` is this experiment's
    parallelism axis.
    """
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "figure1 scenarios couple VMs through "
                        "one host", strict=strict_shards)
    tasks = [(load_level, test_on, load_on, samples, test_seconds,
              seed * 100 + 17)
             for load_level in LOAD_LEVELS
             for test_on, load_on in PLACEMENTS]
    outcomes = run_replications(_scenario, tasks, workers=workers)
    return [Figure1Result(load_level, test_on, load_on, mean, std, samples)
            for (load_level, test_on, load_on, _s, _t, _seed),
                (mean, std, _raw) in zip(tasks, outcomes)]


def results_by_key(results: List[Figure1Result]
                   ) -> Dict[Tuple[str, str, str], Figure1Result]:
    """Index results for assertions."""
    return {(r.load_level, r.test_on, r.load_on): r for r in results}
