"""The fleet experiment: one multi-site scenario for the sharded engine.

The paper's own artifacts (Tables 1-2, Figure 1) each study *one*
session on one or two sites — worlds too entangled (one shared flow
engine, synchronous NFS mounts) to decompose.  This experiment is the
scenario the sharded engine exists for: ``sites`` independent
VM-hosting sites on one WAN backbone, each running its own slice of
the grid — compute hosts, an image archive, a data server, a local
operator driving ``sessions`` full six-step session life cycles — and
talking to its ring neighbor over explicit cross-site messages
(job dispatch announcements), which are exactly the events that pay
WAN latency and therefore give the engine its lookahead.

Every site is an honest :class:`~repro.core.grid.VirtualGrid` with its
own :class:`~repro.simulation.kernel.Simulation`, its own
partition-keyed :class:`~repro.obs.metrics.MetricsRegistry` and its
own (engine-sampled) :class:`~repro.obs.recorder.FlightRecorder`;
cross-site traffic rides shard channels with the lookahead derived
from the reference topology's :meth:`Network.min_latency`.  The
scenario's outputs — the session table, merged metrics, merged flight
record — are a pure function of ``(sites, sessions, seed)``: byte-
identical for every ``shards`` value, which ``make shard-determinism``
checks and ``benchmarks/test_sharded_throughput.py`` exploits.

Timeline per site (all times deterministic functions of the session
index): a short *announce phase* early in the run sends one dispatch
message per session to the ring neighbor, after which the site closes
its outbound channels (the engine's signal that its tail is local);
the long tail then runs the local sessions plus the GRAM jobs its
neighbor dispatched to it, fully parallel under one unbounded window.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.grid import (_BACKBONE, _LAN_BANDWIDTH, _LAN_LATENCY,
                             _WAN_BANDWIDTH, _WAN_LATENCY, VirtualGrid)
from repro.core.reporting import format_table
from repro.gridnet.topology import Network
from repro.guestos.profile import GuestOsProfile
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.simulation.kernel import Simulation
from repro.simulation.randomness import RandomStreams
from repro.simulation.sharded import (ShardPlan, ShardWorld,
                                      ShardedSimulation)

__all__ = ["FleetResult", "build_fleet_world", "fleet_lookaheads",
           "fleet_sites", "run_fleet"]

_MB = 1024 * 1024

#: The reduced boot profile traced scenarios use (same shape, small
#: constants) so a multi-site fleet stays quick at any scale.
_FLEET_GUEST = GuestOsProfile(
    kernel_read_bytes=2 * _MB,
    scattered_reads=40,
    scattered_read_bytes=32 * 1024,
    boot_cpu_user=0.5,
    boot_cpu_sys=0.5,
    boot_jitter=0.0,
    boot_footprint_bytes=64 * _MB,
)

#: Announce phase shape: dispatch k goes out at ``_ANNOUNCE_AT + k *
#: _ANNOUNCE_EVERY``; session k starts at ``_ARRIVAL_AT + k *
#: _ARRIVAL_EVERY``.  The announce phase is deliberately short — once
#: the last dispatch is sent the site closes outbound and the engine
#: runs the whole compute tail in one unbounded window.
_ANNOUNCE_AT = 0.25
_ANNOUNCE_EVERY = 0.25
_ARRIVAL_AT = 0.5
_ARRIVAL_EVERY = 0.75
#: Dispatch messages pay the site-pair lookahead plus a fixed
#: serialization allowance (they are small control messages).
_DISPATCH_SLACK = 0.005


def fleet_sites(count: int) -> List[str]:
    """The canonical site labels of a ``count``-site fleet."""
    return ["site%02d" % index for index in range(count)]


def fleet_reference_network(labels: List[str]) -> Network:
    """The fleet's WAN topology as one reference :class:`Network`.

    Per-site worlds only ever build their own slice, so the lookahead
    matrix comes from this throwaway whole-fleet topology instead —
    same constants as :meth:`VirtualGrid.add_site` (star over the
    backbone router), one representative host per site (LAN latency is
    uniform within a site, so one host already realizes the minimum).
    """
    net = Network(Simulation(), name="fleet-ref")
    net.add_router(_BACKBONE)
    for label in labels:
        switch = label + "-switch"
        net.add_router(switch)
        net.add_link(switch, _BACKBONE, latency=_WAN_LATENCY,
                     bandwidth=_WAN_BANDWIDTH)
        host = label + "-ref"
        net.add_host(host, site=label)
        net.add_link(host, switch, latency=_LAN_LATENCY,
                     bandwidth=_LAN_BANDWIDTH)
    return net


def fleet_lookaheads(labels: List[str]) -> Dict[tuple, float]:
    """Ring-channel lookaheads from the reference topology.

    Only the ring edges ``site_k -> site_{k+1}`` carry messages, so
    only they enter the plan — fewer channels means fewer horizon
    constraints and larger safe windows.
    """
    if len(labels) < 2:
        return {}
    net = fleet_reference_network(labels)
    matrix = {}
    for index, label in enumerate(labels):
        dest = labels[(index + 1) % len(labels)]
        matrix[(label, dest)] = net.min_latency(label, dest)
    return matrix


def build_fleet_world(group: str, lookaheads: Dict[str, float],
                      sites: List[str], sessions: int, seed: int,
                      interval: float = 0.5, capacity: int = 512,
                      arrival_every: float = _ARRIVAL_EVERY) -> ShardWorld:
    """One site's world: local grid, local sessions, ring channels.

    Module-level by design — the sharded engine rebuilds it inside
    worker processes by name.  Everything random derives from
    ``spawn_key("fleet/<site>")`` of the root seed, so the world is a
    pure function of ``(group, sites, sessions, seed)`` — never of
    shard count or placement.
    """
    site_seed = RandomStreams(seed).spawn_key("fleet/" + group)
    registry = MetricsRegistry(partition=group)
    sim = Simulation(seed=site_seed, metrics=registry)
    grid = VirtualGrid(sim=sim, seed=site_seed)
    grid.add_site(group)
    hosts = ["%s-c%d" % (group, index) for index in range(2)]
    for host in hosts:
        # Futures scale with demand (each session consumes one); the
        # floor of 8 keeps small runs identical to the original shape.
        grid.add_compute_host(host, site=group,
                              vm_futures=max(8, sessions))
    grid.add_image_server(group + "-img", site=group)
    grid.publish_image(group + "-img", "rh72", 96 * _MB, warm_state_mb=32)
    grid.add_data_server(group + "-data", site=group)
    operator = "op-" + group
    grid.add_user(operator, home_site=group)

    recorder = FlightRecorder(sim, interval=interval, capacity=capacity,
                              registry=registry, include_kernel=False)
    world = ShardWorld(sim, group, lookaheads, recorder=recorder)

    index = sites.index(group)
    ring_next = sites[(index + 1) % len(sites)] if len(sites) > 1 else None
    session_rows: List[Dict[str, Any]] = []
    remote_rows: List[Dict[str, Any]] = []
    sessions_done = registry.counter("fleet.sessions")
    remote_done = registry.counter("fleet.remote.jobs")
    ready_hist = registry.histogram("fleet.session.ready_time")

    # -- local sessions (the long tail) -------------------------------------

    def session_driver(k):
        from repro.middleware.session import SessionConfig
        from repro.workloads.applications import synthetic_compute

        config = SessionConfig(user=operator, image="rh72",
                               vm_name="%s-vm%d" % (group, k),
                               image_access="pvfs", start_mode="restore",
                               guest_profile=_FLEET_GUEST)
        session = grid.new_session(config)
        start = sim.now
        yield from session.establish()
        ready = sim.now
        ready_hist.observe(ready - start)
        # Durations vary per session but cycle with period 4 so the
        # session lifetime stays bounded as ``sessions`` grows: arrivals
        # every 0.75s against a <=3s lifetime keeps the concurrent VM
        # population well inside the two hosts' guest-memory budget at
        # any fleet size (the benchmark runs hundreds of sessions).
        app = synthetic_compute(2.0 + 0.25 * (k % 4),
                                name="fleet-app-%d" % k)
        yield from session.run_application(app)
        app_done = sim.now
        yield from session.shutdown()
        sessions_done.inc()
        session_rows.append({"session": k, "start": start,
                             "ready": ready, "app_done": app_done,
                             "end": sim.now})

    for k in range(sessions):
        def arrive(_sim, k=k):
            sim.spawn(session_driver(k), name="%s-session-%d" % (group, k))

        sim.call_at(_ARRIVAL_AT + arrival_every * k, arrive)

    # -- ring traffic (the announce phase) ----------------------------------

    if ring_next is not None:
        latency = lookaheads[ring_next] + _DISPATCH_SLACK
        # The announce phase is bounded: at most 8 dispatches per site
        # (one per session below that).  While any channel is open the
        # engine must round-trip every ~lookahead of simulated time, so
        # an announce phase that grew with ``sessions`` would make the
        # round count — pure synchronization overhead — scale with the
        # workload instead of staying a short prologue.
        announces = min(sessions, 8)
        # Dispatch instants are known at build time, so the site can
        # promise them: under adaptive windows everyone else runs right
        # up to the next announce plus lookahead instead of creeping
        # forward one WAN latency per round through the dense local
        # event stream.
        world.promise_no_send_before(_ANNOUNCE_AT)

        for k in range(announces):
            def announce(_sim, k=k):
                world.send(ring_next, "dispatch",
                           {"origin": group, "job": k,
                            "seconds": 0.75 + 0.25 * k},
                           latency=latency)
                if k == announces - 1:
                    world.close_outbound()
                else:
                    world.promise_no_send_before(
                        _ANNOUNCE_AT + _ANNOUNCE_EVERY * (k + 1))

            sim.call_at(_ANNOUNCE_AT + _ANNOUNCE_EVERY * k, announce)
    else:
        world.close_outbound()  # nobody to talk to; tail is all local

    def on_dispatch(w, message):
        payload = message.payload
        host = hosts[payload["job"] % len(hosts)]
        gram = grid.gram_for(host)

        def body():
            yield sim.timeout(payload["seconds"])
            return payload["seconds"]

        def run_remote():
            job = yield from gram.submit(
                body(), name="%s-j%d" % (payload["origin"],
                                         payload["job"]))
            remote_done.inc()
            remote_rows.append({"origin": payload["origin"],
                                "job": payload["job"], "host": host,
                                "arrived": message.deliver_time,
                                "completed": sim.now,
                                "total": job.total_time})

        sim.spawn(run_remote(), name="%s-remote-%d" % (group,
                                                       payload["job"]))

    world.on_message("dispatch", on_dispatch)
    world.collect = lambda w: {"sessions": list(session_rows),
                               "remote": list(remote_rows)}
    return world


class FleetResult:
    """A finished fleet run and its deterministic renderings."""

    def __init__(self, sites: List[str], sessions: int, seed: int, run):
        self.sites = sites
        self.sessions = sessions
        self.seed = seed
        self.run = run  #: the underlying ShardRunResult

    def site_data(self, site: str) -> Dict[str, Any]:
        return self.run.data(site)

    def merged_metrics(self) -> MetricsRegistry:
        return self.run.merged_metrics()

    def merged_recorder(self) -> Optional[FlightRecorder]:
        return self.run.merged_recorder()

    def session_table(self) -> str:
        """Per-site session life-cycle timings, fixed-width text."""
        rows = []
        for site in self.sites:
            for row in self.site_data(site)["sessions"]:
                rows.append([site, "%d" % row["session"],
                             "%.6f" % row["start"],
                             "%.6f" % (row["ready"] - row["start"]),
                             "%.6f" % (row["app_done"] - row["ready"]),
                             "%.6f" % row["end"]])
        return format_table(
            ["Site", "Session", "Arrive", "Establish", "App", "End"],
            rows, title="Fleet sessions (sites=%d seed=%d)"
            % (len(self.sites), self.seed))

    def remote_table(self) -> str:
        """Cross-site dispatches as the receiving site ran them."""
        rows = []
        for site in self.sites:
            for row in self.site_data(site)["remote"]:
                rows.append([site, row["origin"], "%d" % row["job"],
                             row["host"], "%.6f" % row["arrived"],
                             "%.6f" % row["completed"]])
        return format_table(
            ["Site", "Origin", "Job", "Host", "Arrived", "Completed"],
            rows, title="Fleet remote dispatches")

    def render(self) -> str:
        """The complete text artifact (what the CLI prints and
        ``make shard-determinism`` compares)."""
        summary = format_table(
            ["Quantity", "Value"],
            [["sites", "%d" % len(self.sites)],
             ["sessions per site", "%d" % self.sessions],
             ["seed", "%d" % self.seed],
             ["rounds", "%d" % self.run.rounds],
             ["cross-shard messages", "%d" % self.run.messages_delivered],
             ["events", "%d" % self.run.total_events],
             ["end time", "%.6f" % self.run.end_time]],
            title="Fleet run")
        return "\n".join([summary, "", self.session_table(), "",
                          self.remote_table(), ""])


def run_fleet(sites: int = 3, sessions: int = 3, seed: int = 42,
              shards: int = 1, interval: float = 0.5,
              capacity: int = 512,
              arrival_every: float = _ARRIVAL_EVERY,
              adaptive: bool = True) -> FleetResult:
    """Run the fleet scenario; ``shards`` affects wall-clock only.

    ``arrival_every`` spaces session arrivals; the benchmark stretches
    it so hundreds of sessions queue instead of all contending for the
    two hosts' guest-memory budget at once.  ``adaptive=False`` runs
    fixed-lookahead windows (the pre-forecast round schedule) for A/B
    measurement; message stamps and artifacts other than the reported
    round count are identical either way.
    """
    from repro.simulation.kernel import SimulationError

    if sites < 1:
        raise SimulationError("fleet needs at least one site")
    if sessions < 1:
        raise SimulationError("fleet needs at least one session per site")
    labels = fleet_sites(sites)
    plan = ShardPlan(labels, fleet_lookaheads(labels))
    engine = ShardedSimulation(
        build_fleet_world, plan, shards=shards,
        kwargs={"sites": labels, "sessions": sessions, "seed": seed,
                "interval": interval, "capacity": capacity,
                "arrival_every": arrival_every},
        adaptive=adaptive)
    return FleetResult(labels, sessions, seed, engine.run())
