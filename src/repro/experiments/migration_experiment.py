"""M1: migrating an entire computing environment mid-computation.

Sections 2.2/3.1: a running VM can be suspended, moved and resumed on
another resource "while keeping remote data connections active".  This
experiment opens a full six-step session, starts a long application,
migrates the VM to a second compute host halfway through, and verifies
that the application finishes with its accounting intact, that the
guest's user-data mount survived, and reports the migration downtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.grid import VirtualGrid
from repro.experiments.testbed import GB, compute_node_spec
from repro.guestos.profile import GuestOsProfile
from repro.middleware.session import SessionConfig
from repro.workloads.applications import synthetic_compute

__all__ = ["MigrationResult", "run_migration_experiment"]

#: A quick-booting profile: migration, not boot, is under test here.
_QUICK_GUEST = GuestOsProfile(kernel_read_bytes=2 * 1024 * 1024,
                              scattered_reads=60, boot_cpu_user=0.5,
                              boot_cpu_sys=0.5, boot_jitter=0.0,
                              boot_footprint_bytes=64 * 1024 * 1024)


@dataclass
class MigrationResult:
    """Outcome of the migrate-mid-run experiment."""

    app_seconds: float
    migrated_at: float
    downtime: float
    completion_time: float
    baseline_completion_time: float
    user_time: float
    mounts_preserved: bool
    final_host: str

    @property
    def migration_penalty(self) -> float:
        """Extra wall time caused by migrating."""
        return self.completion_time - self.baseline_completion_time


def _build_grid(seed: int) -> VirtualGrid:
    grid = VirtualGrid(seed=seed)
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("compute1", site="uf",
                          spec=compute_node_spec())
    grid.add_compute_host("compute2", site="nw",
                          spec=compute_node_spec())
    grid.add_image_server("images1", site="nw")
    grid.publish_image("images1", "rh72", 1 * GB, warm_state_mb=128)
    grid.add_data_server("data1", site="nw")
    grid.add_user("ana")
    return grid


def _run_once(seed: int, app_seconds: float,
              migrate_after: Optional[float]):
    grid = _build_grid(seed)
    config = SessionConfig(user="ana", image="rh72",
                           guest_profile=_QUICK_GUEST,
                           host_constraints={"host": "compute1"})
    session = grid.new_session(config)
    grid.run(session.establish())
    start = grid.sim.now
    app_proc = grid.sim.spawn(
        session.run_application(synthetic_compute(app_seconds)),
        name="migration.application")

    downtime = None
    migrated_at = None
    if migrate_after is not None:
        grid.sim.run(until=start + migrate_after)
        migrated_at = grid.sim.now
        downtime = grid.run(session.migrate_to("compute2"))
    result = grid.sim.run_until_complete(app_proc)
    completion = grid.sim.now - start
    return grid, session, result, completion, downtime, migrated_at


def run_migration_experiment(app_seconds: float = 120.0,
                             migrate_after: float = 40.0,
                             seed: int = 0) -> MigrationResult:
    """Migrate a session mid-run; compare against an unmigrated run."""
    _grid_b, _sess_b, _res_b, baseline, _dt, _ma = _run_once(
        seed, app_seconds, migrate_after=None)
    grid, session, result, completion, downtime, migrated_at = _run_once(
        seed, app_seconds, migrate_after=migrate_after)
    mounts_preserved = "/home/ana" in session.guest_os.mounts
    return MigrationResult(
        app_seconds=app_seconds,
        migrated_at=migrated_at,
        downtime=downtime,
        completion_time=completion,
        baseline_completion_time=baseline,
        user_time=result.user_time,
        mounts_preserved=mounts_preserved,
        final_host=session.vm.vmm.machine.name,
    )
