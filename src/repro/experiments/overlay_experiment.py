"""O1: the self-optimizing overlay among remote virtual machines.

Section 3.3: "The overlay network would optimize itself with respect to
the communication between the virtual machines and the limitations of
the various sites on which they run."  Inter-domain policy routing
routinely violates the triangle inequality, which is exactly what a
RON-style overlay exploits.  This experiment builds random multi-site
WANs with random policy penalties on a subset of direct paths, lets the
overlay measure and re-route, and reports how much latency relaying
recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.gridnet.flows import FlowEngine
from repro.gridnet.overlay import OverlayNetwork
from repro.gridnet.topology import Network
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.randomness import RandomStreams

__all__ = ["OverlayTrialResult", "run_overlay_experiment"]


@dataclass
class OverlayTrialResult:
    """All-pairs routing quality for one random topology."""

    members: int
    pairs: int
    pairs_improved: int
    mean_direct_latency: float
    mean_overlay_latency: float
    max_improvement: float

    @property
    def improvement_fraction(self) -> float:
        return self.pairs_improved / self.pairs if self.pairs else 0.0

    @property
    def mean_saving(self) -> float:
        return self.mean_direct_latency - self.mean_overlay_latency


def _random_world(rng: random.Random, members: int,
                  penalty_probability: float,
                  penalty_range=(0.05, 0.25)):
    sim = Simulation()
    net = Network(sim)
    net.add_router("internet")
    hosts = ["vmhost%d" % i for i in range(members)]
    for host in hosts:
        net.add_host(host)
        net.add_link(host, "internet",
                     latency=rng.uniform(0.005, 0.04), bandwidth=2.5e6)
    overlay = OverlayNetwork(sim, net, per_hop_forwarding_cost=0.5e-3)
    for host in hosts:
        overlay.join(host)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            if rng.random() < penalty_probability:
                overlay.set_underlay_penalty(
                    a, b, rng.uniform(*penalty_range))
    return sim, net, overlay, hosts


def run_overlay_experiment(members: int = 6, trials: int = 8,
                           penalty_probability: float = 0.3,
                           seed: int = 0) -> List[OverlayTrialResult]:
    """Random topologies; measure, re-route, and score the overlay."""
    if members < 3:
        raise SimulationError("need at least three members to relay")
    streams = RandomStreams(seed)
    results = []
    for trial in range(trials):
        rng = streams.stream("overlay-trial-%d" % trial)
        sim, _net, overlay, hosts = _random_world(rng, members,
                                                  penalty_probability)
        sim.run_until_complete(sim.spawn(overlay.measure(),
                                         name="overlay.measure"))
        pairs = 0
        improved = 0
        direct_total = 0.0
        overlay_total = 0.0
        best = 0.0
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                pairs += 1
                direct = overlay.underlay_latency(a, b)
                via = overlay.overlay_latency(a, b)
                direct_total += direct
                overlay_total += via
                saving = direct - via
                if saving > 1e-9:
                    improved += 1
                best = max(best, saving)
        results.append(OverlayTrialResult(
            members, pairs, improved, direct_total / pairs,
            overlay_total / pairs, best))
    return results
