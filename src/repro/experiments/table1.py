"""Table 1: macrobenchmark user/sys times and VM overheads.

Three resource configurations per application, as in the paper:

* **Physical** — the benchmark runs natively on the compute node;
* **VM, local disk** — inside a VM whose state lives on the host's
  local file system;
* **VM, PVFS** — inside a VM whose state is accessed through an
  NFS-based grid virtual file system proxy across a wide-area network
  (image server at the remote site, compute node at the local one).

Applications are the SPEChpc-profile synthetics of
:mod:`repro.workloads.applications`.  ``scale=1.0`` runs the full
multi-hour benchmarks (cheap in simulated events); smaller scales keep
every ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.testbed import (
    GUEST_MEMORY_MB,
    IMAGE_BYTES,
    MB,
    compute_node_spec,
    guest_profile,
    vmm_costs,
)
from repro.gridnet.flows import FlowEngine, FlowPartition
from repro.gridnet.topology import Network
from repro.guestos.interface import PhysicalHost
from repro.guestos.kernel import OperatingSystem, ProcessResult
from repro.hardware.machine import PhysicalMachine
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.randomness import RandomStreams
from repro.storage.localfs import LocalFileSystem
from repro.storage.nfs import NfsClient, NfsServer
from repro.storage.pvfs import PvfsProxy
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VmConfig
from repro.workloads.applications import Application, spec_climate, spec_seis

__all__ = ["Table1Row", "RESOURCES", "run_table1", "macro_run",
           "table1_tasks", "table1_shard_run", "build_table1_world"]

RESOURCES = ("physical", "vm-localdisk", "vm-pvfs")

_IMAGE = "rh72.img"


@dataclass
class Table1Row:
    """One row of Table 1."""

    application: str
    resource: str
    user_time: float
    sys_time: float
    total_time: float
    #: Fractional overhead versus the physical row (None for physical).
    overhead: Optional[float]


def macro_run(app_factory: Callable[[], Application], resource: str,
              seed: int = 0, costs=None) -> ProcessResult:
    """Run one application on one resource configuration.

    ``costs`` overrides the VMM cost model (used by the sensitivity
    ablation A4); ``None`` uses the calibrated testbed costs.
    """
    if resource not in RESOURCES:
        raise SimulationError("unknown resource %r" % resource)
    sim = Simulation()
    streams = RandomStreams(seed)
    machine = PhysicalMachine(sim, "compute", site="uf",
                              spec=compute_node_spec(memory_mb=512))
    host = PhysicalHost(machine, cache_bytes=256 * MB)
    app = app_factory()

    if resource == "physical":
        host_os = OperatingSystem(host, name="native-linux",
                                  rng=streams.stream("os"))
        host_os.mount("/", host.root_fs)
        host_os.mark_booted()
        return sim.run_until_complete(
            sim.spawn(host_os.run_application(app),
                      name="table1.native." + app.name))

    vmm = VirtualMachineMonitor(host, costs=costs or vmm_costs())
    if resource == "vm-localdisk":
        host.root_fs.create(_IMAGE, IMAGE_BYTES)
        base = DiskImage(host.root_fs, _IMAGE, IMAGE_BYTES)
        remote_cpu = 0.0
    else:
        # Image server at the remote site, reached through a PVFS proxy.
        # The fluid model runs decomposed along the two sites (byte-
        # identical rates; the WAN link belongs to the coordinator
        # shard — see FlowEngine._refill_decomposed).
        net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"])
        engine = FlowEngine(sim, net, partition=FlowPartition.by_site(net))
        image_machine = PhysicalMachine(sim, "image", site="nw",
                                        spec=compute_node_spec())
        image_host = PhysicalHost(image_machine, cache_bytes=512 * MB)
        image_host.root_fs.create(_IMAGE, IMAGE_BYTES)
        nfsd = NfsServer(sim, "image", image_host.root_fs, engine)
        mount = NfsClient(sim, "compute", engine,
                          cache_bytes=32 * MB).mount(nfsd)
        proxy = PvfsProxy(sim, mount, cache_bytes=512 * MB,
                          name="pvfs@compute")
        base = DiskImage(proxy, _IMAGE, IMAGE_BYTES)
        # Client-side NFS/PVFS stack CPU per byte, as time(1) on the
        # host attributes it to the measured process (the paper's +89 s
        # of sys on SPECseis).  Larger than the warm-restore constant in
        # VmmCosts because cold WAN misses traverse the full RPC path.
        remote_cpu = 3.5e-7

    config = VmConfig("vm1", memory_mb=GUEST_MEMORY_MB,
                      guest_profile=guest_profile())
    vm = vmm.create_vm(config, base, disk_mode="nonpersistent",
                       remote_cpu_per_byte=remote_cpu,
                       rng=streams.stream("vm"))

    def session(sim):
        yield from vmm.power_on(vm, mode="boot")
        result = yield from vm.guest_os.run_application(app)
        return result

    return sim.run_until_complete(
        sim.spawn(session(sim), name="table1.%s.%s" % (resource, app.name)))


#: The table's applications in row order (module-level so the shard
#: builder can rebuild factories by name in a worker process).
_APPLICATIONS = (("SPECseis", spec_seis), ("SPECclimate", spec_climate))


def table1_tasks() -> List[Tuple[str, str]]:
    """``(application, resource)`` pairs in the table's row order."""
    return [(app_name, resource)
            for app_name, _factory in _APPLICATIONS
            for resource in RESOURCES]


def _shard_assignments(tasks: List[Tuple[str, str]],
                       shard_model: str) -> List[str]:
    """Group label per task under a shard model.

    ``site`` groups the table by resource column (three groups — each
    column's worlds share one topology shape); ``host`` gives every
    (application, resource) world its own group, the finest split.
    """
    if shard_model == "site":
        return [resource for _app, resource in tasks]
    if shard_model == "host":
        return ["%s:%s" % (app_name, resource)
                for app_name, resource in tasks]
    raise SimulationError("unknown shard model %r "
                          "(expected 'site' or 'host')" % shard_model)


def build_table1_world(group, lookaheads, assignments, scale, seed):
    """Builder: one shard's slice of the table's macro-run worlds.

    Each macro run is an independent simulated world (a pure function
    of its (application, resource, scale, seed) tuple), so the
    decomposition is at the experiment level, exactly as in
    :func:`repro.experiments.table2.build_table2_world`: the slice runs
    inside a single time-zero event of the shard's kernel and ships
    ``(task_index, user, sys, total)`` back through ``collect``.
    """
    from repro.simulation.sharded import ShardWorld

    sim = Simulation()
    world = ShardWorld(sim, group, lookaheads)
    world.close_outbound()
    factories = dict(_APPLICATIONS)
    tasks = assignments[group]
    values: List[Tuple[int, float, float, float]] = []

    def run_slice(_sim):
        for index, app_name, resource in tasks:
            factory = factories[app_name]
            result = macro_run(lambda: factory(scale), resource, seed=seed)
            values.append((index, result.user_time, result.sys_time,
                           result.cpu_time))

    sim.call_at(0.0, run_slice)
    world.collect = lambda _world: list(values)
    return world


def table1_shard_run(scale: float = 1.0, seed: int = 0, shards: int = 1,
                     shard_model: str = "site"):
    """Run the table's worlds under the sharded engine.

    Returns ``(values, run)``: per-task ``(user, sys, total)`` triples
    in task order and the :class:`ShardRunResult` with the per-shard
    CPU accounting.
    """
    from repro.simulation.sharded import ShardPlan, ShardedSimulation

    tasks = table1_tasks()
    labels = _shard_assignments(tasks, shard_model)
    assignments: Dict[str, List[tuple]] = {}
    for index, (task, label) in enumerate(zip(tasks, labels)):
        assignments.setdefault(label, []).append((index,) + task)
    plan = ShardPlan(sorted(assignments))
    engine = ShardedSimulation(build_table1_world, plan, shards=shards,
                               kwargs={"assignments": assignments,
                                       "scale": scale, "seed": seed})
    run = engine.run()
    values: List[Tuple[float, float, float]] = [None] * len(tasks)
    for group in plan.groups:
        for index, user, sys_time, total in run.data(group):
            values[index] = (user, sys_time, total)
    return values, run


def run_table1(scale: float = 1.0, seed: int = 0, shards: int = 1,
               shard_model: str = "site") -> List[Table1Row]:
    """The full table: SPECseis and SPECclimate on all three resources.

    Each macro run is an independent world, so ``shards > 1`` spreads
    the six worlds over the sharded engine (grouped per resource column
    for ``shard_model="site"``, per world for ``"host"``); every value
    is a pure function of its task tuple, so the rows are
    byte-identical for any shard count and model.  Within one world the
    vm-pvfs fluid model additionally runs decomposed along its two
    sites (see :func:`macro_run`).
    """
    tasks = table1_tasks()
    if shards > 1:
        values, _run = table1_shard_run(scale, seed, shards=shards,
                                        shard_model=shard_model)
    else:
        factories = dict(_APPLICATIONS)
        values = []
        for app_name, resource in tasks:
            factory = factories[app_name]
            result = macro_run(lambda: factory(scale), resource, seed=seed)
            values.append((result.user_time, result.sys_time,
                           result.cpu_time))
    rows: List[Table1Row] = []
    physical_total = None
    for (app_name, resource), (user_time, sys_time, total) in zip(tasks,
                                                                  values):
        if resource == "physical":
            physical_total = total
            overhead = None
        else:
            overhead = total / physical_total - 1.0
        rows.append(Table1Row(app_name, resource, user_time, sys_time,
                              total, overhead))
    return rows
