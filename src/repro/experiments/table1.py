"""Table 1: macrobenchmark user/sys times and VM overheads.

Three resource configurations per application, as in the paper:

* **Physical** — the benchmark runs natively on the compute node;
* **VM, local disk** — inside a VM whose state lives on the host's
  local file system;
* **VM, PVFS** — inside a VM whose state is accessed through an
  NFS-based grid virtual file system proxy across a wide-area network
  (image server at the remote site, compute node at the local one).

Applications are the SPEChpc-profile synthetics of
:mod:`repro.workloads.applications`.  ``scale=1.0`` runs the full
multi-hour benchmarks (cheap in simulated events); smaller scales keep
every ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments.testbed import (
    GUEST_MEMORY_MB,
    IMAGE_BYTES,
    MB,
    compute_node_spec,
    guest_profile,
    vmm_costs,
)
from repro.gridnet.flows import FlowEngine
from repro.gridnet.topology import Network
from repro.guestos.interface import PhysicalHost
from repro.guestos.kernel import OperatingSystem, ProcessResult
from repro.hardware.machine import PhysicalMachine
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.randomness import RandomStreams
from repro.storage.localfs import LocalFileSystem
from repro.storage.nfs import NfsClient, NfsServer
from repro.storage.pvfs import PvfsProxy
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VmConfig
from repro.workloads.applications import Application, spec_climate, spec_seis

__all__ = ["Table1Row", "RESOURCES", "run_table1", "macro_run"]

RESOURCES = ("physical", "vm-localdisk", "vm-pvfs")

_IMAGE = "rh72.img"


@dataclass
class Table1Row:
    """One row of Table 1."""

    application: str
    resource: str
    user_time: float
    sys_time: float
    total_time: float
    #: Fractional overhead versus the physical row (None for physical).
    overhead: Optional[float]


def macro_run(app_factory: Callable[[], Application], resource: str,
              seed: int = 0, costs=None) -> ProcessResult:
    """Run one application on one resource configuration.

    ``costs`` overrides the VMM cost model (used by the sensitivity
    ablation A4); ``None`` uses the calibrated testbed costs.
    """
    if resource not in RESOURCES:
        raise SimulationError("unknown resource %r" % resource)
    sim = Simulation()
    streams = RandomStreams(seed)
    machine = PhysicalMachine(sim, "compute", site="uf",
                              spec=compute_node_spec(memory_mb=512))
    host = PhysicalHost(machine, cache_bytes=256 * MB)
    app = app_factory()

    if resource == "physical":
        host_os = OperatingSystem(host, name="native-linux",
                                  rng=streams.stream("os"))
        host_os.mount("/", host.root_fs)
        host_os.mark_booted()
        return sim.run_until_complete(
            sim.spawn(host_os.run_application(app),
                      name="table1.native." + app.name))

    vmm = VirtualMachineMonitor(host, costs=costs or vmm_costs())
    if resource == "vm-localdisk":
        host.root_fs.create(_IMAGE, IMAGE_BYTES)
        base = DiskImage(host.root_fs, _IMAGE, IMAGE_BYTES)
        remote_cpu = 0.0
    else:
        # Image server at the remote site, reached through a PVFS proxy.
        net = Network.two_site_wan(sim, "uf", ["compute"], "nw", ["image"])
        engine = FlowEngine(sim, net)
        image_machine = PhysicalMachine(sim, "image", site="nw",
                                        spec=compute_node_spec())
        image_host = PhysicalHost(image_machine, cache_bytes=512 * MB)
        image_host.root_fs.create(_IMAGE, IMAGE_BYTES)
        nfsd = NfsServer(sim, "image", image_host.root_fs, engine)
        mount = NfsClient(sim, "compute", engine,
                          cache_bytes=32 * MB).mount(nfsd)
        proxy = PvfsProxy(sim, mount, cache_bytes=512 * MB,
                          name="pvfs@compute")
        base = DiskImage(proxy, _IMAGE, IMAGE_BYTES)
        # Client-side NFS/PVFS stack CPU per byte, as time(1) on the
        # host attributes it to the measured process (the paper's +89 s
        # of sys on SPECseis).  Larger than the warm-restore constant in
        # VmmCosts because cold WAN misses traverse the full RPC path.
        remote_cpu = 3.5e-7

    config = VmConfig("vm1", memory_mb=GUEST_MEMORY_MB,
                      guest_profile=guest_profile())
    vm = vmm.create_vm(config, base, disk_mode="nonpersistent",
                       remote_cpu_per_byte=remote_cpu,
                       rng=streams.stream("vm"))

    def session(sim):
        yield from vmm.power_on(vm, mode="boot")
        result = yield from vm.guest_os.run_application(app)
        return result

    return sim.run_until_complete(
        sim.spawn(session(sim), name="table1.%s.%s" % (resource, app.name)))


def run_table1(scale: float = 1.0, seed: int = 0,
               shards: int = 1) -> List[Table1Row]:
    """The full table: SPECseis and SPECclimate on all three resources.

    ``shards`` is accepted for CLI uniformity but each macro run's
    world is non-decomposable (the vm-pvfs rows couple both sites
    through one flow engine and a synchronous NFS mount), so the shard
    plan is the degenerate single group and every value runs the
    identical inline path — byte-identical rows by construction.
    """
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "table1 worlds share one flow engine")
    rows: List[Table1Row] = []
    for app_name, factory in (("SPECseis", lambda: spec_seis(scale)),
                              ("SPECclimate", lambda: spec_climate(scale))):
        physical_total = None
        for resource in RESOURCES:
            result = macro_run(factory, resource, seed=seed)
            total = result.cpu_time
            if resource == "physical":
                physical_total = total
                overhead = None
            else:
                overhead = total / physical_total - 1.0
            rows.append(Table1Row(app_name, resource, result.user_time,
                                  result.sys_time, total, overhead))
    return rows
