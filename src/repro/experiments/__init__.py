"""Reproductions of the paper's quantitative artifacts.

Each module builds the full experiment — testbed, workload, measurement —
and returns structured results; the ``benchmarks/`` harness prints the
paper-shaped tables and asserts the qualitative claims, and the examples
reuse the same code paths.

* :mod:`~repro.experiments.testbed` — the simulated dual-Pentium III
  testbed configuration shared by all experiments;
* :mod:`~repro.experiments.table1` — macrobenchmark overheads;
* :mod:`~repro.experiments.figure1` — microbenchmark slowdown under
  background load (12 scenarios);
* :mod:`~repro.experiments.table2` — VM startup times via globusrun;
* :mod:`~repro.experiments.ablations` — proxy-cache, scheduler and
  staging-vs-on-demand ablations (A1-A3 in DESIGN.md);
* :mod:`~repro.experiments.overlay_experiment` — overlay routing (O1);
* :mod:`~repro.experiments.migration_experiment` — migration (M1).
"""

from repro.experiments.ablations import (
    run_proxy_cache_ablation,
    run_scheduler_ablation,
    run_staging_ablation,
    run_vmm_cost_sensitivity,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.migration_experiment import (
    MigrationResult,
    run_migration_experiment,
)
from repro.experiments.overlay_experiment import (
    OverlayTrialResult,
    run_overlay_experiment,
)
from repro.experiments.placement_experiment import (
    PlacementResult,
    run_placement_ablation,
)
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.table2 import Table2Row, run_table2

__all__ = [
    "Figure1Result",
    "MigrationResult",
    "OverlayTrialResult",
    "PlacementResult",
    "Table1Row",
    "Table2Row",
    "run_figure1",
    "run_migration_experiment",
    "run_overlay_experiment",
    "run_placement_ablation",
    "run_proxy_cache_ablation",
    "run_scheduler_ablation",
    "run_staging_ablation",
    "run_table1",
    "run_table2",
    "run_vmm_cost_sensitivity",
]
