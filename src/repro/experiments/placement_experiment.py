"""A5: prediction-driven placement versus random placement.

Section 3.2's application perspective, made quantitative: a grid with
one quiet and one persistently busy compute host serves a stream of
jobs.  The predictive metascheduler reads host-load sensors and places
each job on the forecast-best host; the baseline places uniformly at
random, as a middleware with no performance information would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.grid import VirtualGrid
from repro.experiments.testbed import GB, compute_node_spec
from repro.guestos.kernel import OperatingSystem
from repro.guestos.profile import GuestOsProfile
from repro.middleware.scheduler import MetaScheduler
from repro.workloads.applications import synthetic_compute
from repro.workloads.hostload import HostLoadTrace, LoadPlayback

__all__ = ["PlacementResult", "run_placement_ablation"]

_QUICK_GUEST = GuestOsProfile(kernel_read_bytes=2 * 1024 * 1024,
                              scattered_reads=60, boot_cpu_user=0.5,
                              boot_cpu_sys=0.5, boot_jitter=0.0,
                              boot_footprint_bytes=64 * 1024 * 1024)


@dataclass
class PlacementResult:
    """Job-stream outcome under one policy."""

    policy: str
    jobs: int
    mean_wall: float
    busy_host_placements: int
    mean_prediction_error: float  # nan for random


def _build_grid(seed: int, busy_load: float) -> VirtualGrid:
    grid = VirtualGrid(seed=seed)
    grid.add_site("uf")
    grid.add_site("nw")
    grid.add_compute_host("quiet", site="uf",
                          spec=compute_node_spec(), vm_futures=100)
    grid.add_compute_host("busy", site="uf",
                          spec=compute_node_spec(), vm_futures=100)
    grid.add_image_server("images", site="nw")
    grid.publish_image("images", "rh72", 1 * GB, warm_state_mb=128)
    grid.add_data_server("data", site="nw")
    grid.add_user("ana")
    host = grid.host_for("busy")
    os = OperatingSystem(host, name="busy-os",
                         rng=grid.streams.stream("busy-os"))
    os.mount("/", host.root_fs)
    os.mark_booted()
    trace = HostLoadTrace([busy_load] * 100000, interval=1.0)
    grid.sim.spawn(LoadPlayback(os, trace).run(100000.0),
                   name="placement.loadplayback")
    return grid


def run_placement_ablation(jobs: int = 6, job_seconds: float = 30.0,
                           busy_load: float = 3.0,
                           seed: int = 0) -> List[PlacementResult]:
    """Serve a job stream under both policies; compare mean wall time."""
    results = []
    for policy in ("predictive", "random"):
        grid = _build_grid(seed, busy_load)
        scheduler = MetaScheduler(grid, "rh72", policy=policy,
                                  session_overrides={
                                      "user": "ana",
                                      "guest_profile": _QUICK_GUEST})
        scheduler.watch("quiet")
        scheduler.watch("busy")
        grid.sim.run(until=60.0)  # warm the sensors
        walls = []
        busy_placements = 0
        for _i in range(jobs):
            decision = grid.run(
                scheduler.submit(synthetic_compute(job_seconds)))
            walls.append(decision.actual_wall)
            if decision.host == "busy":
                busy_placements += 1
        try:
            error = scheduler.mean_absolute_prediction_error()
        except Exception:
            error = float("nan")
        results.append(PlacementResult(
            policy, jobs, sum(walls) / len(walls), busy_placements, error))
    return results
