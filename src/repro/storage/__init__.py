"""Storage substrate: local file systems, NFS, and grid virtual file systems.

The stack mirrors Figure 2 of the paper:

* :class:`~repro.storage.localfs.LocalFileSystem` — "DiskFS", a file
  system on a machine's disk with an LRU buffer cache;
* :class:`~repro.storage.nfs.NfsServer` / :class:`~repro.storage.nfs.NfsClient`
  — block RPC over the simulated network, including loopback mounts;
* :class:`~repro.storage.pvfs.PvfsProxy` — the PUNCH virtual file system
  proxy: an NFS call-forwarding proxy with a client-side disk cache,
  prefetching and write buffering;
* :class:`~repro.storage.transfer.FileStager` — GridFTP/GASS-style
  explicit whole-file staging, the baseline that on-demand access beats.
"""

from repro.storage.base import FileNotFound, FileSystem, StorageError
from repro.storage.cache import BlockCache
from repro.storage.localfs import LocalFileSystem
from repro.storage.nfs import NfsClient, NfsMount, NfsServer
from repro.storage.pvfs import PvfsProxy
from repro.storage.transfer import FileStager

__all__ = [
    "BlockCache",
    "FileNotFound",
    "FileStager",
    "FileSystem",
    "LocalFileSystem",
    "NfsClient",
    "NfsMount",
    "NfsServer",
    "PvfsProxy",
    "StorageError",
]
