"""PVFS: the PUNCH grid virtual file system as an NFS proxy.

The paper (Section 3.1, Figure 2) layers client-side proxies over plain
NFS: the proxy forwards misses to a possibly wide-area NFS server while
serving repeats from a *proxy-controlled disk cache* — a second-level
cache below the kernel's file buffers — and absorbing writes into a
write buffer.  Read-only sharing of VM images by many guests is exactly
the pattern the proxy cache exploits.

:class:`PvfsProxy` implements the standard :class:`FileSystem` interface
over any backing file system (normally an :class:`NfsMount`), adding:

* an LRU proxy cache sized independently of the kernel buffer cache;
* sequential prefetch: a detected streaming pattern pulls the next
  blocks in the background before the reader asks for them;
* write buffering with explicit :meth:`sync`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.simulation.kernel import Simulation
from repro.storage.base import FileSystem, StorageError, block_span
from repro.storage.cache import BlockCache

__all__ = ["PvfsProxy"]

#: Proxy forwarding cost per block served from the proxy cache.
_PROXY_HIT_COST = 2e-5


class PvfsProxy(FileSystem):
    """A caching, prefetching, write-buffering file-system proxy."""

    def __init__(self, sim: Simulation, backing: FileSystem,
                 cache_bytes: float = 512 * 1024 * 1024,
                 prefetch_blocks: int = 32, name: str = "pvfs"):
        if prefetch_blocks < 0:
            raise StorageError("prefetch depth must be non-negative")
        self.sim = sim
        self.backing = backing
        self.name = name
        self.block_size = backing.block_size
        self.cache = BlockCache(cache_bytes, block_size=self.block_size,
                                name=name + ".proxycache")
        self.prefetch_blocks = int(prefetch_blocks)
        self._inflight_prefetch: Set[Tuple[str, int]] = set()
        self._write_buffer: Dict[str, List[Tuple[int, int]]] = {}
        self.buffered_bytes = 0
        self.prefetch_issued = 0
        metrics = sim.metrics
        self._m_hits = metrics.counter("storage.pvfs.cache_hits")
        self._m_misses = metrics.counter("storage.pvfs.cache_misses")
        self._m_prefetch = metrics.counter("storage.pvfs.prefetch_blocks")
        self._m_flushed = metrics.counter("storage.pvfs.flushed_bytes")

    # -- metadata -------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return self.backing.exists(name) or name in self._write_buffer

    def size(self, name: str) -> int:
        base = self.backing.size(name) if self.backing.exists(name) else 0
        for offset, nbytes in self._write_buffer.get(name, []):
            base = max(base, offset + nbytes)
        return base

    def listdir(self) -> List[str]:
        names = set(self.backing.listdir()) | set(self._write_buffer)
        return sorted(names)

    def create(self, name: str, size: int = 0) -> None:
        self.backing.create(name, size)

    def delete(self, name: str) -> None:
        self.backing.delete(name)
        self._write_buffer.pop(name, None)
        self.cache.invalidate_file((self.name, name))

    # -- read path -------------------------------------------------------------

    def read(self, name: str, offset: int, nbytes: int,
             sequential: bool = True):
        """Read through the proxy cache; misses forward to the backing FS."""
        file_id = (self.name, name)
        hit_cost = 0.0
        hits = 0
        miss_run: List[int] = []
        blocks = block_span(offset, nbytes, self.block_size)
        for block in blocks:
            if self.cache.lookup(file_id, block):
                hit_cost += _PROXY_HIT_COST
                hits += 1
                if miss_run:
                    yield from self._fill(name, file_id, miss_run)
                    miss_run = []
                continue
            miss_run.append(block)
        if miss_run:
            yield from self._fill(name, file_id, miss_run)
        self._m_hits.inc(hits)
        self._m_misses.inc(len(blocks) - hits)
        if hit_cost:
            yield self.sim.timeout(hit_cost)
        # A streaming pattern warms the cache ahead of the reader.
        if sequential and self.prefetch_blocks and blocks:
            self._start_prefetch(name, file_id, blocks[-1] + 1)

    def _fill(self, name: str, file_id, blocks: List[int]):
        """Fetch a run of missing blocks from the backing file system."""
        span_offset = blocks[0] * self.block_size
        span_bytes = min(len(blocks) * self.block_size,
                         self.backing.size(name) - span_offset)
        if span_bytes > 0:
            yield from self.backing.read(name, span_offset, span_bytes,
                                         sequential=len(blocks) > 1)
        for block in blocks:
            self.cache.insert(file_id, block)

    def _start_prefetch(self, name: str, file_id, first_block: int) -> None:
        limit = (self.backing.size(name) + self.block_size - 1) \
            // self.block_size
        wanted = [b for b in range(first_block,
                                   min(first_block + self.prefetch_blocks,
                                       limit))
                  if not self.cache.contains(file_id, b)
                  and (name, b) not in self._inflight_prefetch]
        if not wanted:
            return
        for block in wanted:
            self._inflight_prefetch.add((name, block))
        self.prefetch_issued += len(wanted)
        self._m_prefetch.inc(len(wanted))

        def fetcher(sim):
            try:
                yield from self._fill(name, file_id, wanted)
            finally:
                for block in wanted:
                    self._inflight_prefetch.discard((name, block))

        self.sim.spawn(fetcher(self.sim), name="%s.prefetch" % self.name)

    # -- write path --------------------------------------------------------------

    def write(self, name: str, offset: int, nbytes: int,
              sequential: bool = True):
        """Absorb the write into the proxy's write buffer (fast path)."""
        blocks = block_span(offset, nbytes, self.block_size)
        file_id = (self.name, name)
        for block in blocks:
            self.cache.insert(file_id, block, dirty=True)
        self._write_buffer.setdefault(name, []).append((offset, nbytes))
        self.buffered_bytes += nbytes
        yield self.sim.timeout(len(blocks) * _PROXY_HIT_COST)

    def sync(self):
        """Process generator: flush buffered writes to the backing FS."""
        pending, self._write_buffer = self._write_buffer, {}
        flushed = self.buffered_bytes
        self.buffered_bytes = 0
        span = self.sim.trace.begin("storage", "pvfs sync",
                                    track=("storage", self.name),
                                    bytes=flushed)
        for name, ranges in pending.items():
            for offset, nbytes in ranges:
                yield from self.backing.write(name, offset, nbytes)
        self.sim.trace.end(span)
        self._m_flushed.inc(flushed)
        return flushed

    def __repr__(self) -> str:
        return "<PvfsProxy %s over %r>" % (self.name, self.backing)
