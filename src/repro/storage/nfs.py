"""NFS: block RPC file access over the simulated network.

An :class:`NfsServer` exports a host's :class:`LocalFileSystem`; an
:class:`NfsClient` on another (or the same!) host mounts it, producing an
:class:`NfsMount` that implements the standard :class:`FileSystem`
interface.  Mounting a server that lives on the *same* host is exactly
Table 2's "LoopbackNFS" configuration: path latency vanishes but the
RPC stack costs (per-call overhead and per-byte copies) remain.

Timing model for a read of N consecutive missing chunks:

* ``ceil(N / window)`` request round trips (the client keeps ``window``
  read-aheads outstanding, as real NFS clients do),
* per-chunk RPC processing at the server (XDR, context switches),
* per-byte protocol copy costs,
* the server's disk (through its buffer cache), and
* the reply bytes as a network flow sharing the path max-min fairly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.gridnet.flows import FlowEngine
from repro.simulation.kernel import Simulation
from repro.storage.base import FileSystem, StorageError, block_span
from repro.storage.cache import BlockCache
from repro.storage.localfs import LocalFileSystem

__all__ = ["NfsServer", "NfsClient", "NfsMount"]


class NfsServer:
    """Exports one local file system at one network host."""

    def __init__(self, sim: Simulation, host: str, fs: LocalFileSystem,
                 engine: FlowEngine, rpc_overhead: float = 3e-4,
                 per_byte_cost: float = 6e-8, chunk_size: int = 32768,
                 name: str = "nfsd"):
        if rpc_overhead < 0 or per_byte_cost < 0 or chunk_size <= 0:
            raise StorageError("invalid NFS server parameters")
        self.sim = sim
        self.host = host
        self.fs = fs
        self.engine = engine
        self.rpc_overhead = float(rpc_overhead)
        self.per_byte_cost = float(per_byte_cost)
        self.chunk_size = int(chunk_size)
        self.name = name
        self.rpc_count = 0
        self.bytes_served = 0

    def __repr__(self) -> str:
        return "<NfsServer %s@%s>" % (self.name, self.host)


class NfsClient:
    """Mount factory bound to one client host."""

    def __init__(self, sim: Simulation, host: str, engine: FlowEngine,
                 window: int = 8, cache_bytes: float = 64 * 1024 * 1024):
        self.sim = sim
        self.host = host
        self.engine = engine
        self.window = int(window)
        self.cache_bytes = cache_bytes

    def mount(self, server: NfsServer, name: str = "") -> "NfsMount":
        """Attach a server export; returns the mounted file system."""
        return NfsMount(self, server,
                        name=name or "%s:%s" % (server.host, server.name))


class NfsMount(FileSystem):
    """A mounted NFS export, usable like any other file system.

    ``loopback`` is True when client and server share a host — the
    paper's simulated-remote-file-system configuration.
    """

    def __init__(self, client: NfsClient, server: NfsServer, name: str):
        self.sim = client.sim
        self.client = client
        self.server = server
        self.name = name
        self.block_size = server.chunk_size
        self.cache = BlockCache(client.cache_bytes,
                                block_size=self.block_size,
                                name=name + ".clientcache")
        network = client.engine.network
        self._latency = network.latency(client.host, server.host)
        metrics = self.sim.metrics
        self._m_rpcs = metrics.counter("storage.nfs.rpc_calls")
        self._m_bytes = metrics.counter("storage.nfs.bytes")

    @property
    def loopback(self) -> bool:
        """True when the mount points back at the client's own host."""
        return self.client.host == self.server.host

    # -- metadata (one getattr round trip, not modelled per call) -----------

    def exists(self, name: str) -> bool:
        return self.server.fs.exists(name)

    def size(self, name: str) -> int:
        return self.server.fs.size(name)

    def listdir(self) -> List[str]:
        return self.server.fs.listdir()

    def create(self, name: str, size: int = 0) -> None:
        self.server.fs.create(name, size)

    def delete(self, name: str) -> None:
        self.server.fs.delete(name)
        self.cache.invalidate_file((self.name, name))

    # -- data path -----------------------------------------------------------

    def read(self, name: str, offset: int, nbytes: int,
             sequential: bool = True):
        """Read a byte range; client-cached chunks skip the wire."""
        size = self.server.fs.size(name)
        if offset + nbytes > size:
            raise StorageError("read past end of %s" % name)
        file_id = (self.name, name)
        # Inlined residency checks, mirroring LocalFileSystem.read: the
        # hit/miss counters are flushed before every yield so concurrent
        # observers see per-lookup counter state.
        cache = self.cache
        cached = cache._blocks
        move_to_end = cached.move_to_end
        hits = misses = 0
        miss_run: List[int] = []
        append_miss = miss_run.append
        for block in block_span(offset, nbytes, self.block_size):
            key = (file_id, block)
            if key in cached:
                move_to_end(key)
                hits += 1
                if miss_run:
                    cache.hits += hits
                    cache.misses += misses
                    hits = misses = 0
                    yield from self._fetch_run(name, file_id, miss_run)
                    miss_run.clear()  # append_miss stays bound to it
            else:
                misses += 1
                append_miss(block)
        cache.hits += hits
        cache.misses += misses
        if miss_run:
            yield from self._fetch_run(name, file_id, miss_run)

    def _fetch_run(self, name: str, file_id, blocks: List[int]):
        """RPC-fetch a run of consecutive chunks with read-ahead."""
        server = self.server
        nbytes = len(blocks) * self.block_size
        round_trips = math.ceil(len(blocks) / self.client.window)
        # Request round trips (read-ahead keeps `window` calls in flight).
        if self._latency:
            yield self.sim.timeout(2.0 * self._latency * round_trips)
        # Server-side RPC processing: per-call plus per-byte stack costs.
        yield self.sim.timeout(len(blocks) * server.rpc_overhead
                               + nbytes * server.per_byte_cost)
        # Server storage: clamp the run to the file (span may overshoot).
        span_offset = blocks[0] * self.block_size
        span_bytes = min(nbytes, server.fs.size(name) - span_offset)
        yield from server.fs.read(name, span_offset, span_bytes,
                                  sequential=len(blocks) > 1)
        # Reply payload rides the network as a flow.
        if not self.loopback:
            flow = self.client.engine.start_flow(server.host,
                                                 self.client.host, nbytes)
            yield flow.done
        server.rpc_count += len(blocks)
        server.bytes_served += nbytes
        self._m_rpcs.inc(len(blocks))
        self._m_bytes.inc(nbytes)
        self.cache.insert_run(file_id, blocks)

    def write(self, name: str, offset: int, nbytes: int,
              sequential: bool = True):
        """Write through to the server (NFSv2-style synchronous writes)."""
        server = self.server
        blocks = block_span(offset, nbytes, self.block_size)
        if not blocks:
            return
        round_trips = math.ceil(len(blocks) / self.client.window)
        if self._latency:
            yield self.sim.timeout(2.0 * self._latency * round_trips)
        payload = len(blocks) * self.block_size
        if not self.loopback:
            flow = self.client.engine.start_flow(self.client.host,
                                                 server.host, payload)
            yield flow.done
        yield self.sim.timeout(len(blocks) * server.rpc_overhead
                               + payload * server.per_byte_cost)
        yield from server.fs.write(name, offset, nbytes,
                                   sequential=sequential)
        server.rpc_count += len(blocks)
        server.bytes_served += payload
        self._m_rpcs.inc(len(blocks))
        self._m_bytes.inc(payload)
        self.cache.insert_run((self.name, name), blocks)

    def __repr__(self) -> str:
        kind = "loopback" if self.loopback else "remote"
        return "<NfsMount %s (%s)>" % (self.name, kind)
