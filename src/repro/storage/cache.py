"""An LRU block cache.

Used in three places, mirroring Figure 2 of the paper: as the kernel
buffer cache of a host file system, as the client-side file buffer of an
NFS mount, and as the proxy-controlled disk cache of a PVFS proxy (the
"second-level cache to the kernel's file buffers").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Optional, Tuple

from repro.storage.base import StorageError

__all__ = ["BlockCache"]


class BlockCache:
    """LRU cache of (file, block-index) keys.

    ``capacity_bytes`` and ``block_size`` define the block slot count; a
    capacity of zero disables caching (every lookup misses).
    """

    def __init__(self, capacity_bytes: float, block_size: int = 65536,
                 name: str = "cache"):
        if capacity_bytes < 0 or block_size <= 0:
            raise StorageError("invalid cache parameters")
        self.name = name
        self.block_size = int(block_size)
        self.capacity_blocks = int(capacity_bytes // block_size)
        self._blocks: "OrderedDict[Tuple[Hashable, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def size_blocks(self) -> int:
        """Blocks currently cached."""
        return len(self._blocks)

    @property
    def size_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._blocks) * self.block_size

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, file_id: Hashable, block: int) -> bool:
        """Check residency; updates recency and hit/miss counters."""
        key = (file_id, block)
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, file_id: Hashable, block: int) -> bool:
        """Residency check without touching recency or counters."""
        return (file_id, block) in self._blocks

    def insert(self, file_id: Hashable, block: int,
               dirty: bool = False) -> Optional[Tuple[Hashable, int]]:
        """Add a block, evicting the LRU block if full.

        Returns the evicted key, if any (callers modelling write-back can
        charge a flush for dirty evictions).
        """
        if self.capacity_blocks == 0:
            return None
        key = (file_id, block)
        blocks = self._blocks
        if key in blocks:
            blocks[key] = dirty
            blocks.move_to_end(key)
            return None
        evicted = None
        if len(blocks) >= self.capacity_blocks:
            evicted, _dirty = blocks.popitem(last=False)
        # A fresh assignment lands at the MRU end already.
        blocks[key] = dirty
        return evicted

    def insert_run(self, file_id: Hashable, run: Iterable[int],
                   dirty: bool = False) -> None:
        """Insert a run of blocks: same end state and eviction sequence
        as one :meth:`insert` per block, minus the per-call overhead.

        Run callers (file systems filling a cache behind one disk or RPC
        access) never charge per-block eviction costs, so the evicted
        keys are not reported.
        """
        capacity = self.capacity_blocks
        if capacity == 0:
            return
        blocks = self._blocks
        move_to_end = blocks.move_to_end
        popitem = blocks.popitem
        # Track the size locally: an eviction keeps it constant and a
        # fresh insert grows it by one, so the per-block ``len`` call
        # (millions per experiment when the cache thrashes) disappears.
        size = len(blocks)
        for block in run:
            key = (file_id, block)
            if key in blocks:
                blocks[key] = dirty
                move_to_end(key)
            elif size >= capacity:
                popitem(last=False)
                blocks[key] = dirty
            else:
                size += 1
                blocks[key] = dirty

    def invalidate_file(self, file_id: Hashable) -> int:
        """Drop every block of one file; returns the count dropped."""
        doomed = [key for key in self._blocks if key[0] == file_id]
        for key in doomed:
            del self._blocks[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters are preserved)."""
        self._blocks.clear()

    def __repr__(self) -> str:
        return "<BlockCache %s %d/%d blocks hit=%.2f>" % (
            self.name, len(self._blocks), self.capacity_blocks,
            self.hit_ratio)
