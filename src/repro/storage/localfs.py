"""DiskFS: a local file system on a machine's disk, with a buffer cache.

This is the "native file system" of Table 2.  Its two behaviours matter
for the paper's startup experiment:

* bulk sequential access streams at the disk's media rate;
* an explicit :meth:`copy` of a large file passes through the buffer
  cache, so reads issued shortly afterwards (a guest OS booting from a
  just-copied disk image) partially hit memory instead of the disk.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.disk import Disk
from repro.simulation.kernel import Simulation
from repro.storage.base import FileNotFound, FileSystem, StorageError, block_span
from repro.storage.cache import BlockCache

__all__ = ["LocalFileSystem"]

#: CPU/memory cost of serving one block from the buffer cache.
_HIT_COST = 4e-6


class LocalFileSystem(FileSystem):
    """A file system bound to one disk and one buffer cache."""

    def __init__(self, sim: Simulation, disk: Disk,
                 cache_bytes: float = 256 * 1024 * 1024,
                 block_size: int = 65536, name: str = "diskfs"):
        self.sim = sim
        self.disk = disk
        self.name = name
        self.block_size = int(block_size)
        self.cache = BlockCache(cache_bytes, block_size=self.block_size,
                                name=name + ".buffercache")
        self._files: Dict[str, int] = {}

    # -- metadata -------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def size(self, name: str) -> int:
        return self._require(self._files, name)

    def listdir(self) -> List[str]:
        return sorted(self._files)

    def create(self, name: str, size: int = 0) -> None:
        if size < 0:
            raise StorageError("file size must be non-negative")
        self._files[name] = int(size)

    def delete(self, name: str) -> None:
        self._require(self._files, name)
        del self._files[name]
        self.cache.invalidate_file((self.name, name))

    def _file_id(self, name: str):
        return (self.name, name)

    # -- data path --------------------------------------------------------------

    def read(self, name: str, offset: int, nbytes: int,
             sequential: bool = True):
        """Read a byte range; cached blocks skip the disk."""
        size = self._require(self._files, name)
        if offset + nbytes > size:
            raise StorageError("read past end of %s (%d+%d > %d)"
                               % (name, offset, nbytes, size))
        file_id = self._file_id(name)
        # Residency checks are inlined (no per-block ``cache.lookup``
        # call) on this hottest path.  The hit/miss counters are flushed
        # before every yield, so any process observing the cache at a
        # simulated instant sees exactly the per-call counter state.
        cache = self.cache
        cached = cache._blocks
        move_to_end = cached.move_to_end
        hits = misses = 0
        hit_cost = 0.0
        miss_run: List[int] = []  # consecutive missing blocks batch one access
        append_miss = miss_run.append
        for block in block_span(offset, nbytes, self.block_size):
            key = (file_id, block)
            if key in cached:
                move_to_end(key)
                hits += 1
                hit_cost += _HIT_COST
                if miss_run:
                    cache.hits += hits
                    cache.misses += misses
                    hits = misses = 0
                    yield from self._read_run(file_id, miss_run)
                    miss_run.clear()  # append_miss stays bound to it
            else:
                misses += 1
                append_miss(block)
        cache.hits += hits
        cache.misses += misses
        if miss_run:
            yield from self._read_run(file_id, miss_run)
        if hit_cost:
            yield self.sim.timeout(hit_cost)

    def _read_run(self, file_id, blocks: List[int]):
        """One disk access covering a run of consecutive missing blocks.

        The run pays one positioning cost and then streams, regardless of
        the caller's access pattern — runs are contiguous by construction.
        """
        yield from self.disk.read(len(blocks) * self.block_size,
                                  sequential=False)
        self.cache.insert_run(file_id, blocks)

    def write(self, name: str, offset: int, nbytes: int,
              sequential: bool = True):
        """Write a byte range (write-through), extending the file."""
        if name not in self._files:
            self._files[name] = 0
        file_id = self._file_id(name)
        blocks = block_span(offset, nbytes, self.block_size)
        if blocks:
            # One positioning cost, then the whole range streams.
            yield from self.disk.write(len(blocks) * self.block_size,
                                       sequential=False)
            self.cache.insert_run(file_id, blocks, dirty=False)
        self._files[name] = max(self._files[name], offset + nbytes)

    def copy(self, src: str, dst: str, chunk_bytes: int = 4 * 1024 * 1024):
        """Process generator: explicit whole-file copy on the same disk.

        Models Table 2's *persistent* mode: the copy streams through the
        buffer cache, leaving the tail of the source resident.
        """
        size = self._require(self._files, src)
        self.create(dst, 0)
        offset = 0
        while offset < size:
            chunk = min(chunk_bytes, size - offset)
            yield from self.read(src, offset, chunk, sequential=True)
            yield from self.write(dst, offset, chunk, sequential=True)
            offset += chunk

    def warm_fraction(self, name: str) -> float:
        """Fraction of the file's blocks resident in the buffer cache."""
        size = self._require(self._files, name)
        if size == 0:
            return 1.0
        blocks = block_span(0, size, self.block_size)
        resident = sum(1 for b in blocks
                       if self.cache.contains(self._file_id(name), b))
        return resident / len(blocks)

    def __repr__(self) -> str:
        return "<LocalFileSystem %s files=%d>" % (self.name, len(self._files))
