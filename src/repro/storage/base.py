"""The file-system interface shared by every storage service.

Only metadata and timing are simulated — files are (name, size) pairs and
reads/writes move simulated time and bytes, not contents.  All data-path
operations are process generators (``yield from fs.read(...)``) so that
they can consume disk, network and CPU resources.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simulation.kernel import SimulationError

__all__ = ["StorageError", "FileNotFound", "FileSystem", "block_span"]


class StorageError(SimulationError):
    """Base class for storage failures."""


class FileNotFound(StorageError):
    """The named file does not exist in this file system."""


def block_span(offset: int, nbytes: int, block_size: int) -> range:
    """Indices of the blocks covering ``[offset, offset + nbytes)``.

    Returns a ``range`` rather than a list: callers only iterate, ``len``
    and truth-test the span, and the read paths walk millions of spans
    per experiment, so the block indices are never materialized.
    """
    if offset < 0 or nbytes < 0:
        raise StorageError("offset and size must be non-negative")
    if nbytes == 0:
        return range(0)
    first = offset // block_size
    last = (offset + nbytes - 1) // block_size
    return range(first, last + 1)


class FileSystem:
    """Abstract file-system interface.

    Concrete implementations: :class:`~repro.storage.localfs.LocalFileSystem`,
    :class:`~repro.storage.nfs.NfsMount` and
    :class:`~repro.storage.pvfs.PvfsProxy`.
    """

    block_size: int = 65536

    def exists(self, name: str) -> bool:
        """True when ``name`` is present."""
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Size of ``name`` in bytes."""
        raise NotImplementedError

    def listdir(self) -> List[str]:
        """All file names."""
        raise NotImplementedError

    def create(self, name: str, size: int = 0) -> None:
        """Create (or replace) a file of the given size, instantly.

        Metadata-only: allocating space costs nothing; writing data does.
        """
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove a file."""
        raise NotImplementedError

    def read(self, name: str, offset: int, nbytes: int,
             sequential: bool = True):
        """Process generator: read a byte range."""
        raise NotImplementedError

    def write(self, name: str, offset: int, nbytes: int,
              sequential: bool = True):
        """Process generator: write a byte range (extends the file)."""
        raise NotImplementedError

    def read_file(self, name: str):
        """Process generator: read a whole file sequentially."""
        yield from self.read(name, 0, self.size(name), sequential=True)

    def _require(self, files: Dict[str, int], name: str) -> int:
        if name not in files:
            raise FileNotFound("%s: no such file" % name)
        return files[name]
