"""GridFTP/GASS-style explicit file staging.

Whole-file staging is the baseline data-management strategy in Globus
and PBS that the paper contrasts with on-demand virtual-file-system
access: it "transfers whole files when they are opened" and therefore
moves unused data (Section 3.1, "Image management").

The stager pipelines source-disk reads, the network flow and
destination-disk writes through bounded buffers, so throughput is set by
the slowest stage rather than the sum of stages.
"""

from __future__ import annotations

from typing import Optional

from repro.gridnet.flows import FlowEngine
from repro.simulation.kernel import Simulation
from repro.storage.base import FileSystem, StorageError

__all__ = ["FileStager"]

_DONE = object()


class FileStager:
    """Explicit whole-file transfers between hosts' file systems."""

    def __init__(self, sim: Simulation, engine: FlowEngine,
                 chunk_bytes: int = 1024 * 1024, pipeline_depth: int = 4,
                 handshake_time: float = 0.5):
        if chunk_bytes <= 0 or pipeline_depth < 1:
            raise StorageError("invalid stager parameters")
        self.sim = sim
        self.engine = engine
        self.chunk_bytes = int(chunk_bytes)
        self.pipeline_depth = int(pipeline_depth)
        self.handshake_time = float(handshake_time)
        self.bytes_staged = 0

    def stage(self, src_fs: FileSystem, src_host: str, src_name: str,
              dst_fs: FileSystem, dst_host: str,
              dst_name: Optional[str] = None):
        """Process generator: copy a whole file between two hosts.

        Stages: read at the source, one network flow per chunk window,
        write at the destination — connected by bounded stores so the
        pipeline's slowest stage sets the pace.
        """
        from repro.simulation.resources import Store

        dst_name = dst_name or src_name
        size = src_fs.size(src_name)
        dst_fs.create(dst_name, 0)
        span = self.sim.trace.begin(
            "storage", "stage %s" % src_name,
            track=("storage", "stager:%s->%s" % (src_host, dst_host)),
            bytes=size)
        yield self.sim.timeout(self.handshake_time)
        if size == 0:
            self.sim.trace.end(span)
            return 0

        to_net: Store = Store(self.sim, capacity=self.pipeline_depth)
        to_disk: Store = Store(self.sim, capacity=self.pipeline_depth)

        def reader(sim):
            offset = 0
            while offset < size:
                chunk = min(self.chunk_bytes, size - offset)
                yield from src_fs.read(src_name, offset, chunk,
                                       sequential=True)
                yield to_net.put((offset, chunk))
                offset += chunk
            yield to_net.put(_DONE)

        def shipper(sim):
            while True:
                item = yield to_net.get()
                if item is _DONE:
                    yield to_disk.put(_DONE)
                    return
                offset, chunk = item
                if src_host != dst_host:
                    flow = self.engine.start_flow(src_host, dst_host, chunk)
                    yield flow.done
                yield to_disk.put((offset, chunk))

        def writer(sim):
            total = 0
            while True:
                item = yield to_disk.get()
                if item is _DONE:
                    return total
                offset, chunk = item
                yield from dst_fs.write(dst_name, offset, chunk,
                                        sequential=True)
                total += chunk

        self.sim.spawn(reader(self.sim), name="stager.reader")
        self.sim.spawn(shipper(self.sim), name="stager.shipper")
        writer_proc = self.sim.spawn(writer(self.sim), name="stager.writer")
        total = yield writer_proc
        self.bytes_staged += total
        self.sim.trace.end(span)
        self.sim.metrics.counter("storage.stager.bytes").inc(total)
        return total
