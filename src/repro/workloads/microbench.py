"""The Figure 1 microbenchmark: a short compute-bound test task.

The paper measures "the degree to which a VMware-based VM monitor slows
down a compute-intensive task in the presence of background load", over
1000 samples per scenario.  The test task is pure user-mode computation
with the light kernel-event footprint of a real benchmark loop (timer
reads, occasional page faults while touching its working set).
"""

from __future__ import annotations

from repro.simulation.kernel import SimulationError
from repro.workloads.applications import (
    Application,
    ComputePhase,
    KernelEventRates,
)

__all__ = ["micro_test_task"]


def micro_test_task(seconds: float = 3.0) -> Application:
    """The synthetic test task whose slowdown Figure 1 reports."""
    if seconds <= 0:
        raise SimulationError("test task length must be positive")
    rates = KernelEventRates(syscalls_per_sec=200.0,
                             pagefaults_per_sec=120.0)
    return Application("micro-test", [ComputePhase(seconds, 0.0, rates)])
