"""Host-load traces and Dinda-style trace playback.

Figure 1's background load is produced by "host load trace playback of
load traces collected on the Pittsburgh Supercomputing Center's Alpha
Cluster".  The real traces are not available, so :meth:`HostLoadTrace
.synthetic` generates AR(1) traces with lognormal-shaped marginals and
occasional spikes — matching the published character of the PSC traces
(bursty, autocorrelated, heavy-tailed) — and :class:`LoadPlayback`
recreates the load on a simulated machine the way Dinda's playback tool
does: each interval it spawns compute bursts totalling ``load x
interval`` CPU-seconds.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.simulation.kernel import SimulationError
from repro.workloads.applications import (
    Application,
    ComputePhase,
    KernelEventRates,
)

__all__ = ["HostLoadTrace", "LoadPlayback"]

#: Kernel-event rates of a playback burst (it is a real spinning program).
_BURST_RATES = KernelEventRates(syscalls_per_sec=120.0,
                                pagefaults_per_sec=60.0)


class HostLoadTrace:
    """A sequence of load-average samples at a fixed interval."""

    def __init__(self, values: List[float], interval: float = 1.0,
                 name: str = "trace"):
        if interval <= 0:
            raise SimulationError("trace interval must be positive")
        if any(v < 0 for v in values):
            raise SimulationError("load values must be non-negative")
        self.values = [float(v) for v in values]
        self.interval = float(interval)
        self.name = name

    def __len__(self) -> int:
        return len(self.values)

    @property
    def duration(self) -> float:
        """Seconds of load the trace covers before repeating."""
        return len(self.values) * self.interval

    @property
    def mean(self) -> float:
        """Average load over the trace."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def value_at(self, time: float) -> float:
        """Load during the interval containing ``time`` (trace repeats)."""
        if not self.values:
            return 0.0
        index = int(time / self.interval) % len(self.values)
        return self.values[index]

    # -- constructors -----------------------------------------------------------

    @classmethod
    def none(cls, length: int = 60, interval: float = 1.0) -> "HostLoadTrace":
        """An idle machine."""
        return cls([0.0] * length, interval, name="none")

    @classmethod
    def synthetic(cls, mean: float, rng: random.Random, length: int = 300,
                  interval: float = 1.0, autocorrelation: float = 0.85,
                  burstiness: float = 0.6, spike_probability: float = 0.02,
                  name: str = "synthetic") -> "HostLoadTrace":
        """An AR(1) trace with lognormal-shaped marginals and rare spikes.

        ``mean`` sets the long-run load average; ``autocorrelation`` the
        epoch-to-epoch persistence (PSC traces are strongly
        autocorrelated); ``burstiness`` the coefficient of variation.
        """
        if mean < 0:
            raise SimulationError("mean load must be non-negative")
        if not 0 <= autocorrelation < 1:
            raise SimulationError("autocorrelation must be in [0, 1)")
        values = []
        state = 0.0
        sigma = math.sqrt(1.0 - autocorrelation ** 2)
        for _i in range(length):
            state = autocorrelation * state + sigma * rng.gauss(0.0, 1.0)
            level = mean * math.exp(burstiness * state
                                    - 0.5 * burstiness ** 2)
            if rng.random() < spike_probability:
                level += mean * rng.uniform(1.0, 3.0)
            values.append(max(0.0, level))
        return cls(values, interval, name=name)

    @classmethod
    def light(cls, rng: random.Random, length: int = 300,
              interval: float = 1.0) -> "HostLoadTrace":
        """A lightly loaded interactive host (mean load ~0.2)."""
        return cls.synthetic(0.2, rng, length, interval, name="light")

    @classmethod
    def heavy(cls, rng: random.Random, length: int = 300,
              interval: float = 1.0) -> "HostLoadTrace":
        """A busy compute server (mean load ~1.2, frequently >1)."""
        return cls.synthetic(1.2, rng, length, interval, name="heavy")

    def __repr__(self) -> str:
        return "<HostLoadTrace %s n=%d mean=%.2f>" % (self.name,
                                                      len(self.values),
                                                      self.mean)


class LoadPlayback:
    """Recreates a load trace on an operating system, Dinda-style.

    Every ``trace.interval`` seconds the playback spawns compute bursts
    totalling ``load x interval`` CPU-seconds: one full burst per whole
    unit of load plus one fractional burst, mirroring how a load average
    of 2.4 means "2.4 runnable processes".

    ``os`` is any booted :class:`repro.guestos.kernel.OperatingSystem`
    (host or guest) — imported lazily to keep this package dependency-free.
    """

    def __init__(self, os, trace: HostLoadTrace):
        self.os = os
        self.trace = trace
        self.work_injected = 0.0
        self.work_dropped = 0.0
        self._burst_counter = 0
        self._alive: list = []

    def _burst_app(self, work: float) -> Application:
        self._burst_counter += 1
        return Application("load-burst-%d" % self._burst_counter,
                           [ComputePhase(work, 0.0, _BURST_RATES)])

    def run(self, duration: float):
        """Process generator: play the trace for ``duration`` seconds."""
        sim = self.os.sim
        end = sim.now + duration
        position = 0
        values = self.trace.values
        nvalues = len(values)
        overdue_after = 1.05 * self.trace.interval
        while sim.now < end - 1e-9:
            load = values[position % nvalues] if nvalues else 0.0
            position += 1
            interval = min(self.trace.interval, end - sim.now)
            total_work = load * interval
            if total_work > 0:
                # Like the real playback tool, recreate the *current*
                # load level rather than accumulating deficit: bursts
                # that have outlived a whole interval (the machine is
                # saturated) count against this interval's target, so a
                # saturated machine sees a steady queue, not unbounded
                # backlog.
                bursts = max(1, int(math.ceil(load)))
                # One pass filters dead bursts and counts overdue ones.
                now = sim.now
                alive = []
                overdue = 0
                for entry in self._alive:
                    if entry[0].is_alive:
                        alive.append(entry)
                        if now - entry[1] > overdue_after:
                            overdue += 1
                self._alive[:] = alive
                to_spawn = max(0, bursts - overdue)
                per_burst = total_work / bursts
                for _i in range(to_spawn):
                    app = self._burst_app(per_burst)
                    self._alive.append((sim.spawn(
                        self.os.run_application(app), name="loadburst"),
                        sim.now))
                self.work_injected += per_burst * to_spawn
                self.work_dropped += per_burst * (bursts - to_spawn)
            yield sim.timeout(interval)
        return self.work_injected
