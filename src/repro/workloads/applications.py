"""The application model and the paper's synthetic macrobenchmarks.

An :class:`Application` is a sequence of phases:

* :class:`ComputePhase` — user/system CPU demand together with the rates
  of kernel events (system calls, page faults) that a VMM must trap and
  emulate.  On physical hardware the rates are free — their cost is
  already inside the native user/sys split; inside a classic VM they
  produce the dilation the paper measures.
* :class:`IoPhase` — file reads/writes against the operating system's
  mounted file systems.

The two SPEChpc applications of Table 1 are modelled from their measured
profiles: both are overwhelmingly user-mode compute, SPECseis with a
larger input deck and very low memory-virtualization activity (~1%
observed VM dilation), SPECclimate with a much higher page-fault/TLB
rate (~4% observed dilation).  ``scale`` shrinks the multi-hour runs for
tests and benchmarks while preserving every ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.simulation.kernel import SimulationError

__all__ = [
    "KernelEventRates",
    "ComputePhase",
    "IoPhase",
    "Application",
    "spec_seis",
    "spec_climate",
    "synthetic_compute",
    "architecture_simulation",
    "device_simulation",
]


@dataclass(frozen=True)
class KernelEventRates:
    """Rates of kernel events per second of guest CPU time."""

    syscalls_per_sec: float = 0.0
    pagefaults_per_sec: float = 0.0

    def __post_init__(self):
        if self.syscalls_per_sec < 0 or self.pagefaults_per_sec < 0:
            raise SimulationError("event rates must be non-negative")


@dataclass(frozen=True)
class ComputePhase:
    """CPU demand: ``user_seconds`` of user code, ``sys_seconds`` in-kernel."""

    user_seconds: float
    sys_seconds: float = 0.0
    rates: KernelEventRates = field(default_factory=KernelEventRates)

    def __post_init__(self):
        if self.user_seconds < 0 or self.sys_seconds < 0:
            raise SimulationError("phase durations must be non-negative")


@dataclass(frozen=True)
class IoPhase:
    """File I/O: ``nbytes`` at ``path`` through the OS's file systems."""

    path: str
    nbytes: int
    write: bool = False
    sequential: bool = True
    offset: int = 0

    def __post_init__(self):
        if self.nbytes < 0 or self.offset < 0:
            raise SimulationError("I/O sizes must be non-negative")


Phase = Union[ComputePhase, IoPhase]


class Application:
    """A named sequence of phases plus the input files it expects."""

    def __init__(self, name: str, phases: List[Phase],
                 input_files: dict = None):
        if not phases:
            raise SimulationError("application needs at least one phase")
        self.name = name
        self.phases = list(phases)
        #: path -> size in bytes; provisioned into the guest before a run.
        self.input_files = dict(input_files or {})

    @property
    def total_user_seconds(self) -> float:
        """Nominal user CPU demand across all compute phases."""
        return sum(p.user_seconds for p in self.phases
                   if isinstance(p, ComputePhase))

    @property
    def total_sys_seconds(self) -> float:
        """Nominal system CPU demand across all compute phases."""
        return sum(p.sys_seconds for p in self.phases
                   if isinstance(p, ComputePhase))

    @property
    def total_io_bytes(self) -> int:
        """Bytes moved by all I/O phases."""
        return sum(p.nbytes for p in self.phases if isinstance(p, IoPhase))

    def __repr__(self) -> str:
        return "<Application %s %d phases>" % (self.name, len(self.phases))


def spec_seis(scale: float = 1.0) -> Application:
    """SPECseis96-like seismic processing (Table 1 profile).

    Measured on the paper's testbed: 16395 s user + 19 s sys natively,
    ~1% VM user dilation (low page-fault rate), a multi-hundred-MB trace
    deck streamed once and intermediate results written back.
    """
    if scale <= 0:
        raise SimulationError("scale must be positive")
    deck = int(256 * 1024 * 1024 * scale)
    rates = KernelEventRates(syscalls_per_sec=25.0, pagefaults_per_sec=220.0)
    phases: List[Phase] = [
        IoPhase("/data/seismic-traces", deck, sequential=True),
        ComputePhase(16395.0 * scale * 0.5, 19.0 * scale * 0.5, rates),
        IoPhase("/data/seismic-stack", deck // 4, write=True),
        ComputePhase(16395.0 * scale * 0.5, 19.0 * scale * 0.5, rates),
        IoPhase("/data/seismic-image", deck // 8, write=True),
    ]
    return Application("SPECseis", phases,
                       input_files={"/data/seismic-traces": deck})


def spec_climate(scale: float = 1.0) -> Application:
    """SPECclimate-like climate modelling (Table 1 profile).

    Measured natively at 9304 s user + 3 s sys with ~4% VM user dilation:
    a latency-bound stencil code with a high page-fault/TLB-miss rate and
    a small input deck.
    """
    if scale <= 0:
        raise SimulationError("scale must be positive")
    deck = int(48 * 1024 * 1024 * scale)
    rates = KernelEventRates(syscalls_per_sec=10.0, pagefaults_per_sec=1450.0)
    phases: List[Phase] = [
        IoPhase("/data/climate-state", deck, sequential=True),
        ComputePhase(9304.0 * scale, 3.0 * scale, rates),
        IoPhase("/data/climate-history", deck // 2, write=True),
    ]
    return Application("SPECclimate", phases,
                       input_files={"/data/climate-state": deck})


def synthetic_compute(seconds: float, name: str = "spin",
                      rates: KernelEventRates = None) -> Application:
    """A pure compute-bound task (the Figure 1 microbenchmark shape)."""
    if seconds <= 0:
        raise SimulationError("seconds must be positive")
    return Application(name, [ComputePhase(seconds, 0.0,
                                           rates or KernelEventRates())])


def architecture_simulation(hours: float = 2.0) -> Application:
    """A SimpleScalar-style computer-architecture simulation.

    The paper motivates VM grids with "user communities such as computer
    architecture and solid-state device simulations" (the PUNCH portal).
    Cycle-accurate simulators are long-running, pointer-chasing,
    syscall-light user code with a moderate fault rate, checkpointing
    statistics periodically.
    """
    if hours <= 0:
        raise SimulationError("hours must be positive")
    seconds = hours * 3600.0
    rates = KernelEventRates(syscalls_per_sec=15.0,
                             pagefaults_per_sec=600.0)
    checkpoints = max(1, int(hours * 4))
    phases: List[Phase] = [
        IoPhase("/work/benchmark.bin", 32 * 1024 * 1024, sequential=True),
    ]
    per_leg = seconds / checkpoints
    for i in range(checkpoints):
        phases.append(ComputePhase(per_leg * 0.995, per_leg * 0.005,
                                   rates))
        phases.append(IoPhase("/work/stats-%d.out" % i, 2 * 1024 * 1024,
                              write=True))
    return Application("arch-sim", phases,
                       input_files={"/work/benchmark.bin":
                                    32 * 1024 * 1024})


def device_simulation(hours: float = 1.0) -> Application:
    """A solid-state device (TCAD) simulation, PUNCH's other community.

    Dense linear algebra over meshes: very fault-heavy (large working
    set swept repeatedly), tiny I/O, negligible sys time — the workload
    class where VM user-time dilation peaks.
    """
    if hours <= 0:
        raise SimulationError("hours must be positive")
    seconds = hours * 3600.0
    rates = KernelEventRates(syscalls_per_sec=5.0,
                             pagefaults_per_sec=1800.0)
    phases: List[Phase] = [
        IoPhase("/work/mesh.in", 8 * 1024 * 1024, sequential=True),
        ComputePhase(seconds * 0.999, seconds * 0.001, rates),
        IoPhase("/work/solution.out", 4 * 1024 * 1024, write=True),
    ]
    return Application("device-sim", phases,
                       input_files={"/work/mesh.in": 8 * 1024 * 1024})
