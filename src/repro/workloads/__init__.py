"""Workload generation: applications, background host load, microbenchmarks.

* :mod:`~repro.workloads.applications` — the application model (compute
  and I/O phases with kernel-event rates) plus SPEChpc-like synthetic
  applications matching the paper's Table 1 profiles;
* :mod:`~repro.workloads.hostload` — synthetic host-load traces and the
  Dinda-style trace-playback engine used for Figure 1's background load;
* :mod:`~repro.workloads.microbench` — the compute-bound test task whose
  slowdown Figure 1 measures.
"""

from repro.workloads.applications import (
    Application,
    ComputePhase,
    IoPhase,
    KernelEventRates,
    architecture_simulation,
    device_simulation,
    spec_climate,
    spec_seis,
    synthetic_compute,
)
from repro.workloads.hostload import HostLoadTrace, LoadPlayback
from repro.workloads.microbench import micro_test_task

__all__ = [
    "Application",
    "ComputePhase",
    "HostLoadTrace",
    "architecture_simulation",
    "device_simulation",
    "IoPhase",
    "KernelEventRates",
    "LoadPlayback",
    "micro_test_task",
    "spec_climate",
    "spec_seis",
    "synthetic_compute",
]
