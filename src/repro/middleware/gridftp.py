"""GridFTP-style authenticated explicit transfers.

The explicit alternative to on-demand virtual-file-system access in the
session's step 3 ("this data connection can be established via explicit
transfers (e.g. GridFTP) or via implicit, on-demand transfers").  Wraps
the storage-layer :class:`~repro.storage.transfer.FileStager` with GSI
authentication and transfer bookkeeping.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.simulation.kernel import Simulation, SimulationError
from repro.storage.base import FileSystem
from repro.storage.transfer import FileStager

__all__ = ["GridFtpService"]


class GridFtpService:
    """Authenticated whole-file transfers between grid hosts."""

    def __init__(self, sim: Simulation, stager: FileStager,
                 auth_time: float = 1.4):
        if auth_time < 0:
            raise SimulationError("auth time must be non-negative")
        self.sim = sim
        self.stager = stager
        self.auth_time = float(auth_time)
        #: (src_host, dst_host, name, bytes, seconds) per completed transfer.
        self.log: List[Tuple[str, str, str, int, float]] = []  # simlint: disable=R23  experiment artifact: the transfer ledger tests and reports read back

    def transfer(self, src_fs: FileSystem, src_host: str, name: str,
                 dst_fs: FileSystem, dst_host: str,
                 dst_name: Optional[str] = None):
        """Process generator: authenticate, then stage the whole file."""
        start = self.sim.now
        span = self.sim.trace.begin(
            "storage", "gridftp %s" % name,
            track=("storage", "gridftp:%s->%s" % (src_host, dst_host)),
            src=src_host, dst=dst_host)
        yield self.sim.timeout(self.auth_time)
        moved = yield from self.stager.stage(src_fs, src_host, name,
                                             dst_fs, dst_host,
                                             dst_name=dst_name)
        self.sim.trace.end(span)
        elapsed = self.sim.now - start
        self.log.append((src_host, dst_host, name, moved, elapsed))
        metrics = self.sim.metrics
        metrics.counter("storage.gridftp.transfers").inc()
        metrics.counter("storage.gridftp.bytes").inc(moved)
        metrics.histogram("storage.gridftp.duration").observe(elapsed)
        return moved

    @property
    def bytes_moved(self) -> int:
        """Total payload across all completed transfers."""
        return sum(entry[3] for entry in self.log)

    def __repr__(self) -> str:
        return "<GridFtpService transfers=%d>" % len(self.log)
