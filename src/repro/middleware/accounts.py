"""Logical user accounts.

The paper (and its PUNCH lineage, Section 3.1) replaces per-site Unix
accounts with *logical* users: grid identities whose rights are only to
"instantiate and store virtual machines", while the identities inside a
VM guest are completely decoupled from the identities of its host.  The
registry below is the middleware-side half: grid credentials, per-site
rights, and the mapping of logical users onto VM instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.simulation.kernel import SimulationError

__all__ = ["LogicalUser", "AccountRegistry", "AuthorizationError"]

#: Rights a logical user can hold at a site.
RIGHTS = ("instantiate", "store", "query")


class AuthorizationError(SimulationError):
    """The logical user lacks the required right at the site."""


class LogicalUser:
    """A grid identity (an SSH key / Globus certificate subject)."""

    def __init__(self, name: str, home_site: str = "home"):
        if not name:
            raise SimulationError("user needs a name")
        self.name = name
        self.home_site = home_site
        #: VM names this user currently owns, per site.
        self.vms: List[str] = []

    def __repr__(self) -> str:
        return "<LogicalUser %s@%s>" % (self.name, self.home_site)


class AccountRegistry:
    """Per-site rights for logical users.

    Note what is *absent*: there is no Unix uid, no home directory, no
    shell — root inside the guest is fine because "the actions of
    malicious users are confined to their VMs" (Section 2.2).
    """

    def __init__(self):
        self._users: Dict[str, LogicalUser] = {}  # simlint: disable=R23  the account registry IS the durable user database; accounts outlive sessions by design
        self._rights: Dict[str, Dict[str, Set[str]]] = {}

    def register(self, user: LogicalUser) -> LogicalUser:
        """Add a user to the registry."""
        if user.name in self._users:
            raise SimulationError("user %s already registered" % user.name)
        self._users[user.name] = user
        self._rights[user.name] = {}
        return user

    def create_user(self, name: str, home_site: str = "home") -> LogicalUser:
        """Convenience: build and register in one step."""
        return self.register(LogicalUser(name, home_site))

    def lookup(self, name: str) -> LogicalUser:
        """Find a registered user."""
        if name not in self._users:
            raise SimulationError("unknown user %s" % name)
        return self._users[name]

    def grant(self, user: str, site: str, *rights: str) -> None:
        """Give ``user`` rights at ``site``."""
        if user not in self._users:
            raise SimulationError("unknown user %s" % user)
        for right in rights:
            if right not in RIGHTS:
                raise SimulationError("unknown right %r" % right)
        self._rights[user].setdefault(site, set()).update(rights)

    def revoke(self, user: str, site: str, right: str) -> None:
        """Remove one right."""
        self._rights.get(user, {}).get(site, set()).discard(right)

    def authorized(self, user: str, site: str, right: str) -> bool:
        """Check a right without raising."""
        return right in self._rights.get(user, {}).get(site, set())

    def require(self, user: str, site: str, right: str) -> None:
        """Raise :class:`AuthorizationError` unless the right is held."""
        if not self.authorized(user, site, right):
            raise AuthorizationError(
                "%s may not %s at %s" % (user, right, site))

    def bind_vm(self, user: str, vm_name: str) -> None:
        """Record that a VM instance belongs to a logical user."""
        self.lookup(user).vms.append(vm_name)

    def release_vm(self, user: str, vm_name: str) -> None:
        """Drop the binding when a VM's life cycle ends."""
        owner = self.lookup(user)
        if vm_name in owner.vms:
            owner.vms.remove(vm_name)

    def users_at(self, site: str) -> List[str]:
        """Users holding any right at a site."""
        return sorted(u for u, sites in self._rights.items() if site in sites
                      and sites[site])
