"""The image server: archives static VM states (Figure 2's server I).

An image server is a host with a file system holding base OS images and
warm memory-state files, an NFS export so compute servers can mount it,
and a catalogue it publishes to the information service.  Master images
are read-only shared — the access pattern the PVFS proxy cache exploits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.gridnet.flows import FlowEngine
from repro.guestos.interface import PhysicalHost
from repro.simulation.kernel import Simulation, SimulationError
from repro.storage.localfs import LocalFileSystem
from repro.storage.nfs import NfsClient, NfsMount, NfsServer
from repro.vmm.disk_image import DiskImage

__all__ = ["ImageServer"]


class ImageServer:
    """Archive of base OS images and warm memory states."""

    def __init__(self, host: PhysicalHost, engine: FlowEngine,
                 name: str = ""):
        self.sim = host.sim
        self.host = host
        self.engine = engine
        self.name = name or ("images@" + host.name)
        self.fs: LocalFileSystem = host.root_fs
        self.nfs = NfsServer(self.sim, host.machine.name, self.fs, engine,
                             name=self.name + ".nfsd")
        #: image name -> (DiskImage, metadata)
        self._catalogue: Dict[str, Tuple[DiskImage, dict]] = {}

    # -- publishing -----------------------------------------------------------

    def publish_image(self, name: str, size_bytes: int,
                      os_name: str = "redhat-7.2",
                      warm_state_mb: Optional[int] = None,
                      **metadata) -> DiskImage:
        """Create and catalogue a master image (plus optional warm state).

        ``warm_state_mb`` also stores a post-boot memory-state file so
        VM-restore startups are possible from this image.
        """
        if name in self._catalogue:
            raise SimulationError("image %s already published" % name)
        image = DiskImage(self.fs, name, size_bytes, create=True)
        record = dict(metadata)
        record.update({
            "image": name,
            "os": os_name,
            "size_bytes": size_bytes,
            "server": self.host.machine.name,
            "site": self.host.machine.site,
            "has_warm_state": warm_state_mb is not None,
        })
        if warm_state_mb is not None:
            self.fs.create(self.memstate_name(name),
                           warm_state_mb * 1024 * 1024)
        self._catalogue[name] = (image, record)
        return image

    @staticmethod
    def memstate_name(image_name: str) -> str:
        """File name of an image's warm (post-boot) memory state."""
        return image_name + ".memstate"

    def lookup(self, name: str) -> DiskImage:
        """Fetch a catalogued image handle."""
        if name not in self._catalogue:
            raise SimulationError("no image named %s" % name)
        return self._catalogue[name][0]

    def record(self, name: str) -> dict:
        """The information-service record for one image."""
        if name not in self._catalogue:
            raise SimulationError("no image named %s" % name)
        return dict(self._catalogue[name][1])

    def records(self):
        """All catalogue records (for registration)."""
        return [dict(meta) for _img, meta in self._catalogue.values()]

    # -- access ----------------------------------------------------------------

    def mount_from(self, client_host: str,
                   cache_bytes: float = 64 * 1024 * 1024) -> NfsMount:
        """An NFS mount of this server as seen from ``client_host``."""
        client = NfsClient(self.sim, client_host, self.engine,
                           cache_bytes=cache_bytes)
        return client.mount(self.nfs, name="%s-on-%s" % (self.name,
                                                         client_host))

    def __repr__(self) -> str:
        return "<ImageServer %s images=%d>" % (self.name,
                                               len(self._catalogue))
