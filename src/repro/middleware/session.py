"""The VM grid session: the six-step life cycle of Section 4 / Figure 3.

1. Query the information service for a *VM future* — a physical machine
   able to instantiate a dynamic VM meeting the user's needs.
2. Query for an image server holding a suitable base O/S image.
3. Establish the data session between the physical server P and the
   image server I — explicit (GridFTP staging onto local disk) or
   implicit (an NFS mount, optionally behind a PVFS proxy).
4. Negotiate VM startup through GRAM (``globusrun``), from a cold
   (pre-boot) or warm (post-boot, restored) state, and put the VM on
   the network (DHCP from the site's pool, or an Ethernet tunnel back
   to the user's home network).
5. Establish the guest's own data sessions: the user's data server is
   mounted *inside* the VM, through a PVFS proxy.
6. Execute applications in the virtual machine.

The session object records a timeline of the steps and exposes the
running VM; shutdown, suspend and migrate close the life cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.guestos.profile import GuestOsProfile
from repro.gridnet.tunnel import EthernetTunnel
from repro.simulation.kernel import SimulationError
from repro.storage.pvfs import PvfsProxy
from repro.vmm.disk_image import DiskImage
from repro.vmm.virtual_machine import VmConfig, VmState

__all__ = ["SessionConfig", "GridSession", "StepRecord"]

IMAGE_ACCESS_MODES = ("local-copy", "nfs", "pvfs")
START_MODES = ("boot", "restore")
NETWORKING_MODES = ("dhcp", "tunnel", "none")


@dataclass
class SessionConfig:
    """What the user (or middleware acting for them) asks for."""

    user: str
    image: str
    vm_name: Optional[str] = None
    memory_mb: int = 128
    disk_mode: str = "nonpersistent"
    image_access: str = "pvfs"
    start_mode: str = "restore"
    networking: str = "dhcp"
    guest_profile: GuestOsProfile = field(default_factory=GuestOsProfile)
    proxy_cache_bytes: float = 512 * 1024 * 1024
    mount_user_data: bool = True
    #: Extra constraints on the VM-future query (e.g. site="uf").
    host_constraints: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.image_access not in IMAGE_ACCESS_MODES:
            raise SimulationError("image_access must be one of %s"
                                  % (IMAGE_ACCESS_MODES,))
        if self.start_mode not in START_MODES:
            raise SimulationError("start_mode must be one of %s"
                                  % (START_MODES,))
        if self.networking not in NETWORKING_MODES:
            raise SimulationError("networking must be one of %s"
                                  % (NETWORKING_MODES,))
        if self.disk_mode == "persistent" \
                and self.image_access != "local-copy":
            raise SimulationError("persistent disks require an explicit "
                                  "local copy (image_access='local-copy')")


class StepRecord:
    """Timing of one life-cycle step."""

    def __init__(self, index: int, title: str, started: float):
        self.index = index
        self.title = title
        self.started = started
        self.finished: Optional[float] = None
        #: The tracer span covering the step (a null span when untraced).
        self.span = None

    @property
    def duration(self) -> Optional[float]:
        if self.finished is None:
            return None
        return self.finished - self.started

    def __repr__(self) -> str:
        return "<Step %d %s %.2fs>" % (self.index, self.title,
                                       self.duration or -1.0)


class GridSession:
    """One user's VM session on the grid.

    ``grid`` is any object exposing the component registry —
    :class:`repro.core.grid.VirtualGrid` in practice:
    ``info``, ``accounts``, ``engine``, ``network``, ``gridftp``,
    ``vmm_for(host)``, ``gram_for(host)``, ``image_server_for(host)``,
    ``dhcp_for(site)``, ``data_server``, ``home_gateway_of(user)``.
    """

    def __init__(self, grid, config: SessionConfig):
        self.sim = grid.sim
        self.grid = grid
        self.config = config
        self.steps: List[StepRecord] = []  # simlint: disable=R23  per-session instance: a handful of lifecycle steps per session, freed with it
        self.vm = None
        self.vmm = None
        self.image_server = None
        self.gram_job = None
        self.lease = None
        self.tunnel: Optional[EthernetTunnel] = None
        self.user_data_fs = None
        self._established = False

    # -- step bookkeeping ---------------------------------------------------------

    def _step(self, index: int, title: str) -> StepRecord:
        record = StepRecord(index, title, self.sim.now)
        record.span = self.sim.trace.begin(
            "session", "step %d: %s" % (index, title),
            track=("session:%s" % self.config.user, "lifecycle"),
            user=self.config.user, image=self.config.image)
        self.steps.append(record)
        return record

    def _metrics(self):
        """The metrics view session observations go to.

        Keyed to the compute host's partition once a VMM is chosen
        (step 1 onward), so per-shard registries fold to exactly the
        single-process result; duck-typed so bare test grids without
        ``scoped_metrics`` still work.
        """
        scoped = getattr(self.grid, "scoped_metrics", None)
        if scoped is not None and self.vmm is not None:
            return scoped(self.vmm.machine.name)
        return self.sim.metrics

    def _finish(self, record: StepRecord) -> None:
        record.finished = self.sim.now
        self.sim.trace.end(record.span)
        self._metrics().histogram(
            "session.step%d.duration" % record.index).observe(
                record.finished - record.started)

    @property
    def guest_os(self):
        """The guest operating system, once the VM exists."""
        if self.vm is None:
            raise SimulationError("session has no VM yet")
        return self.vm.guest_os

    @property
    def established(self) -> bool:
        """True once all six steps completed."""
        return self._established

    # -- the six steps -----------------------------------------------------------

    def establish(self):
        """Process generator: run steps 1-5 (6 is :meth:`run_application`)."""
        grid = self.grid
        config = self.config
        grid.accounts.require(config.user, "grid", "instantiate")

        # Step 1: find a VM future.
        step = self._step(1, "query VM future")
        futures = yield from grid.info.query(
            "vm_futures", limit=1, count__gt=0,
            max_memory_mb__ge=config.memory_mb, **config.host_constraints)
        if not futures:
            raise SimulationError("no VM future satisfies the request")
        future = futures[0]
        host_name = future["host"]
        self.vmm = grid.vmm_for(host_name)
        self._finish(step)

        # Step 2: find the image.
        step = self._step(2, "query image server")
        images = yield from grid.info.query("images", limit=1,
                                            image=config.image)
        if not images:
            raise SimulationError("image %s not advertised" % config.image)
        image_record = images[0]
        self.image_server = grid.image_server_for(image_record["server"])
        self._finish(step)

        # Step 3: data session between P and I.
        step = self._step(3, "image data session (%s)" % config.image_access)
        base_image, memstate, remote_cpu = yield from self._image_session()
        self._finish(step)

        # Step 4: GRAM-dispatched VM startup + network attachment.
        step = self._step(4, "globusrun VM startup (%s)" % config.start_mode)
        gram = grid.gram_for(host_name)
        vm_name = config.vm_name or "%s-%s-vm" % (config.user, config.image)
        body = self._startup_body(vm_name, base_image, memstate, remote_cpu)
        self.gram_job = yield from gram.submit(body, name="start-" + vm_name)
        self._finish(step)

        # Step 5: guest-side data sessions.
        step = self._step(5, "user data session")
        if config.mount_user_data and grid.data_server is not None:
            self.user_data_fs = grid.data_server.mount_from(
                self.vmm.machine.name, config.user)
            self.guest_os.mount("/home/%s" % config.user, self.user_data_fs)
        self._finish(step)

        # Bookkeeping: the future is consumed; the VM becomes a resource.
        grid.info.unregister("vm_futures", host=host_name)
        future = dict(future)
        future["count"] -= 1
        grid.info.register("vm_futures", future)
        grid.info.register("vms", self.vm.state_summary())
        grid.accounts.bind_vm(config.user, self.vm.name)
        self._established = True

        # SLA accounting: full establish latency (steps 1-5) against
        # the grid's session-start objective.
        metrics = self._metrics()
        latency = self.sim.now - self.steps[0].started
        metrics.histogram("sla.session_start.latency").observe(latency)
        sla = getattr(grid, "sla", None)
        if sla is not None and latency > sla.session_start_seconds:
            metrics.counter("sla.session_start.violations").inc()
        metrics.counter("session.established").inc()
        metrics.rate("session.starts", window=600.0).mark(self.sim.now)
        return self

    def _image_session(self):
        """Step 3 internals: make the base image reachable from host P."""
        grid = self.grid
        config = self.config
        host_machine = self.vmm.machine.name
        image_name = config.image
        memstate_file = self.image_server.memstate_name(image_name)
        local = self.image_server.host.machine.name == host_machine

        if config.image_access == "local-copy":
            # Explicit transfers (GridFTP) onto the host's local disk; a
            # same-host image server degenerates to a disk-to-disk copy.
            host_fs = self.vmm.host.root_fs
            server_fs = self.image_server.fs
            server_host = self.image_server.host.machine.name
            size = self.image_server.lookup(image_name).size_bytes
            same_fs = local and host_fs is server_fs
            if same_fs:
                yield from host_fs.copy(image_name, image_name + ".private")
            else:
                yield from grid.gridftp.transfer(
                    server_fs, server_host, image_name, host_fs,
                    host_machine, dst_name=image_name + ".private")
            base = DiskImage(host_fs, image_name + ".private", size)
            memstate = None
            if config.start_mode == "restore":
                if same_fs:
                    memstate = (host_fs, memstate_file)
                else:
                    yield from grid.gridftp.transfer(
                        server_fs, server_host, memstate_file, host_fs,
                        host_machine)
                    memstate = (host_fs, memstate_file)
            return base, memstate, 0.0

        # Implicit, on-demand access: NFS mount, optionally proxied.
        # The PVFS proxy is shared per (host, image server) so that the
        # read-only master image is cached once for all sessions.
        if config.image_access == "pvfs":
            access_fs = grid.image_proxy_for(
                host_machine, self.image_server.host.machine.name,
                config.proxy_cache_bytes)
        else:
            access_fs = self.image_server.mount_from(host_machine)
        base = DiskImage(access_fs, image_name,
                         self.image_server.lookup(image_name).size_bytes)
        memstate = None
        if config.start_mode == "restore":
            memstate = (access_fs, memstate_file)
        remote_cpu = 0.0 if local \
            else self.vmm.costs.remote_state_cpu_per_byte
        return base, memstate, remote_cpu

    def _startup_body(self, vm_name, base_image, memstate, remote_cpu):
        """Step 4 internals: the job globusrun dispatches."""
        grid = self.grid
        config = self.config
        vm_config = VmConfig(vm_name, memory_mb=config.memory_mb,
                             guest_profile=config.guest_profile)
        self.vm = self.vmm.create_vm(vm_config, base_image,
                                     disk_mode=config.disk_mode,
                                     remote_cpu_per_byte=remote_cpu,
                                     owner=config.user)
        duration = yield from self.vmm.power_on(
            self.vm, mode=config.start_mode, memstate=memstate,
            memstate_is_remote=bool(memstate) and remote_cpu > 0)

        if config.networking == "dhcp":
            dhcp = grid.dhcp_for(self.vmm.machine.site)
            self.lease = yield from dhcp.acquire(vm_name)
            self.vm.address = self.lease.address
        elif config.networking == "tunnel":
            gateway = grid.home_gateway_of(config.user)
            self.tunnel = EthernetTunnel(self.sim, grid.network, grid.engine,
                                         self.vmm.machine.name, gateway)
            self.vm.address = yield from self.tunnel.establish(vm_name)
        return duration

    # -- step 6 and the rest of the life cycle --------------------------------------

    def run_application(self, app, pname: Optional[str] = None):
        """Process generator: step 6 — execute inside the VM."""
        if not self._established:
            raise SimulationError("session is not established")
        step = self._step(6, "execute %s" % app.name)
        result = yield from self.guest_os.run_application(app, pname=pname)
        self._finish(step)
        return result

    def migrate_to(self, host_name: str):
        """Process generator: move the running VM to another host.

        Implements the Section 4 life-cycle option "the user, or a grid
        scheduler, will have the option to ... migrate the virtual
        machine at any time".  The destination reaches the base image
        through its own mount of the image server; the guest's data
        mounts travel inside the VM untouched.  Returns the downtime.
        """
        from repro.vmm.migration import migrate

        if not self._established:
            raise SimulationError("session is not established")
        dest_vmm = self.grid.vmm_for(host_name)
        mount = self.image_server.mount_from(dest_vmm.machine.name)
        size = self.image_server.lookup(self.config.image).size_bytes
        dest_base = DiskImage(mount, self.config.image, size)
        step = self._step(7, "migrate to %s" % host_name)
        downtime = yield from migrate(self.vm, dest_vmm, self.grid.stager,
                                      dest_base, dest_base_is_remote=True)
        self.vmm = dest_vmm
        self._finish(step)
        self.grid.info.unregister("vms", name=self.vm.name)
        self.grid.info.register("vms", self.vm.state_summary())
        return downtime

    def hibernate(self):
        """Process generator: suspend the VM to the host's disk.

        Section 4: "the user, or a grid scheduler, will have the option
        to shutdown, hibernate, restore, or migrate the virtual machine
        at any time".  Returns the memory-state file name.
        """
        if self.vm is None:
            raise SimulationError("session has no VM")
        filename = yield from self.vmm.suspend(self.vm,
                                               self.vmm.host.root_fs)
        return filename

    def wake(self):
        """Process generator: resume a hibernated VM on the same host."""
        if self.vm is None:
            raise SimulationError("session has no VM")
        yield from self.vmm.resume(self.vm, self.vmm.host.root_fs)

    def archive_to(self, tape):
        """Process generator: move a hibernated VM's state to tape.

        "Infrequently run virtual machine images will be migrated to
        tape."  The VM must be hibernated first; its online state files
        (memory image and copy-on-write diff) are reclaimed.  Returns
        the archived volume.
        """
        from repro.vmm.virtual_machine import VmState

        if self.vm is None or self.vm.state is not VmState.SUSPENDED:
            raise SimulationError("archive requires a hibernated VM")
        host_fs = self.vmm.host.root_fs
        files = [self.vm.name + ".memstate"]
        if self.vm.vdisk.mode == "nonpersistent" \
                and host_fs.exists(self.vm.vdisk.diff_name):
            files.append(self.vm.vdisk.diff_name)
        volume = yield from tape.archive(self.vm.name, host_fs, files)
        return volume

    def revive_from(self, tape):
        """Process generator: bring an archived VM back and resume it."""
        if self.vm is None:
            raise SimulationError("session has no VM")
        yield from tape.retrieve(self.vm.name, self.vmm.host.root_fs)
        yield from self.vmm.resume(self.vm, self.vmm.host.root_fs)
        tape.remove(self.vm.name)

    def sync_user_data(self):
        """Process generator: flush the guest's buffered user-data writes."""
        if isinstance(self.user_data_fs, PvfsProxy):
            flushed = yield from self.user_data_fs.sync()
            return flushed
        return 0

    def shutdown(self):
        """Process generator: end the life cycle and release resources."""
        if self.vm is None:
            raise SimulationError("session has no VM")
        yield from self.sync_user_data()
        if self.vm.state is VmState.RUNNING:
            yield from self.vmm.shutdown(self.vm)
        else:
            self.vmm.destroy(self.vm)
        if self.lease is not None and self.lease.active:
            self.grid.dhcp_for(self.vmm.machine.site).release(self.lease)
        self.grid.info.unregister("vms", name=self.vm.name)
        self.grid.accounts.release_vm(self.config.user, self.vm.name)
        self._established = False

    def timeline(self) -> List[str]:
        """Human-readable step timing (used by the examples)."""
        lines = []
        for step in self.steps:
            duration = "%.2fs" % step.duration \
                if step.duration is not None else "..."
            lines.append("step %d: %-35s %s" % (step.index, step.title,
                                                duration))
        return lines

    def __repr__(self) -> str:
        state = self.vm.state.value if self.vm else "no-vm"
        return "<GridSession %s/%s %s>" % (self.config.user,
                                           self.config.image, state)
