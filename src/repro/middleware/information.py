"""A relational grid information service with VM futures.

Section 3.2 ("Application perspective"): resources are discovered by
posing relational queries with joins; "such queries are non-deterministic
and return partial results in a bounded amount of time".  Virtual
machines register when instantiated; hosts advertise "what kinds and how
many virtual machines they were willing to instantiate (virtual machine
futures)".

Records are plain attribute dictionaries in named tables.  Constraints
use Django-style suffixes: ``memory_mb__ge=256``, ``site="uf"``,
``state__ne="terminated"``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["InformationService", "VmFuture"]

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ge": lambda a, b: a is not None and a >= b,
    "gt": lambda a, b: a is not None and a > b,
    "le": lambda a, b: a is not None and a <= b,
    "lt": lambda a, b: a is not None and a < b,
    "contains": lambda a, b: a is not None and b in a,
}


class VmFuture:
    """A host's advertisement: 'I am willing to instantiate such VMs'."""

    def __init__(self, host: str, site: str, count: int,
                 max_memory_mb: int, architecture: str = "x86",
                 scheduling: Optional[str] = None):
        if count < 0 or max_memory_mb <= 0:
            raise SimulationError("invalid VM future")
        self.host = host
        self.site = site
        self.count = count
        self.max_memory_mb = max_memory_mb
        self.architecture = architecture
        #: How VMs are mapped onto the hardware (from the constraint
        #: compiler, Section 3.2), e.g. "proportional-share" or
        #: "periodic period=0.1".
        self.scheduling = scheduling

    def describe(self) -> Dict[str, Any]:
        """The record this future publishes."""
        return {
            "host": self.host,
            "site": self.site,
            "count": self.count,
            "max_memory_mb": self.max_memory_mb,
            "architecture": self.architecture,
            "scheduling": self.scheduling,
        }

    def __repr__(self) -> str:
        return "<VmFuture %s x%d <=%dMB>" % (self.host, self.count,
                                             self.max_memory_mb)


class InformationService:
    """Named tables of resource records with bounded partial queries."""

    TABLES = ("machines", "vm_futures", "vms", "images", "data_servers")

    def __init__(self, sim: Simulation, query_latency: float = 0.15,
                 rng: Optional[random.Random] = None):
        if query_latency < 0:
            raise SimulationError("query latency must be non-negative")
        self.sim = sim
        self.query_latency = float(query_latency)
        self.rng = rng if rng is not None \
            else sim.streams.stream("information")
        # Tables are rid-keyed insertion-ordered maps (iteration order
        # is registration order, exactly as the old per-table lists),
        # with an exact-value inverted index per table so withdrawal
        # touches the matching records, not the whole table.
        self._tables: Dict[str, Dict[int, Dict[str, Any]]] = {
            table: {} for table in self.TABLES}
        self._index: Dict[str, Dict[Tuple[str, Any], Dict[int, None]]] \
            = {table: {} for table in self.TABLES}
        self._next_rid = 0

    # -- registration -----------------------------------------------------------

    def register(self, table: str, record: Dict[str, Any]) -> None:
        """Publish one record."""
        if table not in self._tables:
            raise SimulationError("unknown table %s" % table)
        rid = self._next_rid
        self._next_rid += 1
        stored = dict(record)
        self._tables[table][rid] = stored
        index = self._index[table]
        for field, value in stored.items():
            try:
                index.setdefault((field, value), {})[rid] = None
            except TypeError:
                pass    # unhashable value: findable only by full scan

    def _discard(self, table: str, rid: int) -> None:
        record = self._tables[table].pop(rid)
        index = self._index[table]
        for field, value in record.items():
            try:
                posting = index.get((field, value))
            except TypeError:
                continue
            if posting is not None:
                posting.pop(rid, None)
                if not posting:
                    del index[(field, value)]

    def unregister(self, table: str, **match) -> int:
        """Withdraw records matching exact attribute values."""
        if table not in self._tables:
            raise SimulationError("unknown table %s" % table)
        rows = self._tables[table]
        # Probe the index with the most selective constraint; fall back
        # to a full scan only for unhashable (hence unindexed) values.
        best: Optional[Dict[int, None]] = None
        scan_all = not match
        for field, value in match.items():
            try:
                posting = self._index[table].get((field, value))
            except TypeError:
                best, scan_all = None, True
                break
            if posting is None:
                return 0    # no record carries this exact value
            if best is None or len(posting) < len(best):
                best = posting
        candidates = list(rows) if scan_all else list(best)
        dropped = 0
        for rid in candidates:
            record = rows.get(rid)
            if record is not None and all(record.get(k) == v
                                          for k, v in match.items()):
                self._discard(table, rid)
                dropped += 1
        return dropped

    def table_size(self, table: str) -> int:
        """Records currently in a table."""
        return len(self._tables[table])

    # -- querying ---------------------------------------------------------------

    @staticmethod
    def _matches(record: Dict[str, Any], constraints: Dict[str, Any]) -> bool:
        for key, expected in constraints.items():
            field, _sep, op = key.partition("__")
            op = op or "eq"
            if op not in _OPERATORS:
                raise SimulationError("unknown operator %r" % op)
            if not _OPERATORS[op](record.get(field), expected):
                return False
        return True

    def select(self, table: str, **constraints) -> List[Dict[str, Any]]:
        """Instant (cost-free) exact selection — for middleware internals."""
        if table not in self._tables:
            raise SimulationError("unknown table %s" % table)
        return [dict(r) for r in self._tables[table].values()
                if self._matches(r, constraints)]

    def query(self, table: str, limit: Optional[int] = None,
              time_bound: Optional[float] = None, **constraints):
        """Process generator: a bounded, non-deterministic query.

        Scans records in random order and stops early when ``limit``
        results are found or the time bound expires, returning partial
        results — the URGIS semantics.
        """
        if table not in self._tables:
            raise SimulationError("unknown table %s" % table)
        records = list(self._tables[table].values())
        self.rng.shuffle(records)
        per_record = self.query_latency / max(1, len(records))
        budget = time_bound if time_bound is not None else float("inf")
        results: List[Dict[str, Any]] = []
        spent = 0.0
        for record in records:
            cost = min(per_record, budget - spent)
            if cost < 0:
                break
            yield self.sim.timeout(cost)
            spent += per_record
            if self._matches(record, constraints):
                results.append(dict(record))
                if limit is not None and len(results) >= limit:
                    break
            if spent >= budget:
                break
        return results

    def join(self, table_a: str, table_b: str,
             on: Callable[[Dict[str, Any], Dict[str, Any]], bool],
             limit: Optional[int] = None, constraints_a: dict = None,
             constraints_b: dict = None):
        """Process generator: relational join across two tables.

        The canonical use is joining ``vm_futures`` against ``images``:
        'find a host willing to run a 256 MB VM *and* an image server
        with a Red Hat 7.2 image'.
        """
        left = yield from self.query(table_a, **(constraints_a or {}))
        right = yield from self.query(table_b, **(constraints_b or {}))
        pairs = []
        for a in left:
            for b in right:
                if on(a, b):
                    pairs.append((a, b))
                    if limit is not None and len(pairs) >= limit:
                        return pairs
        return pairs

    def __repr__(self) -> str:
        sizes = ", ".join("%s=%d" % (t, len(rs))
                          for t, rs in self._tables.items() if rs)
        return "<InformationService %s>" % (sizes or "empty")
