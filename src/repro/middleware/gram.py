"""GRAM-style job dispatch: the ``globusrun`` of Table 2.

Table 2's startup times are "measured as wall-clock execution time from
the beginning to the end of the execution of globusrun" (Globus 2.0
toolkit).  A submission therefore pays, around the actual work:

* GSI mutual authentication (public-key handshakes, ~seconds in 2002),
* gatekeeper fork + jobmanager startup on the resource,
* and completion detection by jobmanager polling, which adds a uniform
  0..poll_interval delay — the main source of run-to-run variance for
  the fast (restore) configurations.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from repro.obs.sla import DEFAULT_SLA, SlaPolicy
from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["GramGateway", "GramJob"]


class GramJob:
    """One dispatched job and its timing breakdown."""

    def __init__(self, name: str):
        self.name = name
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.result: Any = None

    @property
    def total_time(self) -> Optional[float]:
        """globusrun wall-clock: submission to observed completion."""
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def middleware_overhead(self) -> Optional[float]:
        """Time not spent in the job body itself."""
        if None in (self.submitted_at, self.started_at, self.completed_at):
            return None
        return self.total_time - (self.completed_at - self.started_at)

    def __repr__(self) -> str:
        return "<GramJob %s total=%s>" % (self.name, self.total_time)


class GramGateway:
    """The gatekeeper + jobmanager of one resource."""

    def __init__(self, sim: Simulation, resource_name: str,
                 auth_time: float = 1.5, jobmanager_start: float = 0.6,
                 poll_interval: float = 2.0,
                 rng: Optional[random.Random] = None,
                 metrics=None, sla: Optional[SlaPolicy] = None):
        if min(auth_time, jobmanager_start, poll_interval) < 0:
            raise SimulationError("GRAM times must be non-negative")
        self.sim = sim
        self.resource_name = resource_name
        self.auth_time = float(auth_time)
        self.jobmanager_start = float(jobmanager_start)
        self.poll_interval = float(poll_interval)
        self.rng = rng if rng is not None \
            else sim.streams.stream("gram/" + resource_name)
        self.jobs_dispatched = 0
        self.sla = sla or DEFAULT_SLA
        # ``metrics`` is a registry or partition scope (the grid hands
        # each gateway a view keyed to its host's shard); resolved once
        # here so submit() pays plain attribute calls.
        scope = metrics if metrics is not None else sim.metrics
        self._queue_wait = scope.histogram("sched.queue_wait")
        self._wait_violations = scope.counter("sla.queue_wait.violations")
        self._dispatch_rate = scope.rate("sched.dispatch", window=60.0)

    def submit(self, body: Generator, name: str = "job"):
        """Process generator: run ``body`` under globusrun timing.

        Returns the :class:`GramJob` with the body's return value in
        ``job.result``.
        """
        job = GramJob(name)
        job.submitted_at = self.sim.now
        span = self.sim.trace.begin(
            "sched", "gram %s" % name,
            track=("sched", "gram:%s" % self.resource_name), job=name)
        # GSI authentication: some run-to-run jitter from network/CPU.
        yield self.sim.timeout(self.auth_time
                               * (1.0 + self.rng.uniform(-0.15, 0.15)))
        yield self.sim.timeout(self.jobmanager_start)
        job.started_at = self.sim.now
        wait = job.started_at - job.submitted_at
        self._queue_wait.observe(wait)
        if wait > self.sla.queue_wait_seconds:
            self._wait_violations.inc()
        self._dispatch_rate.mark(self.sim.now)
        job.result = yield from body
        # The jobmanager notices completion at its next poll.
        if self.poll_interval > 0:
            yield self.sim.timeout(self.rng.uniform(0.0, self.poll_interval))
        job.completed_at = self.sim.now
        self.sim.trace.end(span)
        self.jobs_dispatched += 1
        return job

    def __repr__(self) -> str:
        return "<GramGateway %s jobs=%d>" % (self.resource_name,
                                             self.jobs_dispatched)
