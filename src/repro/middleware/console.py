"""Interactive session handles: the console / VNC path of step 6.

Section 4: "if it is an interactive application, a handle is provided
back to the user (e.g. a login session, or a virtual display session
such as VNC)" and "the user can have the choice of whether to be
presented with a console for the virtual machine".

The console models the interactive loop: a keystroke travels from the
user's machine to the VM host, the guest spends a sliver of CPU
producing a screen update, and the update travels back.  Round-trip
latencies expose exactly what resource control and migration do to
interactive users — the paper's stated reason owners want caps that
protect "a desktop executing interactive applications".
"""

from __future__ import annotations

from typing import List

from repro.simulation.kernel import SimulationError
from repro.simulation.monitor import StatAccumulator
from repro.workloads.applications import KernelEventRates

__all__ = ["VncConsole"]

#: Guest CPU per echo/redraw (terminal-scale, not full-screen video).
_ECHO_CPU = 0.004
#: Bytes of framebuffer delta per update.
_UPDATE_BYTES = 24 * 1024


class VncConsole:
    """A virtual display session between a user's machine and a VM."""

    def __init__(self, grid, vm, client_host: str):
        if not grid.network.has_host(client_host):
            raise SimulationError("unknown client host %s" % client_host)
        self.sim = grid.sim
        self.grid = grid
        self.vm = vm
        self.client_host = client_host
        self.latency = StatAccumulator("console.rtt")
        self._keystrokes = 0

    @property
    def vm_host(self) -> str:
        """The VM's current physical host (changes under migration)."""
        return self.vm.vmm.machine.name

    def keystroke(self):
        """Process generator: one interactive round trip.

        Returns the observed round-trip time, and records it.
        """
        start = self.sim.now
        network = self.grid.network
        engine = self.grid.engine
        # Input event to the VM host (tiny payload: latency-bound).
        yield self.sim.timeout(network.latency(self.client_host,
                                               self.vm_host))
        # The guest handles the event and renders an update.
        yield from self.vm.run_compute(
            "console-echo", _ECHO_CPU, _ECHO_CPU * 0.4,
            KernelEventRates(syscalls_per_sec=2000.0))
        # Screen delta back to the client (payload-bound).
        yield from engine.transfer(self.vm_host, self.client_host,
                                   _UPDATE_BYTES, setup_round_trips=0.0)
        rtt = self.sim.now - start
        self.latency.add(rtt)
        self._keystrokes += 1
        return rtt

    def typing_burst(self, count: int = 20, think_time: float = 0.15):
        """Process generator: a burst of keystrokes with think time.

        Returns the list of observed round-trip times.
        """
        if count < 1:
            raise SimulationError("burst needs at least one keystroke")
        rtts: List[float] = []
        for _i in range(count):
            rtt = yield from self.keystroke()
            rtts.append(rtt)
            if think_time:
                yield self.sim.timeout(think_time)
        return rtts

    def responsive(self, threshold: float = 0.2) -> bool:
        """Is the session usable? (sub-200 ms echo, the classic bar)."""
        if self.latency.count == 0:
            raise SimulationError("no keystrokes measured yet")
        return self.latency.mean < threshold

    def __repr__(self) -> str:
        return "<VncConsole %s->%s n=%d mean=%.0fms>" % (
            self.client_host, self.vm.name, self.latency.count,
            1e3 * self.latency.mean if self.latency.count else 0.0)
