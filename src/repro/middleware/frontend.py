"""The middleware front-end and service-provider scenario of Figure 3.

Figure 3 shows two deployment patterns side by side:

* a VM (V4) "dynamically created by middleware front-end F on behalf of
  user X.  This VM is dedicated to a single user";
* VMs V1, V2 "instantiated on P2 on behalf of a service provider S, and
  multiplexed across users A, B, C and applications provided by S.  The
  logical user account abstraction decouples access to physical
  resources (middleware) from access to virtual resources (end-users
  and services)" — the PUNCH model.

:class:`MiddlewareFrontend` implements F: it owns the dedicated-VM path
(a thin wrapper over :class:`~repro.middleware.session.GridSession`)
and the provider path through :class:`ServiceProvider`, which keeps a
pool of warm *virtual back-ends* and dispatches end-user requests onto
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.middleware.session import GridSession, SessionConfig
from repro.simulation.kernel import SimulationError
from repro.workloads.applications import Application

__all__ = ["MiddlewareFrontend", "ServiceProvider", "RequestOutcome"]


class RequestOutcome:
    """Accounting for one end-user request served by a provider."""

    def __init__(self, user: str, backend: str, queued: float,
                 started: float, finished: float, user_time: float,
                 sys_time: float):
        self.user = user
        self.backend = backend
        self.queued_at = queued
        self.started_at = started
        self.finished_at = finished
        self.user_time = user_time
        self.sys_time = sys_time

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a free back-end."""
        return self.started_at - self.queued_at

    @property
    def service_time(self) -> float:
        """Time on the back-end."""
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return "<RequestOutcome %s on %s wait=%.1fs run=%.1fs>" % (
            self.user, self.backend, self.queue_delay, self.service_time)


class ServiceProvider:
    """A provider S multiplexing logical users over warm back-end VMs.

    The provider owns the VM sessions (they run under *its* grid
    identity); end users never touch the physical resources — they hold
    only logical accounts with the provider, exactly the decoupling the
    paper's Figure 3 caption describes.
    """

    def __init__(self, grid, name: str, image: str,
                 backends: int = 2, session_template: Optional[dict] = None):
        if backends < 1:
            raise SimulationError("provider needs at least one back-end")
        self.sim = grid.sim
        self.grid = grid
        self.name = name
        self.image = image
        self.backends = backends
        self.session_template = dict(session_template or {})
        self.sessions: List[GridSession] = []
        self.outcomes: List[RequestOutcome] = []  # simlint: disable=R23  experiment artifact: the per-request outcome table the reports aggregate
        self._free = None   # Store of idle sessions, built at deploy time
        # Ordered-dict-as-set: O(1) membership per request instead of a
        # linear probe per submit, registration order preserved.
        self._users: Dict[str, None] = {}

    def register_user(self, user: str) -> None:
        """Give an end user a logical account *with the provider*."""
        if user in self._users:
            raise SimulationError("user %s already registered with %s"
                                  % (user, self.name))
        self._users[user] = None

    @property
    def users(self) -> List[str]:
        """End users the provider serves."""
        return list(self._users)

    def deploy(self):
        """Process generator: instantiate the warm back-end pool.

        The provider's grid identity must hold ``instantiate`` rights;
        back-ends are dedicated VMs named ``<provider>-V<i>``.
        """
        from repro.simulation.resources import Store

        if self.sessions:
            raise SimulationError("%s is already deployed" % self.name)
        self._free = Store(self.sim)
        for index in range(self.backends):
            overrides = dict(self.session_template)
            overrides.setdefault("start_mode", "restore")
            config = SessionConfig(
                user=self.name, image=self.image,
                vm_name="%s-V%d" % (self.name, index + 1), **overrides)
            session = self.grid.new_session(config)
            yield from session.establish()
            self.sessions.append(session)
            yield self._free.put(session)
        return len(self.sessions)

    def submit(self, user: str, app: Application):
        """Process generator: serve one end-user request.

        Blocks until a back-end is free, runs the application there
        under the user's logical identity, and releases the back-end.
        """
        if user not in self._users:
            raise SimulationError("%s is not registered with %s"
                                  % (user, self.name))
        if self._free is None:
            raise SimulationError("%s is not deployed" % self.name)
        queued = self.sim.now
        session = yield self._free.get()
        started = self.sim.now
        try:
            result = yield from session.run_application(
                app, pname="%s:%s" % (user, app.name))
        finally:
            yield self._free.put(session)
        outcome = RequestOutcome(user, session.vm.name, queued, started,
                                 self.sim.now, result.user_time,
                                 result.sys_time)
        self.outcomes.append(outcome)
        return outcome

    def teardown(self):
        """Process generator: shut the pool down."""
        for session in self.sessions:  # simlint: disable=R22  teardown runs once per provider lifetime, not per event
            yield from session.shutdown()
        self.sessions = []
        self._free = None

    def utilization_summary(self) -> Dict[str, float]:
        """Per-back-end busy time (for capacity planning)."""
        busy: Dict[str, float] = {}
        for outcome in self.outcomes:
            busy[outcome.backend] = busy.get(outcome.backend, 0.0) \
                + outcome.service_time
        return busy

    def __repr__(self) -> str:
        return "<ServiceProvider %s backends=%d served=%d>" % (
            self.name, len(self.sessions), len(self.outcomes))


class MiddlewareFrontend:
    """Front-end F: the entry point users and providers talk to."""

    def __init__(self, grid, name: str = "frontend"):
        self.sim = grid.sim
        self.grid = grid
        self.name = name
        self.dedicated_sessions: List[GridSession] = []  # simlint: disable=R23  session handles returned to callers; lifetime is the scenario's session set
        self.providers: Dict[str, ServiceProvider] = {}

    def create_dedicated_vm(self, user: str, image: str, **overrides):
        """Process generator: Figure 3 steps 1-6 for a dedicated VM."""
        config = SessionConfig(user=user, image=image, **overrides)
        session = self.grid.new_session(config)
        yield from session.establish()
        self.dedicated_sessions.append(session)
        return session

    def create_provider(self, name: str, image: str, backends: int = 2,
                        **session_overrides) -> ServiceProvider:
        """Register a service provider (deploy it separately)."""
        if name in self.providers:
            raise SimulationError("provider %s already exists" % name)
        provider = ServiceProvider(self.grid, name, image,
                                   backends=backends,
                                   session_template=session_overrides)
        self.providers[name] = provider
        return provider

    def __repr__(self) -> str:
        return "<MiddlewareFrontend %s dedicated=%d providers=%d>" % (
            self.name, len(self.dedicated_sessions), len(self.providers))
