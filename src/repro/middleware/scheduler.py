"""A grid metascheduler: prediction-driven VM placement.

Section 3.2 sketches both halves of scheduling: resources advertise VM
futures and their scheduling discipline through the information service,
and applications "discover a collection of appropriate resources by
posing a relational query", then use RPS forecasts to "make adaptation
decisions".  The metascheduler closes the loop:

1. query the information service for VM futures that fit the request;
2. consult each candidate host's load sensor and predict the job's
   running time there (:class:`~repro.prediction.predictor
   .RunningTimePredictor`);
3. open the session on the predicted-best host and run the job.

A ``policy="random"`` mode keeps the same machinery but ignores the
forecasts — the baseline the placement ablation compares against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.middleware.session import SessionConfig
from repro.prediction.predictor import RunningTimePredictor
from repro.prediction.sensors import HostLoadSensor
from repro.prediction.timeseries import ArPredictor
from repro.simulation.kernel import SimulationError
from repro.workloads.applications import Application

__all__ = ["MetaScheduler", "PlacementDecision"]


class PlacementDecision:
    """Why a job landed where it did."""

    def __init__(self, job: str, host: str, policy: str,
                 predictions: Dict[str, float]):
        self.job = job
        self.host = host
        self.policy = policy
        self.predictions = dict(predictions)
        self.actual_wall: Optional[float] = None

    @property
    def predicted_wall(self) -> Optional[float]:
        """The forecast for the chosen host (None for random policy)."""
        return self.predictions.get(self.host)

    def __repr__(self) -> str:
        return "<PlacementDecision %s -> %s (%s)>" % (self.job, self.host,
                                                      self.policy)


class MetaScheduler:
    """Places jobs onto fresh VMs using load forecasts."""

    def __init__(self, grid, image: str, policy: str = "predictive",
                 sensor_period: float = 1.0,
                 session_overrides: Optional[dict] = None):
        if policy not in ("predictive", "random"):
            raise SimulationError("policy must be predictive or random")
        self.sim = grid.sim
        self.grid = grid
        self.image = image
        self.policy = policy
        self.session_overrides = dict(session_overrides or {})
        self.sensors: Dict[str, HostLoadSensor] = {}
        self.decisions: List[PlacementDecision] = []  # simlint: disable=R23  experiment artifact: prediction-error stats aggregate the full decision history
        self._sensor_period = float(sensor_period)
        self._rng = grid.streams.stream("metascheduler")
        self._job_counter = 0
        #: Intervals during which our own jobs loaded each host — their
        #: samples are excluded from forecasts (a scheduler must not
        #: mistake its own load for background load).
        self._own_intervals: Dict[str, List[tuple]] = {}

    # -- sensing -----------------------------------------------------------------

    def watch(self, host_name: str) -> HostLoadSensor:
        """Attach a load sensor to a compute host."""
        if host_name in self.sensors:
            raise SimulationError("already watching %s" % host_name)
        machine = self.grid.machine_for(host_name)
        sensor = HostLoadSensor(machine.cpu, period=self._sensor_period)
        sensor.start()
        self.sensors[host_name] = sensor
        return sensor

    def _candidates(self, memory_mb: int) -> List[str]:
        futures = self.grid.info.select("vm_futures", count__gt=0,
                                        max_memory_mb__ge=memory_mb)
        hosts = [f["host"] for f in futures if f["host"] in self.sensors]
        if not hosts:
            raise SimulationError("no watched host can take the job")
        return sorted(set(hosts))

    # -- placement ----------------------------------------------------------------

    def _background_history(self, host: str) -> List[float]:
        """Sensor samples taken while none of our jobs ran on ``host``."""
        monitor = self.sensors[host].monitor
        intervals = self._own_intervals.get(host, [])
        if intervals and monitor.times:
            # The sensor retains a bounded window; an interval that
            # ended before the oldest retained sample can never exclude
            # anything again.  Dropping it keeps this bookkeeping
            # proportional to the sensor window, not to every job the
            # scheduler ever placed.
            horizon = monitor.times[0]
            kept = [iv for iv in intervals if iv[1] >= horizon]
            if len(kept) != len(intervals):
                intervals[:] = kept
        history = []
        for t, value in zip(monitor.times, monitor.values):
            if not any(start <= t <= end for start, end in intervals):
                history.append(value)
        return history

    def _choose(self, work_seconds: float,
                candidates: List[str]) -> (str, Dict[str, float]):
        predictions: Dict[str, float] = {}
        if self.policy == "random":
            return self._rng.choice(candidates), predictions
        predictor = RunningTimePredictor(
            lambda: ArPredictor(order=4), cores=1,
            sample_period=self._sensor_period)
        for host in candidates:
            history = self._background_history(host)
            if len(history) < 8:
                predictions[host] = work_seconds  # no signal yet
            else:
                predictions[host] = predictor.predict_running_time(
                    work_seconds, history)
        best = min(candidates, key=lambda h: predictions[h])
        return best, predictions

    def submit(self, app: Application, memory_mb: int = 128):
        """Process generator: place, run and tear down one job.

        Returns the :class:`PlacementDecision` with ``actual_wall``
        filled in.
        """
        self._job_counter += 1
        job_name = "%s-%d" % (app.name, self._job_counter)
        candidates = self._candidates(memory_mb)
        host, predictions = self._choose(app.total_user_seconds
                                         + app.total_sys_seconds,
                                         candidates)
        decision = PlacementDecision(job_name, host, self.policy,
                                     predictions)
        self.decisions.append(decision)

        config = SessionConfig(user=self.session_overrides.get(
            "user", "scheduler"), image=self.image,
            vm_name="js-%s" % job_name, memory_mb=memory_mb,
            host_constraints={"host": host},
            **{k: v for k, v in self.session_overrides.items()
               if k != "user"})
        session = self.grid.new_session(config)
        own_start = self.sim.now
        try:
            yield from session.establish()
            started = self.sim.now
            result = yield from session.run_application(app,
                                                        pname=job_name)
            decision.actual_wall = self.sim.now - started
            yield from session.shutdown()
        finally:
            self._own_intervals.setdefault(host, []).append(
                (own_start, self.sim.now + self._sensor_period))
        return decision

    def mean_absolute_prediction_error(self) -> float:
        """Mean |predicted - actual| / actual over predictive decisions."""
        errors = [abs(d.predicted_wall - d.actual_wall) / d.actual_wall
                  for d in self.decisions
                  if d.predicted_wall is not None
                  and d.actual_wall is not None]
        if not errors:
            raise SimulationError("no completed predictive decisions")
        return sum(errors) / len(errors)

    def __repr__(self) -> str:
        return "<MetaScheduler %s jobs=%d>" % (self.policy,
                                               len(self.decisions))
