"""Virtual clusters: co-allocated VMs joined by an overlay network.

Section 3.3's closing move: "A natural extension to this simple VPN in
which all remote hosts appear on the local network is to establish an
overlay network among the remote virtual machines.  The overlay network
would optimize itself with respect to the communication between the
virtual machines and the limitations of the various sites on which they
run."

A :class:`VirtualCluster` deploys one session per member VM (on
distinct hosts when possible), joins every member's host to a shared
:class:`~repro.gridnet.overlay.OverlayNetwork`, runs the overlay's
self-measurement, and offers collective communication that routes
member-to-member traffic along overlay paths — relaying through other
members when the direct Internet path is worse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gridnet.overlay import OverlayNetwork
from repro.middleware.session import GridSession, SessionConfig
from repro.simulation.kernel import SimulationError

__all__ = ["VirtualCluster"]


class VirtualCluster:
    """A user's set of cooperating VMs with self-optimized networking."""

    def __init__(self, grid, user: str, image: str, size: int,
                 session_overrides: Optional[dict] = None,
                 per_hop_forwarding_cost: float = 0.5e-3):
        if size < 2:
            raise SimulationError("a cluster needs at least two members")
        self.sim = grid.sim
        self.grid = grid
        self.user = user
        self.image = image
        self.size = size
        self.session_overrides = dict(session_overrides or {})
        self.sessions: List[GridSession] = []
        self.overlay = OverlayNetwork(
            grid.sim, grid.network,
            per_hop_forwarding_cost=per_hop_forwarding_cost)
        self._deployed = False

    # -- deployment --------------------------------------------------------------

    def deploy(self):
        """Process generator: establish members and bring the overlay up.

        Each member prefers a host no other member uses (distinct
        failure/latency domains); members double up only when the grid
        runs out of willing hosts.
        """
        if self._deployed:
            raise SimulationError("cluster already deployed")
        used_hosts: List[str] = []
        for index in range(self.size):
            config = SessionConfig(
                user=self.user, image=self.image,
                vm_name="%s-node%d" % (self.user, index),
                **self.session_overrides)
            session = self.grid.new_session(config)
            yield from self._establish_preferring_new_host(session,
                                                           used_hosts)
            host = session.vmm.machine.name
            used_hosts.append(host)
            if host not in self.overlay.members:
                self.overlay.join(host)
            self.sessions.append(session)
        yield from self.overlay.measure()
        self._deployed = True
        return self

    def _establish_preferring_new_host(self, session: GridSession,
                                       used_hosts: List[str]):
        """Steer the future query away from already-used hosts."""
        candidates = self.grid.info.select("vm_futures", count__gt=0)
        fresh = [c for c in candidates if c["host"] not in used_hosts]
        if fresh:
            session.config.host_constraints.setdefault(
                "host", fresh[0]["host"])
        yield from session.establish()

    @property
    def members(self) -> List[str]:
        """Member VM names, in deployment order."""
        return [s.vm.name for s in self.sessions]

    def host_of(self, member_index: int) -> str:
        """The physical host of one member."""
        return self.sessions[member_index].vmm.machine.name

    # -- communication --------------------------------------------------------------

    def transfer(self, src_index: int, dst_index: int, nbytes: float):
        """Process generator: member-to-member data over the overlay.

        The payload follows the overlay route hop by hop (application-
        level relaying through member hosts).  Returns (seconds, path).
        """
        self._require_deployed()
        src = self.host_of(src_index)
        dst = self.host_of(dst_index)
        start = self.sim.now
        if src == dst:
            return (0.0, [src])
        path = self.overlay.overlay_route(src, dst)
        for hop_src, hop_dst in zip(path, path[1:]):
            yield from self.grid.engine.transfer(hop_src, hop_dst, nbytes,
                                                 setup_round_trips=0.0)
            if hop_dst != dst:
                yield self.sim.timeout(
                    self.overlay.per_hop_forwarding_cost)
        return (self.sim.now - start, path)

    def exchange(self, nbytes: float):
        """Process generator: concurrent all-pairs exchange.

        Every ordered pair sends ``nbytes``; returns the wall time of
        the slowest transfer (the collective's completion time).
        """
        self._require_deployed()
        start = self.sim.now
        procs = []
        for i in range(self.size):
            for j in range(self.size):
                if i != j:
                    procs.append(self.sim.spawn(
                        self.transfer(i, j, nbytes),
                        name="exchange-%d-%d" % (i, j)))
        if procs:
            yield self.sim.all_of(procs)
        return self.sim.now - start

    def latency_matrix(self) -> Dict[Tuple[str, str], float]:
        """Overlay latency between all member-host pairs."""
        self._require_deployed()
        hosts = sorted(set(self.overlay.members))
        matrix = {}
        for a in hosts:
            for b in hosts:
                if a != b:
                    matrix[(a, b)] = self.overlay.overlay_latency(a, b)
        return matrix

    def teardown(self):
        """Process generator: shut every member down."""
        for session in self.sessions:  # simlint: disable=R22  teardown runs once per cluster lifetime, not per event
            yield from session.shutdown()
        self.sessions = []
        self._deployed = False

    def _require_deployed(self) -> None:
        if not self._deployed:
            raise SimulationError("cluster is not deployed")

    def __repr__(self) -> str:
        return "<VirtualCluster %s size=%d deployed=%s>" % (
            self.user, self.size, self._deployed)
