"""Long-term VM image archival: the end of the life cycle.

Section 4: "Infrequently run virtual machine images will be migrated to
tape.  The life cycle of a virtual machine ends when the image is
removed from permanent storage."

The archive is a tape-library tier behind an image server: writes
stream at tape speed after a mount delay; retrievals pay the same plus
a queue for the (single) drive.  A hibernated VM session — its disk
diff and memory state — can be packed into an archive volume, its
online storage reclaimed, and later revived onto any host.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.resources import Resource
from repro.storage.base import FileSystem

__all__ = ["TapeArchive", "ArchivedVolume"]


class ArchivedVolume:
    """One archived VM: the bundle of state files on tape."""

    def __init__(self, name: str, files: Dict[str, int], archived_at: float):
        self.name = name
        self.files = dict(files)
        self.archived_at = archived_at
        self.retrieved_count = 0

    @property
    def total_bytes(self) -> int:
        """Volume payload."""
        return sum(self.files.values())

    def __repr__(self) -> str:
        return "<ArchivedVolume %s %.1fMB>" % (self.name,
                                               self.total_bytes / 1e6)


class TapeArchive:
    """A single-drive tape library attached to a storage host."""

    def __init__(self, sim: Simulation, mount_time: float = 45.0,
                 transfer_rate: float = 12e6, name: str = "tape"):
        if mount_time < 0 or transfer_rate <= 0:
            raise SimulationError("invalid tape parameters")
        self.sim = sim
        self.name = name
        self.mount_time = float(mount_time)
        self.transfer_rate = float(transfer_rate)
        self._drive = Resource(sim, capacity=1)
        self._volumes: Dict[str, ArchivedVolume] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def volumes(self) -> List[str]:
        """Names of archived volumes."""
        return sorted(self._volumes)

    def lookup(self, name: str) -> ArchivedVolume:
        """Find a volume."""
        if name not in self._volumes:
            raise SimulationError("no archived volume %s" % name)
        return self._volumes[name]

    def _use_drive(self, nbytes: int):
        request = self._drive.request()
        yield request
        try:
            yield self.sim.timeout(self.mount_time)
            yield self.sim.timeout(nbytes / self.transfer_rate)
        finally:
            self._drive.release(request)

    def archive(self, volume_name: str, source_fs: FileSystem,
                files: List[str], delete_online: bool = True):
        """Process generator: stream files to tape; reclaim online space.

        Returns the :class:`ArchivedVolume`.
        """
        if volume_name in self._volumes:
            raise SimulationError("volume %s already archived" % volume_name)
        sizes: Dict[str, int] = {}
        for name in files:
            if not source_fs.exists(name):
                raise SimulationError("cannot archive missing file %s"
                                      % name)
            sizes[name] = source_fs.size(name)
        total = sum(sizes.values())
        # Read from disk and stream to tape (drive held throughout).
        for name in files:
            yield from source_fs.read(name, 0, sizes[name], sequential=True)
        yield from self._use_drive(total)
        self.bytes_written += total
        if delete_online:
            for name in files:
                source_fs.delete(name)
        volume = ArchivedVolume(volume_name, sizes, self.sim.now)
        self._volumes[volume_name] = volume
        return volume

    def retrieve(self, volume_name: str, dest_fs: FileSystem):
        """Process generator: bring a volume back to online storage."""
        volume = self.lookup(volume_name)
        yield from self._use_drive(volume.total_bytes)
        for name, size in volume.files.items():
            yield from dest_fs.write(name, 0, size, sequential=True)
        self.bytes_read += volume.total_bytes
        volume.retrieved_count += 1
        return volume

    def remove(self, volume_name: str) -> None:
        """End a VM's life cycle: delete its state from permanent storage."""
        self.lookup(volume_name)
        del self._volumes[volume_name]

    def __repr__(self) -> str:
        return "<TapeArchive %s volumes=%d>" % (self.name,
                                                len(self._volumes))
