"""The user data server (Figure 2's server D).

Holds user files, exports them over NFS, and — crucially — is mounted
*from inside VM guests* (Figure 2: "proxies within virtual machines
cache user blocks from a data server D"), so user data follows the
logical user to whatever VM they are given.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gridnet.flows import FlowEngine
from repro.guestos.interface import PhysicalHost
from repro.simulation.kernel import SimulationError
from repro.storage.localfs import LocalFileSystem
from repro.storage.nfs import NfsClient, NfsMount, NfsServer
from repro.storage.pvfs import PvfsProxy

__all__ = ["UserDataServer"]


class UserDataServer:
    """Per-user file areas on a storage host."""

    def __init__(self, host: PhysicalHost, engine: FlowEngine,
                 name: str = ""):
        self.sim = host.sim
        self.host = host
        self.engine = engine
        self.name = name or ("data@" + host.name)
        self.fs: LocalFileSystem = host.root_fs
        self.nfs = NfsServer(self.sim, host.machine.name, self.fs, engine,
                             name=self.name + ".nfsd")
        self._files_by_user: Dict[str, List[str]] = {}

    @staticmethod
    def _user_path(user: str, path: str) -> str:
        return "%s:%s" % (user, path)

    def store(self, user: str, path: str, size: int) -> None:
        """Place a user file on the server (metadata only)."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        name = self._user_path(user, path)
        self.fs.create(name, size)
        self._files_by_user.setdefault(user, []).append(path)

    def files_of(self, user: str) -> List[str]:
        """Paths stored for one user."""
        return list(self._files_by_user.get(user, []))

    def mount_from(self, client_host: str, user: str,
                   cache_bytes: float = 32 * 1024 * 1024,
                   with_proxy: bool = True):
        """A (proxied) mount of this server from a client host or guest.

        Returns a file system rooted at the user's area; with
        ``with_proxy`` a PVFS proxy adds client-side caching and write
        buffering, as in Figure 2.
        """
        client = NfsClient(self.sim, client_host, self.engine,
                           cache_bytes=cache_bytes)
        mount = client.mount(self.nfs, name="%s-%s-on-%s"
                             % (self.name, user, client_host))
        scoped = _UserScopedFs(mount, user)
        if with_proxy:
            return PvfsProxy(self.sim, scoped,
                             cache_bytes=cache_bytes,
                             name="pvfs-%s@%s" % (user, client_host))
        return scoped

    def __repr__(self) -> str:
        return "<UserDataServer %s users=%d>" % (self.name,
                                                 len(self._files_by_user))


class _UserScopedFs:
    """A view of an NFS mount restricted to one user's namespace."""

    def __init__(self, mount: NfsMount, user: str):
        self._mount = mount
        self._user = user
        self.block_size = mount.block_size
        self.name = "%s[%s]" % (mount.name, user)

    def _scoped(self, name: str) -> str:
        return "%s:%s" % (self._user, name)

    def exists(self, name):
        return self._mount.exists(self._scoped(name))

    def size(self, name):
        return self._mount.size(self._scoped(name))

    def listdir(self):
        prefix = self._user + ":"
        return [n[len(prefix):] for n in self._mount.listdir()
                if n.startswith(prefix)]

    def create(self, name, size=0):
        self._mount.create(self._scoped(name), size)

    def delete(self, name):
        self._mount.delete(self._scoped(name))

    def read(self, name, offset, nbytes, sequential=True):
        yield from self._mount.read(self._scoped(name), offset, nbytes,
                                    sequential=sequential)

    def write(self, name, offset, nbytes, sequential=True):
        yield from self._mount.write(self._scoped(name), offset, nbytes,
                                     sequential=sequential)

    def read_file(self, name):
        yield from self._mount.read_file(self._scoped(name))

    def __repr__(self):
        return "<UserScopedFs %s>" % self.name
