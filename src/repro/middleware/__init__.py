"""Grid middleware: the paper's Section 3/4 machinery.

* :mod:`~repro.middleware.accounts` — logical user accounts decoupled
  from physical site accounts (PUNCH-style);
* :mod:`~repro.middleware.information` — an MDS/URGIS-like relational
  information service advertising machines, images, VMs and *VM futures*,
  with bounded-time partial queries;
* :mod:`~repro.middleware.gram` — GRAM-style job dispatch (the
  ``globusrun`` of Table 2);
* :mod:`~repro.middleware.gridftp` — authenticated explicit transfers;
* :mod:`~repro.middleware.imageserver` / :mod:`~repro.middleware.dataserver`
  — the image and user-data archive services of Figure 2/3;
* :mod:`~repro.middleware.session` — the six-step VM grid session life
  cycle of Section 4.
"""

from repro.middleware.accounting import UsageMeter, UsageRecord
from repro.middleware.accounts import AccountRegistry, LogicalUser
from repro.middleware.archive import ArchivedVolume, TapeArchive
from repro.middleware.cluster import VirtualCluster
from repro.middleware.console import VncConsole
from repro.middleware.dataserver import UserDataServer
from repro.middleware.frontend import MiddlewareFrontend, ServiceProvider
from repro.middleware.gram import GramGateway, GramJob
from repro.middleware.gridftp import GridFtpService
from repro.middleware.imageserver import ImageServer
from repro.middleware.information import InformationService, VmFuture
from repro.middleware.scheduler import MetaScheduler, PlacementDecision
from repro.middleware.session import GridSession, SessionConfig

__all__ = [
    "AccountRegistry",
    "ArchivedVolume",
    "GramGateway",
    "GramJob",
    "GridFtpService",
    "GridSession",
    "ImageServer",
    "InformationService",
    "LogicalUser",
    "MetaScheduler",
    "MiddlewareFrontend",
    "PlacementDecision",
    "ServiceProvider",
    "SessionConfig",
    "TapeArchive",
    "UsageMeter",
    "UsageRecord",
    "UserDataServer",
    "VirtualCluster",
    "VmFuture",
    "VncConsole",
]
