"""Resource-usage accounting: metering what each VM consumed.

Section 2.2, resource control: dynamic control "enables a provider to
account for the usage of a resource (e.g. in a CPU-server environment)"
— and unlike per-process accounting, "classic VMs allow complementary
resource control at a coarser granularity — that of the collection of
resources accessed by a user".  The meter below does exactly that: it
aggregates host-CPU consumption at the task-group (VM) granularity and
turns it into per-owner usage records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import SimulationError

__all__ = ["UsageMeter", "UsageRecord"]


@dataclass
class UsageRecord:
    """One metering line: what one VM burned on one host."""

    vm: str
    owner: str
    host: str
    cpu_seconds: float
    wall_seconds: float

    @property
    def mean_share(self) -> float:
        """Average CPU share over the metered window."""
        return self.cpu_seconds / self.wall_seconds \
            if self.wall_seconds else 0.0


class UsageMeter:
    """Meters VM task groups on one host CPU.

    The meter snapshots each group's cumulative ``cpu_consumed`` (which
    the processor-sharing model maintains exactly, overhead taxes
    included) at :meth:`open_account` and charges the delta at
    :meth:`close_account` — the natural billing boundary being the VM
    session's life cycle.
    """

    def __init__(self, cpu: ProcessorSharingCpu, host_name: str,
                 rate_per_cpu_hour: float = 1.0):
        if rate_per_cpu_hour < 0:
            raise SimulationError("rate must be non-negative")
        self.sim = cpu.sim
        self.cpu = cpu
        self.host_name = host_name
        self.rate_per_cpu_hour = float(rate_per_cpu_hour)
        self._open: Dict[TaskGroup, tuple] = {}
        self.records: List[UsageRecord] = []

    def _consumed(self, group: TaskGroup) -> float:
        # The CPU maintains the group's lifetime counter exactly; sync
        # first so lazily-advanced work is charged up to now.
        self.cpu.sync()
        return group.cpu_consumed

    def open_account(self, group: TaskGroup, vm: str, owner: str) -> None:
        """Start metering a VM."""
        if group in self._open:
            raise SimulationError("account for %s already open" % vm)
        self._open[group] = (vm, owner, self.sim.now,
                             self._consumed(group))

    def close_account(self, group: TaskGroup) -> UsageRecord:
        """Stop metering and produce the usage record."""
        if group not in self._open:
            raise SimulationError("no open account for %s" % group.name)
        vm, owner, opened_at, baseline = self._open.pop(group)
        record = UsageRecord(
            vm=vm, owner=owner, host=self.host_name,
            cpu_seconds=max(0.0, self._consumed(group) - baseline),
            wall_seconds=self.sim.now - opened_at)
        self.records.append(record)
        return record

    def invoice(self, owner: str) -> float:
        """Total charge for one owner across closed records."""
        seconds = sum(r.cpu_seconds for r in self.records
                      if r.owner == owner)
        return seconds / 3600.0 * self.rate_per_cpu_hour

    def __repr__(self) -> str:
        return "<UsageMeter %s open=%d closed=%d>" % (
            self.host_name, len(self._open), len(self.records))
