"""``python -m repro`` — regenerate the paper's experiments."""

import sys

from repro.cli import main

sys.exit(main())
