"""Flow-level bandwidth sharing with max-min fairness.

A :class:`Flow` is a bulk transfer of bytes along the routed path between
two hosts.  The :class:`FlowEngine` allocates every active flow a rate by
progressive filling (the textbook max-min algorithm): repeatedly find the
most-congested link, give each flow crossing it an equal share of the
remaining capacity, freeze those flows, and subtract what they consume
elsewhere.

Like the CPU model, flows advance fluidly between membership changes, so
the event count is proportional to the number of transfers, not bytes.
A transfer's total time is one connection-setup round trip, plus the
fluid transfer, plus half an RTT for the final byte to propagate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.gridnet.topology import Link, Network
from repro.simulation.kernel import Event, Simulation, SimulationError
from repro.simulation.monitor import StatAccumulator

__all__ = ["Flow", "FlowEngine", "FlowPartition"]

_BYTES_EPSILON = 1e-6


class FlowPartition:
    """Assigns every link of a topology to a fill shard.

    A link whose two endpoints map to the same group belongs to that
    group's shard; a link that straddles groups (or touches a router,
    which belongs to no group) is a WAN link owned by the coordinator
    shard (:data:`WAN`).  The decomposed progressive filling in
    :meth:`FlowEngine._refill_decomposed` gives each shard its own
    capacity table and merges their per-round bottleneck summaries, so
    the shard owning a link is the only writer of its residual capacity.
    """

    #: Label of the coordinator shard that owns cross-group links.
    WAN = "@wan"

    def __init__(self, node_group, wan_group: str = WAN):
        #: Callable mapping a node name to its group label (or ``None``
        #: for interior nodes such as routers and switches).
        self._node_group = node_group
        self.wan_group = wan_group
        self._link_groups: Dict[Link, str] = {}  # simlint: disable=R23  link->owner memo: links are immutable topology edges, so the map is bounded by the link count, not by session traffic

    @classmethod
    def by_site(cls, network: Network) -> "FlowPartition":
        """One fill shard per site (the default shard model)."""
        return cls(network.site_of)

    @classmethod
    def by_host(cls, network: Network) -> "FlowPartition":
        """One fill shard per end host (the ``host`` shard model)."""
        return cls(lambda node: node if network.has_host(node) else None)

    def group_of(self, link: Link) -> str:
        """The shard that owns ``link`` (memoized; links are immutable)."""
        group = self._link_groups.get(link)
        if group is None:
            group_a = self._node_group(link.a)
            group_b = self._node_group(link.b)
            if group_a is None:
                group_a = group_b
            if group_b is None:
                group_b = group_a
            if group_a is not None and group_a == group_b:
                group = group_a
            else:
                group = self.wan_group
            self._link_groups[link] = group
        return group


class Flow:
    """An in-flight bulk transfer."""

    def __init__(self, src: str, dst: str, nbytes: float, links: List[Link],
                 priority_bandwidth: Optional[float] = None):
        self.src = src
        self.dst = dst
        self.total_bytes = float(nbytes)
        self.remaining = float(nbytes)
        self.links = links
        #: Optional per-flow cap (used by tunnels to model encapsulation).
        self.bandwidth_cap = priority_bandwidth
        self.done: Optional[Event] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.rate = 0.0
        #: The tracer span covering the flow's lifetime.
        self.span = None

    def __repr__(self) -> str:
        return "<Flow %s->%s %.0f/%.0fB>" % (self.src, self.dst,
                                             self.total_bytes - self.remaining,
                                             self.total_bytes)


class _FillShard:
    """One shard's capacity table in the decomposed progressive filling.

    Holds the residual capacities of the links its partition group
    owns, in ascending monolithic-table order, and answers one
    bottleneck summary per coordination round.
    """

    __slots__ = ("group", "remaining_cap")

    def __init__(self, group: str):
        self.group = group
        self.remaining_cap: Dict[Link, float] = {}

    def bottleneck_summary(self, link_flows, unfixed, ordinals):
        """``(share, ordinal, link)`` of this shard's tightest loaded link.

        The scan mirrors the monolithic fill exactly: links in
        first-touch order, strict ``<``, share computed as residual
        capacity over the count of still-unfixed flows on the link.
        """
        best_share = math.inf
        best_link = None
        for link, cap in self.remaining_cap.items():
            live = 0
            for f in link_flows[link]:
                if f in unfixed:
                    live += 1
            if not live:
                continue
            share = cap / live
            if share < best_share:
                best_share = share
                best_link = link
        ordinal = ordinals[best_link] if best_link is not None else -1
        return best_share, ordinal, best_link


class FlowEngine:
    """Shares link bandwidth among concurrent flows, max-min fairly."""

    def __init__(self, sim: Simulation, network: Network,
                 partition: Optional[FlowPartition] = None):
        self.sim = sim
        self.network = network
        self._active: List[Flow] = []
        self._last_update = sim.now
        self._generation = 0
        #: Active flows per link, maintained incrementally at join/leave
        #: (per-link order is join order, matching ``_active``).
        self._link_flows: Dict[Link, Dict[Flow, None]] = {}
        #: Memoized max-min rates for the current membership; ``None``
        #: after a membership change that requires a full refill.
        self._rate_cache: Optional[Dict[Flow, float]] = None
        #: Progressive fillings actually run (regression guard: at most
        #: one per membership generation, however often rates are read).
        self.full_allocations = 0
        #: When set, fills run decomposed along this link partition and
        #: must produce byte-identical rates (see _refill_decomposed).
        self.partition = partition
        #: Decomposition instrumentation: coordination rounds executed
        #: and per-shard bottleneck summaries merged across all fills.
        self.fill_rounds = 0
        self.summaries_merged = 0
        self.transfer_time = StatAccumulator("flow.transfer_time")
        metrics = sim.metrics
        self._m_started = metrics.counter("net.flows.started")
        self._m_active = metrics.gauge("net.flows.active")
        self._m_duration = metrics.histogram("net.flow.duration")

    # -- public API ----------------------------------------------------------

    def start_flow(self, src: str, dst: str, nbytes: float,
                   bandwidth_cap: Optional[float] = None) -> Flow:
        """Begin a transfer; ``flow.done`` fires when all bytes are sent."""
        if not self.network.has_host(src) or not self.network.has_host(dst):
            raise SimulationError("flows need registered end hosts")
        if nbytes < 0:
            raise SimulationError("flow size must be non-negative")
        links = self.network.path_links(src, dst)
        flow = Flow(src, dst, nbytes, links, priority_bandwidth=bandwidth_cap)
        flow.done = Event(self.sim)
        flow.started_at = self.sim.now
        flow.span = self.sim.trace.begin(
            "net", "flow %s->%s" % (src, dst),
            track=("net", "flows"), bytes=float(nbytes))
        self._m_started.inc()
        self._advance()
        if not links:
            # Loopback transfer: no shared medium, completes instantly
            # (end-host serialization is charged by the NIC, not here).
            flow.remaining = 0.0
        if flow.remaining <= _BYTES_EPSILON:
            self._finish(flow)
        else:
            self._join(flow)
            self._m_active.set(len(self._active))
        self._reschedule()
        return flow

    def transfer(self, src: str, dst: str, nbytes: float,
                 setup_round_trips: float = 1.0,
                 bandwidth_cap: Optional[float] = None):
        """Process generator: a complete transfer including handshakes.

        ``setup_round_trips`` models connection establishment (one RTT for
        a TCP-style handshake; RPC layers add their own on top).
        """
        start = self.sim.now
        latency = self.network.latency(src, dst)
        if setup_round_trips:
            yield self.sim.timeout(2.0 * latency * setup_round_trips)
        if nbytes > 0:
            flow = self.start_flow(src, dst, nbytes,
                                   bandwidth_cap=bandwidth_cap)
            yield flow.done
        # Final byte still has to propagate to the receiver.
        yield self.sim.timeout(latency)
        self.transfer_time.add(self.sim.now - start)

    @property
    def active_flows(self) -> List[Flow]:
        """Snapshot of in-flight flows."""
        return list(self._active)

    def current_rate(self, flow: Flow) -> float:
        """The flow's instantaneous allocated rate, bytes/second."""
        return self._allocate().get(flow, 0.0)

    def link_usage(self) -> Dict[Link, float]:
        """Instantaneous allocated rate per link, bytes/second."""
        rates = self._allocate()
        usage: Dict[Link, float] = {}
        for flow, rate in rates.items():
            for link in flow.links:
                usage[link] = usage.get(link, 0.0) + rate
        return usage

    def available_bandwidth(self, src: str, dst: str) -> float:
        """Spare capacity along the routed src->dst path right now.

        What a new flow could *at least* get immediately (max-min
        fairness may grant it more by squeezing others).
        """
        links = self.network.path_links(src, dst)
        if not links:
            return float("inf")
        usage = self.link_usage()
        return min(link.bandwidth - usage.get(link, 0.0)
                   for link in links)

    # -- membership ------------------------------------------------------------

    def _join(self, flow: Flow) -> None:
        """Add a flow to the active set and the per-link flow maps.

        If the newcomer shares no link with any active flow, max-min
        decomposes over the disjoint link sets: every other rate is
        unchanged and the newcomer gets the bottleneck capacity of its
        own path (modulo its cap), so the memoized allocation is patched
        in place instead of being refilled.  A flow merely *fitting* in
        spare capacity is NOT sufficient — a sharer bottlenecked on a
        different link may have to be squeezed — so the fast path
        demands exclusive links.
        """
        self._active.append(flow)
        link_flows = self._link_flows
        alone = True
        for link in flow.links:
            members = link_flows.get(link)
            if members is None:
                link_flows[link] = {flow: None}
            else:
                if members:
                    alone = False
                members[flow] = None
        rates = self._rate_cache
        if rates is not None and alone and flow.links:
            rate = min(link.bandwidth for link in flow.links)
            cap = flow.bandwidth_cap
            rates[flow] = rate if cap is None or cap > rate else cap
        else:
            self._rate_cache = None

    def _leave(self, flow: Flow) -> None:
        """Remove a flow from the active set and the per-link maps.

        Mirrors :meth:`_join`: a departing flow that was alone on all
        its links frees capacity nobody else can claim, so the memoized
        allocation survives minus its entry.
        """
        self._active.remove(flow)
        link_flows = self._link_flows
        alone = True
        for link in flow.links:
            members = link_flows.get(link)
            if members is not None:
                members.pop(flow, None)
                if members:
                    alone = False
                else:
                    del link_flows[link]
        rates = self._rate_cache
        if rates is not None and alone:
            rates.pop(flow, None)
        else:
            self._rate_cache = None

    # -- max-min allocation ----------------------------------------------------

    def _allocate(self) -> Dict[Flow, float]:
        """The max-min rates for the current membership, memoized.

        The full progressive filling runs at most once per membership
        generation; every reader in between (``current_rate``,
        ``link_usage``, ``available_bandwidth``, back-to-back
        ``_advance``/``_reschedule``) shares the memo.
        """
        rates = self._rate_cache
        if rates is None:
            if self.partition is None:
                rates = self._refill()
            else:
                rates = self._refill_decomposed(self.partition)
            self._rate_cache = rates
            self.full_allocations += 1
        return rates

    def decompose(self, partition: Optional[FlowPartition]) -> None:
        """Switch fills to (or away from) the decomposed protocol.

        Purely an execution-strategy change: the memoized rates stay
        valid because both fills produce identical allocations.
        """
        self.partition = partition

    def _refill(self) -> Dict[Flow, float]:
        """Progressive-filling max-min fair rates for all active flows.

        Dicts stand in for sets throughout so every iteration follows
        flow-submission order: bottleneck and cap tie-breaks are then
        reproducible run to run (object sets would order by address).
        """
        rates: Dict[Flow, float] = {}
        unfixed: Dict[Flow, None] = dict.fromkeys(self._active)
        if not unfixed:
            return rates
        link_flows = self._link_flows
        # Capacity keys iterate in first-touch order of the active flows
        # (the order the transient per-call dicts historically had).
        remaining_cap: Dict[Link, float] = {}
        for flow in unfixed:
            for link in flow.links:
                if link not in remaining_cap:
                    remaining_cap[link] = link.bandwidth

        # Flows with an explicit cap tighter than any fair share are pinned
        # first by treating the cap as a single-flow virtual link.
        while unfixed:
            # Find the bottleneck: smallest per-flow share among loaded links.
            bottleneck_share = math.inf
            bottleneck_link: Optional[Link] = None
            for link in remaining_cap:
                flows = link_flows[link]
                live = [f for f in flows if f in unfixed]
                if not live:
                    continue
                share = remaining_cap[link] / len(live)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck_link = link
            capped = [f for f in unfixed
                      if f.bandwidth_cap is not None
                      and f.bandwidth_cap < bottleneck_share]
            if capped:
                # Pin the most-constrained capped flow and recurse.
                flow = min(capped, key=lambda f: f.bandwidth_cap)
                rate = flow.bandwidth_cap
            elif bottleneck_link is None:
                break
            else:
                flow = None
                rate = bottleneck_share
            if flow is not None:
                fixed = [flow]
            else:
                fixed = [f for f in link_flows[bottleneck_link]  # simlint: disable=R22  max-min progressive filling is per-link water-filling by definition; rates are memoized per membership epoch (R26 pattern in _allocate)
                         if f in unfixed]
            for f in fixed:
                rates[f] = rate
                unfixed.pop(f, None)
                for link in f.links:
                    remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
        return rates

    def _refill_decomposed(self, partition: FlowPartition) -> Dict[Flow, float]:
        """The progressive filling, decomposed along a link partition.

        Each fill shard owns the residual capacities of its partition's
        links; cross-group (WAN) links belong to the coordinator shard.
        One coordination round = every shard publishes a bottleneck
        summary ``(share, ordinal, link)`` for its most-congested loaded
        link, the globally tightest summary wins, its flows are frozen,
        and every shard subtracts the frozen rate from its own links.

        Byte-identical to :meth:`_refill` by construction:

        * a link's ``ordinal`` is its position in the monolithic
          capacity table (first touch over active flows' paths), and a
          shard's capacity table holds its links in ascending ordinal
          order, so the per-shard strict-``<`` scan surfaces the same
          (share, earliest-position) winner the monolithic scan would;
        * merging summaries by ``(share, ordinal)`` with exact float
          comparison reproduces the monolithic tie-break;
        * each link has exactly one owner, so the residual-capacity
          arithmetic is the same single ``max(0.0, cap - rate)`` per
          (link, round) in the same freeze order;
        * capped-flow pinning sees the same global bottleneck share.

        The memo in :meth:`_allocate` applies unchanged: one decomposed
        fill per membership generation, and the join/leave fast paths
        patch the shared rate cache exactly as in the monolithic engine.
        """
        rates: Dict[Flow, float] = {}
        unfixed: Dict[Flow, None] = dict.fromkeys(self._active)
        if not unfixed:
            return rates
        link_flows = self._link_flows
        # Same first-touch scan as _refill: the ordinal a link gets is
        # its position in the monolithic capacity table — the tie-break
        # key its owner's bottleneck summaries carry.
        ordinals: Dict[Link, int] = {}
        shards: Dict[str, _FillShard] = {}
        for flow in unfixed:
            for link in flow.links:
                if link not in ordinals:
                    ordinals[link] = len(ordinals)
                    group = partition.group_of(link)
                    shard = shards.get(group)
                    if shard is None:
                        shard = shards[group] = _FillShard(group)
                    shard.remaining_cap[link] = link.bandwidth

        while unfixed:
            self.fill_rounds += 1
            bottleneck_share = math.inf
            bottleneck_ordinal = -1
            bottleneck_link: Optional[Link] = None
            for shard in shards.values():
                share, ordinal, link = shard.bottleneck_summary(
                    link_flows, unfixed, ordinals)
                self.summaries_merged += 1
                if link is None:
                    continue
                # Exact float comparison on purpose: equal shares fall
                # back to the monolithic table position, reproducing
                # its first-link-achieving-the-minimum tie-break.
                if (share < bottleneck_share
                        or (share == bottleneck_share
                            and ordinal < bottleneck_ordinal)):
                    bottleneck_share = share
                    bottleneck_ordinal = ordinal
                    bottleneck_link = link
            capped = [f for f in unfixed
                      if f.bandwidth_cap is not None
                      and f.bandwidth_cap < bottleneck_share]
            if capped:
                flow = min(capped, key=lambda f: f.bandwidth_cap)
                rate = flow.bandwidth_cap
                fixed = [flow]
            elif bottleneck_link is None:
                break
            else:
                rate = bottleneck_share
                fixed = [f for f in link_flows[bottleneck_link]  # simlint: disable=R22  max-min progressive filling is per-link water-filling by definition; rates are memoized per membership epoch (R26 pattern in _allocate)
                         if f in unfixed]
            for f in fixed:
                rates[f] = rate
                unfixed.pop(f, None)
                for link in f.links:
                    owner = shards[partition.group_of(link)]
                    owner.remaining_cap[link] = max(
                        0.0, owner.remaining_cap[link] - rate)
        return rates

    # -- fluid advancement -----------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._active:
            rates = self._allocate()
            for flow in self._active:  # simlint: disable=R22  fluid model: every concurrent flow advances at each membership change; concurrency is link-bounded, not population-bounded
                flow.remaining = max(
                    0.0, flow.remaining - elapsed * rates.get(flow, 0.0))
        self._last_update = now

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.finished_at = self.sim.now
        self.sim.trace.end(flow.span)
        self._m_duration.observe(flow.finished_at - flow.started_at)
        flow.done.succeed(flow)

    def _reschedule(self) -> None:
        finished = [f for f in self._active if f.remaining <= _BYTES_EPSILON]  # simlint: disable=R22  completion sweep over concurrent flows; see _advance
        for flow in finished:
            self._leave(flow)
            self._finish(flow)
        if finished:
            self._m_active.set(len(self._active))
        rates = self._allocate()
        for flow, rate in rates.items():
            flow.rate = rate
        self._generation += 1
        generation = self._generation
        horizon = math.inf
        for flow in self._active:
            rate = rates.get(flow, 0.0)
            if rate > 0:
                horizon = min(horizon, flow.remaining / rate)
        if horizon is math.inf:
            return

        def fire(event, generation=generation):
            if generation != self._generation:
                return
            self._advance()
            self._reschedule()

        timer = self.sim.timeout(max(horizon, 0.0))
        timer.callbacks.append(fire)

    def __repr__(self) -> str:
        return "<FlowEngine %d active>" % len(self._active)
