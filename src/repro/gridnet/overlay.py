"""A self-optimizing overlay network among remote virtual machines.

Section 3.3 closes with: "A natural extension ... is to establish an
overlay network among the remote virtual machines.  The overlay network
would optimize itself with respect to the communication between the
virtual machines and the limitations of the various sites."

The overlay is a resilient-overlay-network (RON) style construction:
members measure pairwise latency over the underlay (which, thanks to
inter-site policy routing, may violate the triangle inequality), then
route application traffic over the overlay graph's shortest paths,
relaying through other members when a one-hop detour beats the direct
Internet path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.gridnet.topology import Network
from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["OverlayNetwork"]


class OverlayNetwork:
    """A full-mesh latency-optimizing overlay."""

    def __init__(self, sim: Simulation, network: Network,
                 per_hop_forwarding_cost: float = 0.5e-3):
        self.sim = sim
        self.network = network
        #: Application-level relaying cost added at each intermediate member.
        self.per_hop_forwarding_cost = float(per_hop_forwarding_cost)
        self._members: List[str] = []
        self._measured: Dict[Tuple[str, str], float] = {}
        self._graph = nx.Graph()
        #: Extra latency penalties for specific underlay pairs, modelling
        #: inter-domain policy routing that the overlay can route around.
        self._penalties: Dict[Tuple[str, str], float] = {}

    # -- membership -----------------------------------------------------------

    @property
    def members(self) -> List[str]:
        """Hosts currently participating in the overlay."""
        return list(self._members)

    def join(self, host: str) -> None:
        """Add a member (a VM's host) to the overlay mesh."""
        if not self.network.has_host(host):
            raise SimulationError("overlay member %s is not a host" % host)
        if host in self._members:
            raise SimulationError("%s already joined" % host)
        self._members.append(host)
        self._graph.add_node(host)

    def leave(self, host: str) -> None:
        """Remove a member and its measurements."""
        if host not in self._members:
            raise SimulationError("%s is not a member" % host)
        self._members.remove(host)
        self._graph.remove_node(host)
        self._measured = {k: v for k, v in self._measured.items()
                          if host not in k}

    def set_underlay_penalty(self, a: str, b: str, extra_latency: float) -> None:
        """Inflate the direct path between two members (policy routing)."""
        if extra_latency < 0:
            raise SimulationError("penalty must be non-negative")
        self._penalties[self._key(a, b)] = float(extra_latency)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def underlay_latency(self, a: str, b: str) -> float:
        """Direct-path latency including any policy-routing penalty."""
        base = self.network.latency(a, b)
        return base + self._penalties.get(self._key(a, b), 0.0)

    # -- self-optimization ------------------------------------------------------

    def measure(self):
        """Process generator: probe all pairs and rebuild the mesh.

        Probing costs one round trip per pair (pairs probe concurrently in
        a real deployment; we charge the slowest probe).
        """
        worst = 0.0
        self._graph = nx.Graph()
        self._graph.add_nodes_from(self._members)
        for i, a in enumerate(self._members):
            for b in self._members[i + 1:]:
                latency = self.underlay_latency(a, b)
                self._measured[self._key(a, b)] = latency
                self._graph.add_edge(a, b, weight=latency)
                worst = max(worst, 2.0 * latency)
        if worst:
            yield self.sim.timeout(worst)
        return len(self._measured)

    def overlay_route(self, src: str, dst: str) -> List[str]:
        """The member sequence minimizing end-to-end overlay latency."""
        if src not in self._members or dst not in self._members:
            raise SimulationError("both endpoints must be members")
        if not self._measured:
            raise SimulationError("overlay has no measurements; run measure()")

        def hop_weight(a, b, data):
            return data["weight"] + self.per_hop_forwarding_cost

        return nx.shortest_path(self._graph, src, dst, weight=hop_weight)

    def overlay_latency(self, src: str, dst: str) -> float:
        """End-to-end latency along :meth:`overlay_route`."""
        path = self.overlay_route(src, dst)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self._measured[self._key(a, b)]
        total += self.per_hop_forwarding_cost * max(0, len(path) - 2)
        return total

    def improvement(self, src: str, dst: str) -> float:
        """Latency saved by the overlay versus the direct underlay path."""
        return self.underlay_latency(src, dst) - self.overlay_latency(src, dst)

    def routing_table(self) -> Dict[Tuple[str, str], List[str]]:
        """All-pairs overlay routes (for inspection and tests)."""
        table = {}
        for i, a in enumerate(self._members):
            for b in self._members[i + 1:]:
                table[(a, b)] = self.overlay_route(a, b)
        return table

    def __repr__(self) -> str:
        return "<OverlayNetwork members=%d>" % len(self._members)
