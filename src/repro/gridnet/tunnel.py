"""Ethernet-level tunneling: the VM joins the user's home network.

Section 3.3, scenario 2: the VM host does not provide addresses, so
traffic is tunnelled — SSH-style — between the remote VM and the user's
local network, where the VM "appears to be connected" and can be given
an address easily.  The tunnel costs encapsulation overhead per byte and
rides the ordinary routed path between the VM host and the user's
gateway, so tunnelled transfers are strictly no faster than native ones.
"""

from __future__ import annotations

from typing import Optional

from repro.gridnet.flows import FlowEngine
from repro.gridnet.topology import Network
from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["EthernetTunnel"]


class EthernetTunnel:
    """A point-to-point Ethernet-in-TCP tunnel.

    Parameters
    ----------
    vm_host:
        The host on which the VM runs (tunnel remote endpoint).
    home_gateway:
        The user's local gateway (tunnel local endpoint).
    encapsulation_overhead:
        Fractional byte inflation from framing/encryption (0.05 = 5%).
    setup_time:
        SSH-style session establishment cost, seconds, paid once.
    """

    def __init__(self, sim: Simulation, network: Network, engine: FlowEngine,
                 vm_host: str, home_gateway: str,
                 encapsulation_overhead: float = 0.06,
                 setup_time: float = 1.0):
        if not network.has_host(vm_host) or not network.has_host(home_gateway):
            raise SimulationError("tunnel endpoints must be network hosts")
        if encapsulation_overhead < 0:
            raise SimulationError("overhead must be non-negative")
        self.sim = sim
        self.network = network
        self.engine = engine
        self.vm_host = vm_host
        self.home_gateway = home_gateway
        self.encapsulation_overhead = float(encapsulation_overhead)
        self.setup_time = float(setup_time)
        self.established_at: Optional[float] = None
        self.vm_address: Optional[str] = None
        self.bytes_tunnelled = 0

    @property
    def established(self) -> bool:
        """True once :meth:`establish` has completed."""
        return self.established_at is not None

    def establish(self, vm_name: str):
        """Process generator: bring the tunnel up and assign a home address.

        Reuses the TCP connection that launched the VM in the first place
        (the paper's observation), so only the tunnel handshake plus one
        round trip is paid.
        """
        yield self.sim.timeout(self.setup_time)
        yield self.sim.timeout(self.network.rtt(self.home_gateway,
                                                self.vm_host))
        self.established_at = self.sim.now
        self.vm_address = "home-net/%s" % vm_name
        return self.vm_address

    def transfer(self, nbytes: float, to_home: bool = True):
        """Process generator: move ``nbytes`` through the tunnel."""
        if not self.established:
            raise SimulationError("tunnel is not established")
        inflated = nbytes * (1.0 + self.encapsulation_overhead)
        src, dst = ((self.vm_host, self.home_gateway) if to_home
                    else (self.home_gateway, self.vm_host))
        yield from self.engine.transfer(src, dst, inflated,
                                        setup_round_trips=0.0)
        self.bytes_tunnelled += int(nbytes)

    def effective_bandwidth(self) -> float:
        """Payload throughput ceiling given path capacity and overhead."""
        raw = self.network.bottleneck_bandwidth(self.vm_host,
                                                self.home_gateway)
        return raw / (1.0 + self.encapsulation_overhead)

    def __repr__(self) -> str:
        state = "up" if self.established else "down"
        return "<EthernetTunnel %s<->%s %s>" % (self.vm_host,
                                                self.home_gateway, state)
