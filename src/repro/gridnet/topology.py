"""Network topology: hosts, routers and links with latency/bandwidth.

The topology is an undirected multigraph-free graph (one link per node
pair).  Routing is static shortest-path by propagation latency, computed
with networkx and cached until the topology changes.  Convenience
builders create the two shapes the paper's experiments need: a single
LAN, and two LANs joined by a WAN link (the University of Florida /
Northwestern setup of Table 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["Link", "Network"]


class Link:
    """A bidirectional link with propagation latency and capacity."""

    def __init__(self, a: str, b: str, latency: float, bandwidth: float):
        if latency < 0 or bandwidth <= 0:
            raise SimulationError("invalid link parameters")
        self.a = a
        self.b = b
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)

    @property
    def endpoints(self) -> Tuple[str, str]:
        """The two node names the link joins."""
        return (self.a, self.b)

    def __repr__(self) -> str:
        return "<Link %s--%s %.1fms %.0fMb/s>" % (
            self.a, self.b, self.latency * 1e3, self.bandwidth * 8 / 1e6)


class Network:
    """Hosts, routers and links, with shortest-latency routing."""

    def __init__(self, sim: Simulation, name: str = "net"):
        self.sim = sim
        self.name = name
        self._graph = nx.Graph()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._hosts: Dict[str, dict] = {}
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        # Derived-path memos, invalidated with the route cache.  Links
        # are immutable after construction, so the cached link lists and
        # latency sums stay valid as long as the routes do.
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._latency_cache: Dict[Tuple[str, str], float] = {}
        # Symmetric site-pair minimum latency matrix (the sharded
        # engine's lookahead source); built whole on first use because
        # a lookahead query for one pair always precedes queries for
        # the rest of the plan.
        self._site_latency_cache: Optional[Dict[Tuple[str, str],
                                                float]] = None

    # -- construction -------------------------------------------------------

    def add_host(self, name: str, site: str = "local", **attributes) -> None:
        """Register an end host (a machine that can source/sink flows)."""
        if name in self._hosts:
            raise SimulationError("host %s already exists" % name)
        self._hosts[name] = dict(site=site, **attributes)
        self._graph.add_node(name)
        self._clear_caches()

    def add_router(self, name: str) -> None:
        """Register an interior node (cannot source or sink flows)."""
        self._graph.add_node(name)
        self._clear_caches()

    def add_link(self, a: str, b: str, latency: float,
                 bandwidth: float) -> Link:
        """Connect two registered nodes."""
        for node in (a, b):
            if node not in self._graph:
                raise SimulationError("unknown node %s" % node)
        link = Link(a, b, latency, bandwidth)
        self._links[self._key(a, b)] = link
        self._graph.add_edge(a, b, weight=latency)
        self._clear_caches()
        return link

    def _clear_caches(self) -> None:
        self._route_cache.clear()
        self._path_cache.clear()
        self._latency_cache.clear()
        self._site_latency_cache = None

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- queries ------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        """All registered end hosts."""
        return list(self._hosts)

    def host_attributes(self, name: str) -> dict:
        """Attributes given at :meth:`add_host` time."""
        return dict(self._hosts[name])

    def has_host(self, name: str) -> bool:
        """True when ``name`` is a registered end host."""
        return name in self._hosts

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The direct link joining ``a`` and ``b``, if any."""
        return self._links.get(self._key(a, b))

    def route(self, src: str, dst: str) -> List[str]:
        """Node sequence of the lowest-latency path from src to dst."""
        if src == dst:
            return [src]
        key = (src, dst)
        if key not in self._route_cache:
            try:
                path = nx.shortest_path(self._graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise SimulationError("no route from %s to %s" % (src, dst))
            self._route_cache[key] = path
        return self._route_cache[key]

    def path_links(self, src: str, dst: str) -> List[Link]:
        """The links along the routed path (cached; do not mutate)."""
        key = (src, dst)
        links = self._path_cache.get(key)
        if links is None:
            path = self.route(src, dst)
            links = self._path_cache[key] = [
                self._links[self._key(a, b)]
                for a, b in zip(path, path[1:])]
        return links

    def latency(self, src: str, dst: str) -> float:
        """One-way propagation latency along the routed path."""
        key = (src, dst)
        value = self._latency_cache.get(key)
        if value is None:
            value = self._latency_cache[key] = sum(
                link.latency for link in self.path_links(src, dst))
        return value

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time along the routed path."""
        return 2.0 * self.latency(src, dst)

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        """Capacity of the narrowest link along the routed path."""
        links = self.path_links(src, dst)
        if not links:
            return float("inf")
        return min(link.bandwidth for link in links)

    # -- site-level queries (the sharded engine's lookahead source) ----------

    def sites(self) -> List[str]:
        """The distinct site labels of all registered hosts, sorted."""
        return sorted({attrs["site"] for attrs in self._hosts.values()})

    def hosts_in(self, site: str) -> List[str]:
        """The end hosts of one site, sorted."""
        return sorted(name for name, attrs in self._hosts.items()
                      if attrs["site"] == site)

    def site_of(self, name: str) -> Optional[str]:
        """The site label of a registered end host (None for routers)."""
        attrs = self._hosts.get(name)
        return attrs["site"] if attrs is not None else None

    def partition_lookaheads(
            self, partition: Dict[str, str]) -> Dict[Tuple[str, str], float]:
        """Pairwise minimum latency between the groups of a host partition.

        ``partition`` maps end hosts to group labels; hosts left out of
        the map contribute to no group.  The result is the symmetric
        group-pair matrix of the minimum one-way latency over all
        cross-group host pairs — the conservative lookahead for a
        sharded run partitioned along those groups (``inf`` for
        disconnected pairs).  The site matrix is the special case
        ``partition = {host: site_of(host)}``; a host-level plan passes
        ``{host: host}`` and wins the tighter LAN latencies.
        """
        groups: Dict[str, List[str]] = {}
        for host in sorted(partition):
            if host not in self._hosts:
                raise SimulationError("unknown host %s in partition" % host)
            groups.setdefault(partition[host], []).append(host)
        matrix: Dict[Tuple[str, str], float] = {}
        labels = sorted(groups)
        for i, label_a in enumerate(labels):
            hosts_a = groups[label_a]
            for label_b in labels[i + 1:]:
                best = float("inf")
                for a in hosts_a:
                    for b in groups[label_b]:
                        try:
                            value = self.latency(a, b)
                        except SimulationError:
                            continue  # disconnected pair
                        if value < best:
                            best = value
                matrix[(label_a, label_b)] = best
                matrix[(label_b, label_a)] = best
        return matrix

    def host_lookaheads(self) -> Dict[Tuple[str, str], float]:
        """The host-pair lookahead matrix (every host its own group)."""
        return self.partition_lookaheads({name: name for name in self._hosts})

    def _site_matrix(self) -> Dict[Tuple[str, str], float]:
        """The symmetric site-pair minimum-latency matrix (cached)."""
        matrix = self._site_latency_cache
        if matrix is None:
            matrix = self._site_latency_cache = self.partition_lookaheads(
                {name: attrs["site"] for name, attrs in self._hosts.items()})
        return matrix

    def min_latency(self, site_a: str, site_b: str) -> float:
        """The minimum one-way latency between two sites' hosts.

        This is the conservative lookahead of the sharded engine: no
        event crossing from ``site_a`` to ``site_b`` can take effect
        sooner than this, because every routed path between the sites
        pays at least this much propagation delay.  Symmetric (routing
        is shortest-path over undirected links), cached until the
        topology changes, and ``inf`` when no host pair is connected.
        Querying an unknown site or a site against itself is an error —
        intra-site events never cross a shard boundary.
        """
        for site in (site_a, site_b):
            if not self.hosts_in(site):
                raise SimulationError("site %s has no hosts" % site)
        if site_a == site_b:
            raise SimulationError(
                "min_latency is a cross-site lookahead; %s vs itself "
                "is not a shard boundary" % site_a)
        return self._site_matrix()[(site_a, site_b)]

    def site_lookaheads(self) -> Dict[Tuple[str, str], float]:
        """A copy of the full symmetric site-pair lookahead matrix."""
        return dict(self._site_matrix())

    # -- canned topologies ---------------------------------------------------

    @classmethod
    def single_lan(cls, sim: Simulation, hosts: Iterable[str],
                   latency: float = 5e-5, bandwidth: float = 12.5e6,
                   site: str = "local") -> "Network":
        """A switched LAN: every host hangs off one switch.

        Defaults model 100 Mb/s switched Ethernet with 0.1 ms RTT.
        """
        net = cls(sim, name="lan")
        switch = "%s-switch" % site
        net.add_router(switch)
        for host in hosts:
            net.add_host(host, site=site)
            net.add_link(host, switch, latency=latency, bandwidth=bandwidth)
        return net

    @classmethod
    def two_site_wan(cls, sim: Simulation, site_a: str, hosts_a: Iterable[str],
                     site_b: str, hosts_b: Iterable[str],
                     wan_latency: float = 0.015, wan_bandwidth: float = 2.5e6,
                     lan_latency: float = 5e-5,
                     lan_bandwidth: float = 12.5e6) -> "Network":
        """Two switched LANs joined by a WAN link.

        Defaults model the paper's Florida/Northwestern setup: ~30 ms RTT
        and a few MB/s of usable cross-country bandwidth.
        """
        net = cls(sim, name="wan")
        for site, hosts in ((site_a, hosts_a), (site_b, hosts_b)):
            switch = "%s-switch" % site
            net.add_router(switch)
            for host in hosts:
                net.add_host(host, site=site)
                net.add_link(host, switch, latency=lan_latency,
                             bandwidth=lan_bandwidth)
        net.add_link("%s-switch" % site_a, "%s-switch" % site_b,
                     latency=wan_latency, bandwidth=wan_bandwidth)
        return net

    def __repr__(self) -> str:
        return "<Network %s hosts=%d links=%d>" % (
            self.name, len(self._hosts), len(self._links))
