"""Network substrate and the paper's virtual-networking mechanisms.

The bottom half is a flow-level network model:

* :class:`~repro.gridnet.topology.Network` — hosts, routers and links in a
  graph (networkx), with shortest-path routing;
* :class:`~repro.gridnet.flows.FlowEngine` — max-min fair fluid bandwidth
  sharing along routed paths;
* :class:`~repro.gridnet.topology.Link` — latency/bandwidth edges.

The top half implements Section 3.3 of the paper:

* :class:`~repro.gridnet.dhcp.DhcpServer` — scenario 1, the site hands
  out addresses to dynamic VM instances;
* :class:`~repro.gridnet.tunnel.EthernetTunnel` — scenario 2, traffic is
  tunnelled at the Ethernet level to the user's home network;
* :class:`~repro.gridnet.overlay.OverlayNetwork` — the self-optimizing
  overlay among remote virtual machines.
"""

from repro.gridnet.dhcp import DhcpServer, Lease, NoAddressAvailable
from repro.gridnet.flows import Flow, FlowEngine, FlowPartition
from repro.gridnet.overlay import OverlayNetwork
from repro.gridnet.topology import Link, Network
from repro.gridnet.tunnel import EthernetTunnel

__all__ = [
    "DhcpServer",
    "EthernetTunnel",
    "Flow",
    "FlowEngine",
    "FlowPartition",
    "Lease",
    "Link",
    "Network",
    "NoAddressAvailable",
    "OverlayNetwork",
]
