"""DHCP-style address assignment for dynamic VM instances.

Section 3.3, scenario 1: the VM host's site has provisions for handing
out IP addresses, so a freshly instantiated VM obtains one dynamically
and the middleware uses it to reference the VM for the session.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["DhcpServer", "Lease", "NoAddressAvailable"]


class NoAddressAvailable(SimulationError):
    """The site's DHCP pool is exhausted."""


class Lease:
    """One granted address."""

    def __init__(self, address: str, client: str, granted_at: float):
        self.address = address
        self.client = client
        self.granted_at = granted_at
        self.released_at: Optional[float] = None

    @property
    def active(self) -> bool:
        """True while the client still holds the address."""
        return self.released_at is None

    def __repr__(self) -> str:
        return "<Lease %s -> %s>" % (self.address, self.client)


class DhcpServer:
    """A per-site address pool with DISCOVER/OFFER latency."""

    def __init__(self, sim: Simulation, subnet: str = "10.0.0",
                 pool_size: int = 64, handshake_time: float = 0.2):
        if pool_size < 1:
            raise SimulationError("pool must hold at least one address")
        self.sim = sim
        self.subnet = subnet
        self.handshake_time = float(handshake_time)
        self._free: List[str] = ["%s.%d" % (subnet, i)
                                 for i in range(2, 2 + pool_size)]
        self._leases: Dict[str, Lease] = {}

    @property
    def available(self) -> int:
        """Addresses still free."""
        return len(self._free)

    @property
    def active_leases(self) -> List[Lease]:
        """Currently granted leases."""
        return [lease for lease in self._leases.values() if lease.active]

    def acquire(self, client: str):
        """Process generator: DISCOVER/OFFER/REQUEST/ACK, returns a Lease."""
        yield self.sim.timeout(self.handshake_time)
        if not self._free:
            raise NoAddressAvailable("pool %s.* exhausted" % self.subnet)
        address = self._free.pop(0)
        lease = Lease(address, client, self.sim.now)
        self._leases[address] = lease
        return lease

    def release(self, lease: Lease) -> None:
        """Return an address to the pool."""
        if lease.address not in self._leases or not lease.active:
            raise SimulationError("lease %s is not active" % lease.address)
        lease.released_at = self.sim.now
        # Evict the spent lease: the table tracks holders, not history,
        # so its size follows the live population, not total churn.
        del self._leases[lease.address]
        self._free.append(lease.address)

    def __repr__(self) -> str:
        return "<DhcpServer %s.* free=%d>" % (self.subnet, len(self._free))
