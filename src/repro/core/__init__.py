"""The public face of the library: a virtual-machine computational grid.

:class:`~repro.core.grid.VirtualGrid` assembles everything the paper's
architecture needs — sites, compute hosts with VMMs and GRAM gateways,
image and data servers, DHCP pools, the information service, logical
accounts — and hands out :class:`~repro.middleware.session.GridSession`
objects implementing the six-step life cycle.

>>> from repro.core import VirtualGrid
>>> from repro.middleware import SessionConfig
>>> grid = VirtualGrid(seed=42)
>>> grid.add_site("uf")
>>> grid.add_compute_host("compute1", site="uf")      # doctest: +ELLIPSIS
<PhysicalMachine ...>
"""

from repro.core.grid import VirtualGrid
from repro.core.reporting import format_table

__all__ = ["VirtualGrid", "format_table"]
