"""The VirtualGrid facade: build a VM-based grid and open sessions on it.

The facade owns one :class:`~repro.simulation.kernel.Simulation` and the
shared middleware (network, flow engine, information service, accounts,
GridFTP), and lets the caller compose sites incrementally:

* :meth:`add_site` — a switched LAN joined to the WAN backbone, with a
  DHCP pool for dynamic VM addresses;
* :meth:`add_compute_host` — a physical machine with a host OS, a VMM,
  a GRAM gateway, and an advertised *VM future*;
* :meth:`add_image_server` / :meth:`publish_image` — image archives;
* :meth:`add_data_server` — user file storage;
* :meth:`add_user` — a logical user with a home-network gateway (for
  Ethernet tunnels);
* :meth:`new_session` — a six-step :class:`GridSession`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.gridnet.dhcp import DhcpServer
from repro.gridnet.flows import FlowEngine, FlowPartition
from repro.gridnet.topology import Network
from repro.guestos.interface import PhysicalHost
from repro.hardware.machine import MachineSpec, PhysicalMachine
from repro.middleware.accounts import AccountRegistry, LogicalUser
from repro.middleware.dataserver import UserDataServer
from repro.middleware.gram import GramGateway
from repro.middleware.gridftp import GridFtpService
from repro.middleware.imageserver import ImageServer
from repro.middleware.information import InformationService, VmFuture
from repro.middleware.session import GridSession, SessionConfig
from repro.obs.sla import DEFAULT_SLA, SlaPolicy
from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.randomness import RandomStreams
from repro.storage.transfer import FileStager
from repro.vmm.costs import VmmCosts
from repro.vmm.monitor import VirtualMachineMonitor

__all__ = ["VirtualGrid"]

#: Default WAN shape: the paper's Florida/Northwestern link.
_WAN_LATENCY = 0.015
_WAN_BANDWIDTH = 2.5e6
_LAN_LATENCY = 5e-5
_LAN_BANDWIDTH = 12.5e6
_BACKBONE = "internet"


class VirtualGrid:
    """A complete VM-based computational grid in one object."""

    def __init__(self, sim: Optional[Simulation] = None, seed: int = 0,
                 costs: Optional[VmmCosts] = None,
                 sla: Optional[SlaPolicy] = None,
                 flow_partition: Optional[str] = "site"):
        self.sim = sim or Simulation(seed=seed)
        self.streams = RandomStreams(seed)
        self.costs = costs or VmmCosts()
        self.sla = sla or DEFAULT_SLA
        self.network = Network(self.sim, name="grid-net")
        self.network.add_router(_BACKBONE)
        # The WAN fluid model runs decomposed by default: per-site fill
        # shards own their LAN links, cross-site links belong to the WAN
        # coordinator shard.  Allocations are byte-identical to the
        # monolithic fill (see FlowEngine._refill_decomposed), so this
        # is purely an execution-strategy default.
        if flow_partition is None:
            partition = None
        elif flow_partition == "site":
            partition = FlowPartition.by_site(self.network)
        elif flow_partition == "host":
            partition = FlowPartition.by_host(self.network)
        else:
            raise SimulationError("unknown flow partition %r "
                                  "(expected 'site', 'host' or None)"
                                  % flow_partition)
        self.engine = FlowEngine(self.sim, self.network,
                                 partition=partition)
        self.info = InformationService(self.sim,
                                       rng=self.streams.stream("info"))
        self.accounts = AccountRegistry()
        self.stager = FileStager(self.sim, self.engine)
        self.gridftp = GridFtpService(self.sim, self.stager)
        self._sites: Dict[str, DhcpServer] = {}
        self._machines: Dict[str, PhysicalMachine] = {}
        self._hosts: Dict[str, PhysicalHost] = {}
        self._vmms: Dict[str, VirtualMachineMonitor] = {}
        self._grams: Dict[str, GramGateway] = {}
        self._image_servers: Dict[str, ImageServer] = {}
        self._data_servers: Dict[str, UserDataServer] = {}
        self._gateways: Dict[str, str] = {}
        self._image_proxies: Dict[tuple, object] = {}  # simlint: disable=R23  keyed by (host, image server): bounded by topology, not by sessions

    # -- topology -----------------------------------------------------------------

    def add_site(self, name: str, wan_latency: float = _WAN_LATENCY,
                 wan_bandwidth: float = _WAN_BANDWIDTH,
                 dhcp_pool: int = 64) -> None:
        """A LAN joined to the backbone, with a DHCP pool for VMs."""
        if name in self._sites:
            raise SimulationError("site %s already exists" % name)
        switch = self._switch(name)
        self.network.add_router(switch)
        self.network.add_link(switch, _BACKBONE, latency=wan_latency,
                              bandwidth=wan_bandwidth)
        self._sites[name] = DhcpServer(self.sim, subnet="10.%d.0"
                                       % len(self._sites),
                                       pool_size=dhcp_pool)

    @staticmethod
    def _switch(site: str) -> str:
        return site + "-switch"

    def _attach(self, host_name: str, site: str,
                lan_latency: float = _LAN_LATENCY,
                lan_bandwidth: float = _LAN_BANDWIDTH) -> None:
        if site not in self._sites:
            raise SimulationError("unknown site %s (add_site first)" % site)
        self.network.add_host(host_name, site=site)
        self.network.add_link(host_name, self._switch(site),
                              latency=lan_latency, bandwidth=lan_bandwidth)

    def _make_host(self, name: str, site: str,
                   spec: Optional[MachineSpec],
                   cache_bytes: float) -> PhysicalHost:
        if name in self._machines:
            raise SimulationError("host %s already exists" % name)
        machine = PhysicalMachine(self.sim, name, site=site,
                                  spec=spec or MachineSpec())
        self._attach(name, site)
        host = PhysicalHost(machine, cache_bytes=cache_bytes)
        self._machines[name] = machine
        self._hosts[name] = host
        return host

    # -- components ------------------------------------------------------------------

    def add_compute_host(self, name: str, site: str,
                         spec: Optional[MachineSpec] = None,
                         vm_futures: int = 4, max_memory_mb: int = 512,
                         cache_bytes: float = 256 * 1024 * 1024,
                         scheduling: str = "proportional-share"
                         ) -> PhysicalMachine:
        """A physical machine willing to instantiate VMs."""
        host = self._make_host(name, site, spec, cache_bytes)
        self._vmms[name] = VirtualMachineMonitor(host, costs=self.costs)
        self._grams[name] = GramGateway(self.sim, name,
                                        rng=self.streams.stream(
                                            "gram/" + name),
                                        metrics=self.scoped_metrics(name),
                                        sla=self.sla)
        self.info.register("machines", host.machine.describe())
        future = VmFuture(name, site, vm_futures, max_memory_mb,
                          scheduling=scheduling)
        self.info.register("vm_futures", future.describe())
        return host.machine

    def add_image_server(self, name: str, site: str,
                         spec: Optional[MachineSpec] = None,
                         cache_bytes: float = 512 * 1024 * 1024
                         ) -> ImageServer:
        """An image archive host."""
        host = self._make_host(name, site, spec, cache_bytes)
        server = ImageServer(host, self.engine)
        self._image_servers[name] = server
        return server

    def publish_image(self, server_name: str, image_name: str,
                      size_bytes: int, warm_state_mb: Optional[int] = None,
                      **metadata):
        """Create an image on a server and advertise it."""
        server = self.image_server_for(server_name)
        image = server.publish_image(image_name, size_bytes,
                                     warm_state_mb=warm_state_mb,
                                     **metadata)
        self.info.register("images", server.record(image_name))
        return image

    def add_data_server(self, name: str, site: str,
                        spec: Optional[MachineSpec] = None) -> UserDataServer:
        """A user-data storage host."""
        host = self._make_host(name, site, spec, 256 * 1024 * 1024)
        server = UserDataServer(host, self.engine)
        self._data_servers[name] = server
        self.info.register("data_servers", {
            "name": name, "site": site, "host": name})
        return server

    def add_user(self, name: str, home_site: Optional[str] = None,
                 rights: tuple = ("instantiate", "store", "query")
                 ) -> LogicalUser:
        """A logical user, with a home-network gateway for tunnels."""
        site = home_site or "home-" + name
        if site not in self._sites:
            self.add_site(site, wan_latency=0.025, wan_bandwidth=1.25e6,
                          dhcp_pool=8)
        gateway = "gw-" + name
        if gateway not in self.network.hosts:
            self._attach(gateway, site)
        self._gateways[name] = gateway
        user = self.accounts.create_user(name, home_site=site)
        self.accounts.grant(name, "grid", *rights)
        return user

    # -- registry lookups (the interface GridSession consumes) -------------------------

    def host_for(self, name: str) -> PhysicalHost:
        """The host interface of a machine."""
        if name not in self._hosts:
            raise SimulationError("unknown host %s" % name)
        return self._hosts[name]

    def machine_for(self, name: str) -> PhysicalMachine:
        """A machine by name."""
        if name not in self._machines:
            raise SimulationError("unknown machine %s" % name)
        return self._machines[name]

    def vmm_for(self, name: str) -> VirtualMachineMonitor:
        """The VMM on a compute host."""
        if name not in self._vmms:
            raise SimulationError("%s is not a compute host" % name)
        return self._vmms[name]

    def gram_for(self, name: str) -> GramGateway:
        """The GRAM gateway of a compute host."""
        if name not in self._grams:
            raise SimulationError("%s has no GRAM gateway" % name)
        return self._grams[name]

    def image_server_for(self, name: str) -> ImageServer:
        """An image server by host name."""
        if name not in self._image_servers:
            raise SimulationError("%s is not an image server" % name)
        return self._image_servers[name]

    def dhcp_for(self, site: str) -> DhcpServer:
        """The DHCP pool of a site."""
        if site not in self._sites:
            raise SimulationError("unknown site %s" % site)
        return self._sites[site]

    @property
    def data_server(self) -> Optional[UserDataServer]:
        """The primary (first-added) data server, if any."""
        if not self._data_servers:
            return None
        return next(iter(self._data_servers.values()))

    def data_server_for(self, name: str) -> UserDataServer:
        """A data server by host name."""
        if name not in self._data_servers:
            raise SimulationError("%s is not a data server" % name)
        return self._data_servers[name]

    def image_proxy_for(self, host_name: str, server_name: str,
                        cache_bytes: float):
        """The host's shared PVFS proxy onto one image server.

        One proxy per (compute host, image server) pair, shared by every
        session, so read-only master images are cached once and reused —
        the Figure 2 pattern.
        """
        from repro.storage.pvfs import PvfsProxy

        key = (host_name, server_name)
        if key not in self._image_proxies:
            server = self.image_server_for(server_name)
            mount = server.mount_from(host_name)
            self._image_proxies[key] = PvfsProxy(
                self.sim, mount, cache_bytes=cache_bytes,
                name="pvfs-img@%s" % host_name)
        return self._image_proxies[key]

    def home_gateway_of(self, user: str) -> str:
        """The user's home-network gateway host (tunnel endpoint)."""
        if user not in self._gateways:
            raise SimulationError("user %s has no home gateway" % user)
        return self._gateways[user]

    def partitions(self, model: str = "site") -> Dict[str, str]:
        """Host name -> owning partition label under a shard model.

        ``model="site"`` partitions the grid the way the sharded engine
        would — one shard per site, every host owned by its site —
        while ``model="host"`` gives the finest split (one shard per
        physical machine).  The runtime shard-affinity sanitizer
        (:mod:`repro.analysis.shardsan`) consumes this map to decide
        which span contexts belong to which partition.
        """
        if model not in ("site", "host"):
            raise SimulationError("unknown shard model %r "
                                  "(expected 'site' or 'host')" % model)
        return {name: (machine.site if model == "site" else name)
                for name, machine in sorted(self._machines.items())}

    def partition_of(self, host_name: str, model: str = "site") -> str:
        """The shard label owning ``host_name`` ('' if unknown)."""
        machine = self._machines.get(host_name)
        if machine is None:
            return ""
        return machine.site if model == "site" else host_name

    def partition_groups(self, model: str = "site"):
        """The distinct partition labels of :meth:`partitions`, sorted.

        These are the shard plan's groups: one prospective shard per
        site (or per host under the finest model).
        """
        return sorted(set(self.partitions(model).values()))

    def lookaheads(self, model: str = "site"):
        """Pairwise conservative lookaheads between partition groups.

        Under ``model="site"``, ``(a, b) -> Network.min_latency(a, b)``
        over the site labels; under ``model="host"`` the matrix comes
        from :meth:`Network.partition_lookaheads` over the host
        partition, so co-located machines get the (much tighter) LAN
        latency as their safety margin — the split that unlocks shard
        counts above the site count.  Either way the value is the
        minimum simulated delay any event pays to cross between the
        groups, which is exactly what the sharded engine's conservative
        windows need.  A zero or missing latency (co-located groups)
        simply yields an entry the
        :class:`~repro.simulation.sharded.ShardPlan` will reject —
        such groups cannot be sharded apart.
        """
        if model == "site":
            groups = self.partition_groups(model)
            return {(a, b): self.network.min_latency(a, b)
                    for a in groups for b in groups if a != b}
        if model == "host":
            return self.network.partition_lookaheads(self.partitions("host"))
        raise SimulationError("unknown shard model %r "
                              "(expected 'site' or 'host')" % model)

    def scoped_metrics(self, host_name: str):
        """A metrics view keyed to the host's partition.

        Components owned by one host resolve their metrics through this
        once at construction, so every collector they create carries
        the shard key that :meth:`partitions` would assign the host —
        the property that lets per-shard registries merge to exactly
        the single-process result.
        """
        return self.sim.metrics.scoped(self.partition_of(host_name))

    # -- sessions ----------------------------------------------------------------------

    def new_session(self, config: SessionConfig) -> GridSession:
        """A six-step session; drive it with ``session.establish()``."""
        return GridSession(self, config)

    def run(self, generator, name: str = ""):
        """Convenience: spawn a process and run the clock to completion."""
        return self.sim.run_until_complete(self.sim.spawn(generator,
                                                          name=name))

    def __repr__(self) -> str:
        return ("<VirtualGrid sites=%d hosts=%d images=%d>"
                % (len(self._sites), len(self._machines),
                   len(self._image_servers)))
