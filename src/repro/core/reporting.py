"""Table formatting shared by the examples and the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width text table (the benches print paper tables)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                text = "%.2f" % cell
            else:
                text = str(cell)
            columns[i].append(text)
    widths = [max(len(cell) for cell in column) for column in columns]

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append(line(["-" * width for width in widths]))
    for row_index in range(1, len(columns[0])):
        out.append(line([column[row_index] for column in columns]))
    return "\n".join(out)
