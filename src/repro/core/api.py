"""The stable flat API: one import for downstream users.

Everything a grid builder typically needs, re-exported from one place::

    from repro.core.api import (
        VirtualGrid, SessionConfig, spec_seis, HostLoadTrace, ...
    )

Subpackage imports remain available (and are what the library itself
uses); this module simply freezes the names we commit to keeping stable.
"""

from repro.core.grid import VirtualGrid
from repro.core.reporting import format_table
from repro.guestos import (
    GuestOsProfile,
    OperatingSystem,
    OsCosts,
    PhysicalHost,
    ProcessResult,
)
from repro.gridnet import (
    DhcpServer,
    EthernetTunnel,
    FlowEngine,
    Network,
    OverlayNetwork,
)
from repro.hardware import (
    CpuTask,
    Disk,
    MachineSpec,
    PhysicalMachine,
    ProcessorSharingCpu,
    TaskGroup,
)
from repro.middleware import (
    AccountRegistry,
    GramGateway,
    GridFtpService,
    GridSession,
    ImageServer,
    InformationService,
    LogicalUser,
    MetaScheduler,
    MiddlewareFrontend,
    ServiceProvider,
    SessionConfig,
    TapeArchive,
    UsageMeter,
    UserDataServer,
    VirtualCluster,
    VmFuture,
    VncConsole,
)
from repro.prediction import (
    ArPredictor,
    BandwidthSensor,
    HostLoadSensor,
    LastValuePredictor,
    RunningTimePredictor,
    WindowedMeanPredictor,
)
from repro.scheduling import (
    DutyCycleModulator,
    InteractivePolicyDaemon,
    LotteryScheduler,
    PeriodicEnforcer,
    WfqScheduler,
    compile_constraints,
    parse_constraints,
)
from repro.simulation import RandomStreams, Simulation, SimulationError
from repro.storage import (
    BlockCache,
    FileStager,
    LocalFileSystem,
    NfsClient,
    NfsServer,
    PvfsProxy,
)
from repro.vmm import (
    DiskImage,
    VirtualDisk,
    VirtualMachine,
    VirtualMachineMonitor,
    VmConfig,
    VmCrashed,
    VmState,
    VmmCosts,
    migrate,
)
from repro.workloads import (
    Application,
    ComputePhase,
    HostLoadTrace,
    IoPhase,
    KernelEventRates,
    LoadPlayback,
    micro_test_task,
    spec_climate,
    spec_seis,
    synthetic_compute,
)

__all__ = [
    # core
    "VirtualGrid", "format_table",
    # simulation
    "Simulation", "SimulationError", "RandomStreams",
    # hardware
    "CpuTask", "Disk", "MachineSpec", "PhysicalMachine",
    "ProcessorSharingCpu", "TaskGroup",
    # guest OS
    "GuestOsProfile", "OperatingSystem", "OsCosts", "PhysicalHost",
    "ProcessResult",
    # VMM
    "DiskImage", "VirtualDisk", "VirtualMachine", "VirtualMachineMonitor",
    "VmConfig", "VmCrashed", "VmState", "VmmCosts", "migrate",
    # storage
    "BlockCache", "FileStager", "LocalFileSystem", "NfsClient",
    "NfsServer", "PvfsProxy",
    # networking
    "DhcpServer", "EthernetTunnel", "FlowEngine", "Network",
    "OverlayNetwork",
    # middleware
    "AccountRegistry", "GramGateway", "GridFtpService", "GridSession",
    "ImageServer", "InformationService", "LogicalUser", "MetaScheduler",
    "MiddlewareFrontend", "ServiceProvider", "SessionConfig",
    "TapeArchive", "UsageMeter", "UserDataServer", "VirtualCluster",
    "VmFuture", "VncConsole",
    # scheduling
    "DutyCycleModulator", "InteractivePolicyDaemon", "LotteryScheduler",
    "PeriodicEnforcer", "WfqScheduler", "compile_constraints",
    "parse_constraints",
    # prediction
    "ArPredictor", "BandwidthSensor", "HostLoadSensor",
    "LastValuePredictor", "RunningTimePredictor", "WindowedMeanPredictor",
    # workloads
    "Application", "ComputePhase", "HostLoadTrace", "IoPhase",
    "KernelEventRates", "LoadPlayback", "micro_test_task", "spec_climate",
    "spec_seis", "synthetic_compute",
]
