"""The tracing protocol: sim-time spans, instants, counters, kernel hooks.

A :class:`Tracer` is attached to a :class:`~repro.simulation.kernel.
Simulation` at construction (``Simulation(tracer=...)``).  The base class
is the *null tracer*: every hook is a no-op and ``enabled`` is False, so
the kernel's hot path reduces to one attribute test per hook site.  The
module-level :data:`NULL_TRACER` singleton is the default for every
simulation.

:class:`TraceRecorder` is the recording implementation.  It collects

* **spans** — named intervals of simulated time on a *track*
  (``(process, thread)`` label pair, one trace row per host/VM/process),
  opened with :meth:`Tracer.begin` and closed with :meth:`Tracer.end`;
* **instants** — zero-duration marks;
* **counters** — sampled numeric series;
* **kernel statistics** — counts of event scheduling/firing, process
  spawn/resume/interrupt/termination and clock advances, fed by the
  kernel hooks.

Everything is keyed to ``sim.now`` only — a recorder never reads the
host clock — so two same-seed runs record byte-identical traces (see
:mod:`repro.obs.chrome` for the export).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "TraceRecorder",
           "TraceError"]

#: Default track for spans that do not name one.
_DEFAULT_TRACK = ("sim", "main")


class TraceError(RuntimeError):
    """Raised for misuse of the tracing layer (e.g. an unbound recorder)."""


class Span:
    """One named interval of simulated time on one track."""

    __slots__ = ("category", "name", "track", "start", "end", "args")

    def __init__(self, category: str, name: str, track: Tuple[str, str],
                 start: float, args: Dict[str, Any]):
        self.category = category
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds covered, or None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:
        return "<Span %s/%s [%s..%s]>" % (self.category, self.name,
                                          self.start, self.end)


class Tracer:
    """The tracing protocol; the base class is a no-op (null) tracer.

    Model code calls :meth:`begin`/:meth:`end` (and :meth:`instant`,
    :meth:`counter`) unconditionally through ``sim.trace``; the kernel
    calls the ``on_*`` hooks only when ``sim._tracing`` is set, which the
    simulation derives from :attr:`enabled`.
    """

    #: Recording tracers set this True; the kernel skips hook calls
    #: entirely when it is False.
    enabled = False

    def bind(self, sim) -> None:
        """Attach to the simulation whose clock stamps the records."""

    # -- span API (model-layer instrumentation) ---------------------------

    def begin(self, category: str, name: str,
              track: Tuple[str, str] = _DEFAULT_TRACK, **args) -> Span:
        """Open a span at the current simulated time."""
        return _NULL_SPAN

    def end(self, span: Span) -> None:
        """Close a span at the current simulated time."""

    def instant(self, name: str, track: Tuple[str, str] = _DEFAULT_TRACK,
                **args) -> None:
        """Record a zero-duration mark."""

    def counter(self, name: str, value: float,
                track: Tuple[str, str] = _DEFAULT_TRACK) -> None:
        """Sample a numeric series at the current simulated time."""

    # -- kernel hooks ------------------------------------------------------

    def on_event_scheduled(self, sim, event, when: float,
                           priority: int) -> None:
        """An event entered the queue, due at ``when``."""

    def on_event_fired(self, sim, event) -> None:
        """The kernel popped an event and is about to run its callbacks."""

    def on_event_observed(self, sim, event) -> None:
        """An already-processed event's value was consumed by a waiter.

        Fired on the fast resume path (a process yields an event that
        has already run its callbacks) and when a condition folds in an
        already-processed sub-event.  Used by the determinism sanitizer
        to retire lost-event candidates.
        """

    def on_clock_advanced(self, sim, previous: float, now: float) -> None:
        """The virtual clock moved forward."""

    def on_process_spawned(self, sim, process) -> None:
        """A new process was created."""

    def on_process_resumed(self, sim, process) -> None:
        """A process is being resumed by the event loop."""

    def on_process_interrupted(self, sim, process, cause) -> None:
        """An Interrupt was thrown into a process."""

    def on_process_terminated(self, sim, process, ok: bool) -> None:
        """A process generator finished (ok) or raised (not ok)."""

    def on_resource_acquired(self, sim, resource, request) -> None:
        """A Resource slot was granted to ``request``."""

    def on_resource_released(self, sim, resource, request) -> None:
        """A granted Resource slot was returned."""

    def __repr__(self) -> str:
        return "<%s enabled=%s>" % (type(self).__name__, self.enabled)


#: Alias making intent explicit at call sites.
NullTracer = Tracer

#: The shared no-op tracer every Simulation uses by default.
NULL_TRACER = Tracer()

#: The shared span the null tracer hands out; ending it is a no-op.
_NULL_SPAN = Span("null", "null", _DEFAULT_TRACK, 0.0, {})


class TraceRecorder(Tracer):
    """Records spans/instants/counters plus kernel activity statistics.

    ``record_kernel`` additionally turns process spawn / interrupt /
    termination into instant marks on the ``("kernel", <process name>)``
    track, which makes scheduling visible in the exported trace at the
    cost of a bigger file.
    """

    enabled = True

    def __init__(self, record_kernel: bool = True):
        self.sim = None
        self.record_kernel = bool(record_kernel)
        self.spans: List[Span] = []
        #: (time, name, track, args) per instant, in record order.
        self.instants: List[Tuple[float, str, Tuple[str, str], dict]] = []  # simlint: disable=R23  trace artifact: recording is opt-in per run and the product is the full timeline
        #: (time, name, track, value) per counter sample, in record order.
        self.counters: List[Tuple[float, str, Tuple[str, str], float]] = []  # simlint: disable=R23  trace artifact: see instants
        self.kernel_stats: Dict[str, int] = {
            "events_scheduled": 0,
            "events_fired": 0,
            "clock_advances": 0,
            "processes_spawned": 0,
            "process_resumes": 0,
            "process_interrupts": 0,
            "processes_terminated": 0,
            "process_failures": 0,
        }

    def bind(self, sim) -> None:
        if self.sim is not None and self.sim is not sim:
            raise TraceError("recorder is already bound to another "
                             "simulation; use one recorder per run")
        self.sim = sim

    def _now(self) -> float:
        if self.sim is None:
            raise TraceError("recorder is not bound to a simulation "
                             "(pass it as Simulation(tracer=...))")
        return self.sim.now

    # -- span API ----------------------------------------------------------

    def begin(self, category: str, name: str,
              track: Tuple[str, str] = _DEFAULT_TRACK, **args) -> Span:
        span = Span(category, name, track, self._now(), args)
        self.spans.append(span)
        return span

    def end(self, span: Span) -> None:
        if span is _NULL_SPAN:
            return
        span.end = self._now()

    def instant(self, name: str, track: Tuple[str, str] = _DEFAULT_TRACK,
                **args) -> None:
        self.instants.append((self._now(), name, track, args))

    def counter(self, name: str, value: float,
                track: Tuple[str, str] = _DEFAULT_TRACK) -> None:
        self.counters.append((self._now(), name, track, float(value)))

    # -- kernel hooks ------------------------------------------------------

    def on_event_scheduled(self, sim, event, when: float,
                           priority: int) -> None:
        self.kernel_stats["events_scheduled"] += 1

    def on_event_fired(self, sim, event) -> None:
        self.kernel_stats["events_fired"] += 1

    def on_clock_advanced(self, sim, previous: float, now: float) -> None:
        self.kernel_stats["clock_advances"] += 1

    def on_process_spawned(self, sim, process) -> None:
        self.kernel_stats["processes_spawned"] += 1
        if self.record_kernel:
            self.instants.append((sim.now, "spawn " + process.name,
                                  ("kernel", "processes"), {}))

    def on_process_resumed(self, sim, process) -> None:
        self.kernel_stats["process_resumes"] += 1

    def on_process_interrupted(self, sim, process, cause) -> None:
        self.kernel_stats["process_interrupts"] += 1
        if self.record_kernel:
            self.instants.append((sim.now, "interrupt " + process.name,
                                  ("kernel", "processes"),
                                  {"cause": repr(cause)}))

    def on_process_terminated(self, sim, process, ok: bool) -> None:
        self.kernel_stats["processes_terminated"] += 1
        if not ok:
            self.kernel_stats["process_failures"] += 1
        if self.record_kernel:
            self.instants.append((sim.now, "exit " + process.name,
                                  ("kernel", "processes"), {"ok": ok}))

    # -- introspection -----------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (usually an instrumentation bug)."""
        return [span for span in self.spans if span.end is None]

    def __repr__(self) -> str:
        return "<TraceRecorder spans=%d instants=%d counters=%d>" % (
            len(self.spans), len(self.instants), len(self.counters))
