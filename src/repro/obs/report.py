"""Render a run's telemetry as a text or markdown report.

``repro report <experiment>`` replays a scenario with a flight
recorder attached and renders what an operator would want on one
screen: throughput (kernel events/s and the last-window dispatch
rates), latency percentiles for every histogram, host utilizations,
SLA violation counts, and a per-partition rollup of the registry.

Everything here is a pure function of the simulation's final state, so
the rendered report inherits the run's byte-identity: same scenario +
seed -> the same bytes, whatever machine or worker count produced the
metrics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.reporting import format_table
from repro.obs.metrics import Histogram, MetricsRegistry, storage_key

__all__ = ["render_report"]

#: Histogram columns shared by the text and markdown renderings.
_LATENCY_HEADERS = ["Metric", "Count", "Mean(s)", "p50(s)", "p95(s)",
                    "p99(s)", "Max(s)"]


def _fmt(value: Optional[float]) -> str:
    return "%.4g" % value if value is not None else "-"


def _latency_rows(registry: MetricsRegistry) -> List[List[str]]:
    rows = []
    for key in registry.names():
        metric = registry._metrics[key]
        if not isinstance(metric, Histogram):
            continue
        rows.append([key, str(metric.count), _fmt(metric.acc.mean),
                     _fmt(metric.quantile(0.5)),
                     _fmt(metric.quantile(0.95)),
                     _fmt(metric.quantile(0.99)),
                     _fmt(metric.acc.maximum)])
    return rows


def _utilization_rows(grid, horizon: float) -> List[List[str]]:
    rows = []
    partition_of = getattr(grid, "partition_of", lambda name: "")
    for name, machine in sorted(grid._machines.items()):
        cpu = machine.cpu
        busy = cpu.utilization.time_average(end=horizon) \
            if len(cpu.utilization) else 0.0
        queue = cpu.run_queue.time_average(end=horizon) \
            if len(cpu.run_queue) else 0.0
        rows.append([name, partition_of(name), "%.1f%%" % (100.0 * busy),
                     "%.2f" % queue])
    return rows


def _sla_rows(registry: MetricsRegistry) -> List[List[str]]:
    rows = []
    folded = registry.aggregate()
    for key in folded.names():
        metric = folded._metrics[key]
        if metric.kind == "counter" and ".violations" in key:
            rows.append([key, "%d" % metric.value])
    return rows


def _partition_rows(registry: MetricsRegistry) -> List[List[str]]:
    """Per-partition rollup: sessions, queue waits, violations."""
    rows = []
    for partition in registry.partitions():
        def get(name, kind):
            metric = registry._metrics.get(storage_key(name, partition))
            return metric if metric is not None \
                and metric.kind == kind else None

        sessions = get("session.established", "counter")
        wait = get("sched.queue_wait", "histogram")
        start = get("sla.session_start.latency", "histogram")
        violations = 0.0
        for name in ("sla.session_start.violations",
                     "sla.queue_wait.violations"):
            counter = get(name, "counter")
            if counter is not None:
                violations += counter.value
        rows.append([
            partition,
            "%d" % sessions.value if sessions is not None else "0",
            _fmt(start.quantile(0.95)) if start is not None else "-",
            _fmt(wait.quantile(0.95)) if wait is not None else "-",
            "%d" % violations,
        ])
    return rows


def render_report(sim, grid=None, recorder=None, title: str = "Run report",
                  fmt: str = "text") -> str:
    """The full report; ``fmt`` is ``"text"`` or ``"markdown"``."""
    if fmt not in ("text", "markdown"):
        raise ValueError("fmt must be 'text' or 'markdown'")
    registry = sim.metrics
    sections = []

    # Throughput: kernel totals, plus recorder-derived steady rate.
    elapsed = sim.now
    rows = [["simulated seconds", "%.4g" % elapsed],
            ["kernel events", "%d" % sim._next_id],
            ["events/s (overall)",
             "%.4g" % (sim._next_id / elapsed) if elapsed else "-"]]
    if recorder is not None and recorder.entries:
        last = recorder.entries[-1]
        rows.append(["events/s (last interval)",
                     "%.4g" % (last.events_delta / recorder.interval)])
        rows.append(["heartbeats recorded",
                     "%d (of %d taken)" % (len(recorder.entries),
                                           recorder.samples_taken)])
    for key in registry.names():
        metric = registry._metrics[key]
        if metric.kind == "rate":
            rows.append(["%s (last %gs window)" % (key, metric.window),
                         "%.4g/s" % metric.rate(sim.now)])
    sections.append(("Throughput", ["Quantity", "Value"], rows))

    # Latency percentiles for every histogram in the registry.
    lat = _latency_rows(registry)
    if lat:
        sections.append(("Latency percentiles", _LATENCY_HEADERS, lat))

    # Utilization per machine (when a grid is available).
    if grid is not None and getattr(grid, "_machines", None):
        sections.append(("Utilization",
                         ["Host", "Partition", "CPU busy", "Run queue"],
                         _utilization_rows(grid, sim.now)))

    # SLA violation counters (aggregated over partitions).
    sla = _sla_rows(registry)
    if sla:
        sections.append(("SLA violations", ["Counter", "Total"], sla))

    # Per-partition rollup.
    partitions = _partition_rows(registry)
    if partitions:
        sections.append(("Per-partition",
                         ["Partition", "Sessions", "Start p95(s)",
                          "Queue wait p95(s)", "SLA violations"],
                         partitions))

    if fmt == "markdown":
        return _render_markdown(title, sections)
    return _render_text(title, sections)


def _render_text(title: str, sections) -> str:
    out = [title, "=" * len(title)]
    for name, headers, rows in sections:
        out.append("")
        out.append(format_table(headers, rows, title=name))
    return "\n".join(out) + "\n"


def _render_markdown(title: str, sections) -> str:
    out = ["# %s" % title]
    for name, headers, rows in sections:
        out.append("")
        out.append("## %s" % name)
        out.append("")
        out.append("| " + " | ".join(headers) + " |")
        out.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out) + "\n"
