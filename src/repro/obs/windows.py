"""Bounded-memory streaming collectors: quantiles and rates.

Two collectors complement :mod:`repro.simulation.monitor`'s windowed
:class:`TimeSeriesMonitor`:

* :class:`QuantileHistogram` — a mergeable histogram over *fixed*
  logarithmic bucket boundaries.  Unlike randomized sketches (t-digest,
  KLL), the bucket an observation lands in is a pure function of its
  value, so two same-seed runs — and any fold order of per-shard parts
  — produce byte-identical snapshots.  Quantiles are exact to within
  the bucket resolution (``1/subbuckets`` relative width per bucket).
* :class:`RateSeries` — a windowed event-rate series derived from a
  cumulative total (events/s, sessions/s), backed by a windowed
  :class:`TimeSeriesMonitor` so memory stays bounded at any event
  count.

Both are consumed by the :class:`~repro.obs.metrics.MetricsRegistry`
(histograms carry a quantile digest; ``registry.rate`` creates rate
series) and by the flight recorder (:mod:`repro.obs.recorder`), whose
byte-identity contract rests on the determinism above.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileHistogram", "RateSeries"]

#: Linear sub-buckets per power-of-two octave.  16 gives every bucket a
#: relative width of at most 1/16 = 6.25%, so a reported quantile is
#: within ~3.2% of the true sample (midpoint representative).
SUBBUCKETS = 16

#: Exponent bias keeping positive-value indices positive.  ``frexp`` of
#: the smallest subnormal float yields exponent -1073, so adding 1100
#: makes every biased exponent positive and leaves the sign of the
#: index free to encode the sign of the value.
EXPONENT_BIAS = 1100


def bucket_index(value: float) -> int:
    """The (signed) fixed-boundary bucket holding ``value``.

    Positive values map to ``octave * SUBBUCKETS + sub + 1`` via
    ``math.frexp`` (no libm log, so the boundary decision is exact);
    negative values mirror to the negated index; zero is bucket 0.
    The mapping is a pure function of the value — observation order,
    merge order and process identity cannot change it.
    """
    if value == 0.0:
        return 0
    magnitude = abs(value)
    mantissa, exponent = math.frexp(magnitude)   # magnitude = m * 2**e
    sub = int((mantissa - 0.5) * 2.0 * SUBBUCKETS)
    if sub == SUBBUCKETS:  # mantissa rounded up to 1.0 (inf guard)
        sub = SUBBUCKETS - 1
    index = (exponent + EXPONENT_BIAS) * SUBBUCKETS + sub + 1
    return index if value > 0 else -index


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The [low, high) value range of a signed bucket index."""
    if index == 0:
        return (0.0, 0.0)
    magnitude = abs(index) - 1
    exponent, sub = divmod(magnitude, SUBBUCKETS)
    exponent -= EXPONENT_BIAS
    low = math.ldexp(1.0 + sub / SUBBUCKETS, exponent - 1)
    high = math.ldexp(1.0 + (sub + 1) / SUBBUCKETS, exponent - 1)
    if index > 0:
        return (low, high)
    return (-high, -low)


def bucket_midpoint(index: int) -> float:
    """The representative value reported for a bucket."""
    low, high = bucket_bounds(index)
    return (low + high) / 2.0


class QuantileHistogram:
    """Deterministic mergeable quantiles over log-spaced buckets.

    Stores one integer count per occupied bucket plus exact count, min
    and max.  Memory is bounded by the number of *distinct occupied
    buckets* (a few dozen for any realistic latency distribution),
    never by the observation count.  ``merge`` adds bucket counts, so
    folding per-shard parts in any order reproduces the single-process
    histogram bit for bit.
    """

    __slots__ = ("name", "count", "minimum", "maximum", "_buckets")

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileHistogram") -> "QuantileHistogram":
        """Fold another histogram's buckets into this one, in place.

        Bucket counts add and min/max combine — both associative and
        commutative — so the result is independent of fold order and
        identical to observing both sample sets in one histogram.
        Returns ``self`` for chaining.
        """
        self.count += other.count
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum
        buckets = self._buckets
        for index, n in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        return self

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (nearest-rank over buckets), or None if empty.

        Walks buckets in ascending value order — ``sorted`` over the
        signed indices, so the answer does not depend on insertion or
        merge order — and returns the midpoint of the bucket holding
        the nearest-rank sample, clamped into [min, max].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                mid = bucket_midpoint(index)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    def quantiles(self, fractions: Iterable[float]) -> List[Optional[float]]:
        """Several quantiles in one call."""
        return [self.quantile(q) for q in fractions]

    @property
    def bucket_mean(self) -> float:
        """Bucket-resolution mean (0.0 when empty).

        Computed from midpoints in sorted bucket order, so — unlike a
        streamed exact mean — it is invariant under merge fold order.
        """
        if self.count == 0:
            return 0.0
        total = 0.0
        for index in sorted(self._buckets):
            total += bucket_midpoint(index) * self._buckets[index]
        return total / self.count

    def state(self) -> Dict[str, object]:
        """The full mergeable state (used by the flight recorder)."""
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": dict(self._buckets),
        }

    @classmethod
    def from_state(cls, name: str,
                   state: Dict[str, object]) -> "QuantileHistogram":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls(name)
        hist.count = int(state["count"])
        hist.minimum = state["min"]
        hist.maximum = state["max"]
        hist._buckets = {int(k): int(v)
                         for k, v in state["buckets"].items()}
        return hist

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return "<QuantileHistogram %s n=%d buckets=%d>" % (
            self.name, self.count, len(self._buckets))


class RateSeries:
    """A windowed event-rate series derived from a cumulative total.

    ``mark(time)`` counts occurrences; :meth:`rate` reports the mean
    rate over the trailing ``window`` simulated seconds.  The cumulative
    totals are held in a windowed :class:`TimeSeriesMonitor`, so memory
    is bounded by the marks falling inside one window regardless of how
    many events the run produces.
    """

    __slots__ = ("name", "partition", "window", "total", "monitor")

    kind = "rate"

    def __init__(self, name: str = "", window: float = 60.0,
                 max_samples: Optional[int] = 4096):
        # Deferred import: repro.obs is imported by the simulation
        # kernel module itself, so module-level imports back into
        # repro.simulation would re-enter a partially initialized
        # package (same pattern as Histogram in repro.obs.metrics).
        from repro.simulation.monitor import TimeSeriesMonitor

        if window <= 0:
            raise ValueError("rate window must be positive")
        self.name = name
        self.partition = ""
        self.window = float(window)
        self.total = 0.0
        self.monitor = TimeSeriesMonitor(name, window=window,
                                         max_samples=max_samples)

    def mark(self, time: float, amount: float = 1.0) -> None:
        """Count ``amount`` occurrences at simulated ``time``."""
        self.total += amount
        self.monitor.record(time, self.total)

    def rate(self, at: Optional[float] = None) -> float:
        """Mean occurrences per second over the trailing window."""
        monitor = self.monitor
        if not monitor.times:
            return 0.0
        if at is None:
            at = monitor.times[-1]
        start = at - self.window
        earlier = monitor.value_at(start)
        if earlier is None:
            earlier = 0.0
        later = monitor.value_at(at)
        if later is None:
            return 0.0
        return (later - earlier) / self.window

    def merge(self, other: "RateSeries") -> "RateSeries":
        """Fold a *later, disjoint* part's marks onto this series.

        Rates partition by time exactly like the underlying monitor;
        per-shard rate series are expected to be partition-keyed
        (disjoint registry keys), so a same-key merge only supports
        the sequential-span case.  Returns ``self``.
        """
        if other.total == 0.0 and not other.monitor.times:
            return self
        if self.total == 0.0 and not self.monitor.times:
            self.total = other.total
            self.monitor.merge(other.monitor)
            return self
        # Sequential spans: rebase the other part's cumulative totals
        # on top of ours, preserving the monitor's overlap check.
        from repro.simulation.monitor import TimeSeriesMonitor

        base = self.total
        rebased = TimeSeriesMonitor(other.name, window=other.window)
        for t, v in zip(other.monitor.times, other.monitor.values):
            rebased.record(t, v + base)
        self.monitor.merge(rebased)
        self.total = base + other.total
        return self

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "type": self.kind,
            "total": self.total,
            "rate": self.rate(),
            "window": self.window,
        }
        if self.partition:
            snap["partition"] = self.partition
        return snap

    def __repr__(self) -> str:
        return "<RateSeries %s total=%.6g rate=%.6g/s>" % (
            self.name, self.total, self.rate())
