"""Observability: kernel tracing, a metrics registry, Perfetto export.

The paper's feasibility argument is entirely about *where time goes* —
VMM overhead and the per-step cost of the six-step session life cycle —
so this package makes the simulated stack observable end to end:

* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol (null by
  default, zero-cost on the kernel hot path), sim-time spans, and the
  recording :class:`TraceRecorder`;
* :mod:`repro.obs.metrics` — a hierarchical :class:`MetricsRegistry`
  (counters, gauges, histograms) owned by each simulation
  (``sim.metrics``);
* :mod:`repro.obs.chrome` — Chrome-trace-event JSON export, loadable
  in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.runner` — traced single-run scenarios behind the
  ``repro trace`` / ``repro metrics`` CLI commands (imported lazily by
  the CLI; not re-exported here to keep this package importable from
  the kernel).

See ``docs/observability.md`` for the protocol, naming conventions and
a Perfetto walkthrough.
"""

from repro.obs.chrome import (
    chrome_trace_events,
    chrome_trace_json,
    export_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceError,
    TraceRecorder,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceError",
    "TraceRecorder",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "export_chrome_trace",
]
