"""Observability: kernel tracing, a metrics registry, Perfetto export.

The paper's feasibility argument is entirely about *where time goes* —
VMM overhead and the per-step cost of the six-step session life cycle —
so this package makes the simulated stack observable end to end:

* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol (null by
  default, zero-cost on the kernel hot path), sim-time spans, and the
  recording :class:`TraceRecorder`;
* :mod:`repro.obs.metrics` — a hierarchical :class:`MetricsRegistry`
  (counters, gauges, histograms, rates; partition-keyed) owned by each
  simulation (``sim.metrics``);
* :mod:`repro.obs.windows` — bounded-memory collector backends: the
  deterministic :class:`QuantileHistogram` and windowed
  :class:`RateSeries`;
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder`, a sim-time
  heartbeat snapshotting the registry into a bounded ring (JSONL
  export, per-shard merge);
* :mod:`repro.obs.sla` — the :class:`SlaPolicy` thresholds consumed by
  the session and GRAM layers;
* :mod:`repro.obs.chrome` — Chrome-trace-event JSON export, loadable
  in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.runner` / :mod:`repro.obs.report` — traced
  single-run scenarios and the run-report renderer behind the
  ``repro trace`` / ``metrics`` / ``record`` / ``report`` CLI commands
  (imported lazily by the CLI; not re-exported here to keep this
  package importable from the kernel).

See ``docs/observability.md`` for the protocol, naming conventions and
a Perfetto walkthrough.
"""

from repro.obs.chrome import (
    chrome_trace_events,
    chrome_trace_json,
    export_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import FlightEntry, FlightRecorder
from repro.obs.sla import DEFAULT_SLA, SlaPolicy
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceError,
    TraceRecorder,
    Tracer,
)
from repro.obs.windows import QuantileHistogram, RateSeries

__all__ = [
    "Counter",
    "DEFAULT_SLA",
    "FlightEntry",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QuantileHistogram",
    "RateSeries",
    "SlaPolicy",
    "Span",
    "TraceError",
    "TraceRecorder",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "export_chrome_trace",
]
