"""A hierarchical metrics registry: counters, gauges, histograms.

Metric names are dotted paths following ``layer.component.metric``
(``storage.pvfs.cache_hits``, ``vmm.boot.duration``,
``sched.queue_wait``), so snapshots group naturally by prefix.  Every
:class:`~repro.simulation.kernel.Simulation` owns one lazily created
registry (``sim.metrics``); components resolve their metric objects once
at construction and then update them with plain attribute calls, keeping
the record path allocation-free.

Snapshots are pure functions of the recorded values: exports sort by
metric name and use a fixed JSON encoding, so two same-seed runs emit
byte-identical metrics files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the total (negative increments are rejected)."""
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one, in place.

        Addition is associative and commutative, so per-shard counters
        fold to exactly the single-process total regardless of fold
        order.  Returns ``self`` for chaining.
        """
        self.value += other.value
        return self

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return "<Counter %s=%.6g>" % (self.name, self.value)


class Gauge:
    """A point-in-time level (last value wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return "<Gauge %s=%r>" % (self.name, self.value)


class Histogram:
    """A distribution of observed samples (count/mean/stdev/min/max)."""

    kind = "histogram"

    def __init__(self, name: str):
        # Deferred import: repro.obs is imported by the simulation kernel
        # module itself, so module-level imports back into repro.simulation
        # would re-enter a partially initialized package.
        from repro.simulation.monitor import StatAccumulator

        self.name = name
        self.acc = StatAccumulator(name)
        # Pre-bind the accumulator's add as the record method: observers
        # resolve `histogram.observe` once at construction, and each
        # record then costs one bound-method call instead of two.
        self.observe = self.acc.add

    def observe(self, value: float) -> None:  # overridden per instance
        self.acc.add(value)

    @property
    def count(self) -> int:
        return self.acc.count

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's samples into this one, in place.

        Delegates to :meth:`StatAccumulator.merge` (exact parallel-
        variance combination), so the result matches a single histogram
        over both sample sets.  Returns ``self`` for chaining.
        """
        self.acc.merge(other.acc)
        return self

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.acc.count,
            "mean": self.acc.mean,
            "stdev": self.acc.stdev,
            "min": self.acc.minimum,
            "max": self.acc.maximum,
        }

    def __repr__(self) -> str:
        return "<Histogram %s n=%d>" % (self.name, self.acc.count)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create metric objects by dotted name, plus exports."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name)
        elif not isinstance(metric, factory):
            raise TypeError("metric %s is a %s, not a %s"
                            % (name, metric.kind, factory.kind))
        return metric

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram under ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one, in place.

        Counters and histograms combine exactly (see their ``merge``
        methods); gauges are last-value-wins, so fold parts in
        simulation-time order — the replication runner's canonical task
        order — and the result is deterministic.  Returns ``self``.
        """
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._get(name, type(theirs))
            if isinstance(theirs, Gauge):
                if theirs.value is not None:
                    mine.set(theirs.value)
            else:
                mine.merge(theirs)
        return self

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self, prefix: str = "") -> List[str]:
        """Registered metric names (optionally under a dotted prefix)."""
        return sorted(name for name in self._metrics
                      if name.startswith(prefix))

    # -- exports -----------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """Name -> value mapping, sorted by name, optionally filtered."""
        return {name: self._metrics[name].snapshot()
                for name in self.names(prefix)}

    def to_json(self, prefix: str = "") -> str:
        """A deterministic JSON rendering of :meth:`snapshot`."""
        import json

        return json.dumps(self.snapshot(prefix), sort_keys=True,
                          indent=2)

    def to_table(self, prefix: str = "", title: str = "Metrics") -> str:
        """A fixed-width text table of every metric's summary."""
        # Deferred import (see Histogram.__init__ for why).
        from repro.core.reporting import format_table

        rows = []
        for name, snap in self.snapshot(prefix).items():
            if snap["type"] == "histogram":
                value = "n=%d mean=%.4g min=%.4g max=%.4g" % (
                    snap["count"], snap["mean"] or 0.0,
                    snap["min"] or 0.0, snap["max"] or 0.0)
            else:
                value = "%.6g" % snap["value"] \
                    if snap["value"] is not None else "-"
            rows.append([name, snap["type"], value])
        return format_table(["Metric", "Type", "Value"], rows, title=title)

    def __repr__(self) -> str:
        return "<MetricsRegistry %d metrics>" % len(self._metrics)
