"""A hierarchical metrics registry: counters, gauges, histograms, rates.

Metric names are dotted paths following ``layer.component.metric``
(``storage.pvfs.cache_hits``, ``vmm.boot.duration``,
``sched.queue_wait``), so snapshots group naturally by prefix.  Every
:class:`~repro.simulation.kernel.Simulation` owns one lazily created
registry (``sim.metrics``); components resolve their metric objects once
at construction and then update them with plain attribute calls, keeping
the record path allocation-free.

**Partition keying.**  Every metric optionally carries a *partition*
label — the shard key from :meth:`repro.core.grid.VirtualGrid
.partitions` (a site or host name).  A partitioned metric is stored
under ``name[partition]``, so per-shard registries hold disjoint keys
and :meth:`MetricsRegistry.merge` folds them to exactly the
single-process result; :meth:`MetricsRegistry.aggregate` folds the
partitions of each base name back into one total.  Components obtain a
partition-bound view with :meth:`MetricsRegistry.scoped`.

Snapshots are pure functions of the recorded values: exports sort by
metric name and use a fixed JSON encoding, so two same-seed runs emit
byte-identical metrics files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.windows import QuantileHistogram, RateSeries

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "PartitionScope", "storage_key"]


def storage_key(name: str, partition: str = "") -> str:
    """The registry key of a metric: ``name`` or ``name[partition]``."""
    if not partition:
        return name
    return "%s[%s]" % (name, partition)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, partition: str = ""):
        self.name = name
        self.partition = partition
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the total (negative increments are rejected)."""
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one, in place.

        Addition is associative and commutative, so per-shard counters
        fold to exactly the single-process total regardless of fold
        order.  Returns ``self`` for chaining.
        """
        self.value += other.value
        return self

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {"type": self.kind, "value": self.value}
        if self.partition:
            snap["partition"] = self.partition
        return snap

    def __repr__(self) -> str:
        return "<Counter %s=%.6g>" % (storage_key(self.name,
                                                  self.partition),
                                      self.value)


class Gauge:
    """A point-in-time level (last value wins)."""

    kind = "gauge"

    def __init__(self, name: str, partition: str = ""):
        self.name = name
        self.partition = partition
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {"type": self.kind, "value": self.value}
        if self.partition:
            snap["partition"] = self.partition
        return snap

    def __repr__(self) -> str:
        return "<Gauge %s=%r>" % (storage_key(self.name, self.partition),
                                  self.value)


class Histogram:
    """A distribution of observed samples.

    Combines two bounded-memory summaries of the same observations: a
    :class:`~repro.simulation.monitor.StatAccumulator` (exact streaming
    count/mean/stdev/min/max, O(1) state) and a
    :class:`~repro.obs.windows.QuantileHistogram` (deterministic
    p50/p95/p99 to bucket resolution, O(occupied buckets) state).
    Neither retains raw samples, so memory stays flat at any
    observation count.
    """

    kind = "histogram"

    #: Percentiles included in snapshots and reports.
    PERCENTILES = (0.5, 0.95, 0.99)

    def __init__(self, name: str, partition: str = ""):
        # Deferred import: repro.obs is imported by the simulation kernel
        # module itself, so module-level imports back into repro.simulation
        # would re-enter a partially initialized package.
        from repro.simulation.monitor import StatAccumulator

        self.name = name
        self.partition = partition
        self.acc = StatAccumulator(name)
        self.quantiles = QuantileHistogram(name)

    def observe(self, value: float) -> None:
        """Record one observation into both summaries."""
        self.acc.add(value)
        self.quantiles.add(value)

    @property
    def count(self) -> int:
        return self.acc.count

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile, exact to bucket resolution (None when empty)."""
        return self.quantiles.quantile(q)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's samples into this one, in place.

        The accumulator combines via :meth:`StatAccumulator.merge`
        (exact parallel variance; fold parts in canonical task order
        for bit-stable means) and the quantile digest via bucket-count
        addition (fold-order invariant).  Returns ``self``.
        """
        self.acc.merge(other.acc)
        self.quantiles.merge(other.quantiles)
        return self

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "type": self.kind,
            "count": self.acc.count,
            "mean": self.acc.mean,
            "stdev": self.acc.stdev,
            "min": self.acc.minimum,
            "max": self.acc.maximum,
        }
        for q in self.PERCENTILES:
            snap["p%g" % (100 * q)] = self.quantiles.quantile(q)
        if self.partition:
            snap["partition"] = self.partition
        return snap

    def __repr__(self) -> str:
        return "<Histogram %s n=%d>" % (storage_key(self.name,
                                                    self.partition),
                                        self.acc.count)


Metric = Union[Counter, Gauge, Histogram, RateSeries]

#: Metric classes by kind, used when folding foreign registries.
_FACTORIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class PartitionScope:
    """A partition-bound view of a registry.

    Hands out metrics carrying this scope's shard key; everything else
    delegates to the parent registry.  Components owned by one host or
    site resolve their metrics through a scope once at construction
    (``grid.scoped_metrics(host)``), so the record path is unchanged.
    """

    __slots__ = ("registry", "partition")

    def __init__(self, registry: "MetricsRegistry", partition: str):
        self.registry = registry
        self.partition = partition

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name, partition=self.partition)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name, partition=self.partition)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name, partition=self.partition)

    def rate(self, name: str, window: float = 60.0) -> RateSeries:
        return self.registry.rate(name, window=window,
                                  partition=self.partition)

    def __repr__(self) -> str:
        return "<PartitionScope %r of %r>" % (self.partition, self.registry)


class MetricsRegistry:
    """Get-or-create metric objects by dotted name, plus exports.

    ``partition`` is the registry's *default* shard key: a shard-local
    registry constructed as ``MetricsRegistry(partition="uf")`` keys
    every metric it creates, so per-shard registries merge into the
    single-process registry without renaming.
    """

    def __init__(self, partition: str = ""):
        self.partition = partition
        self._metrics: Dict[str, Metric] = {}  # simlint: disable=R23  keyed by static instrument names: bounded by the instrumentation surface

    def _get(self, name: str, factory, partition: Optional[str]) -> Metric:
        if partition is None:
            partition = self.partition
        key = storage_key(name, partition)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory(name,
                                                  partition=partition)
        elif not isinstance(metric, factory):
            raise TypeError("metric %s is a %s, not a %s"
                            % (key, metric.kind, factory.kind))
        return metric

    def counter(self, name: str,
                partition: Optional[str] = None) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter, partition)

    def gauge(self, name: str, partition: Optional[str] = None) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge, partition)

    def histogram(self, name: str,
                  partition: Optional[str] = None) -> Histogram:
        """The histogram under ``name`` (created on first use)."""
        return self._get(name, Histogram, partition)

    def rate(self, name: str, window: float = 60.0,
             partition: Optional[str] = None) -> RateSeries:
        """The windowed rate series under ``name`` (created on first use).

        ``window`` only applies on creation; later calls return the
        existing series whatever its window.
        """
        if partition is None:
            partition = self.partition
        key = storage_key(name, partition)
        metric = self._metrics.get(key)
        if metric is None:
            metric = RateSeries(name, window=window)
            metric.partition = partition  # type: ignore[attr-defined]
            self._metrics[key] = metric
        elif not isinstance(metric, RateSeries):
            raise TypeError("metric %s is a %s, not a rate"
                            % (key, metric.kind))
        return metric

    def scoped(self, partition: str) -> PartitionScope:
        """A view handing out metrics keyed to ``partition``."""
        return PartitionScope(self, partition)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one, in place.

        Counters, histograms and quantile digests combine exactly (see
        their ``merge`` methods); gauges are last-value-wins, so fold
        parts in simulation-time order — the replication runner's
        canonical task order — and the result is deterministic.
        Per-shard registries carry disjoint partition keys, so folding
        them reproduces exactly the single-process registry.  Returns
        ``self``.
        """
        for key in other.names():
            theirs = other._metrics[key]
            if isinstance(theirs, RateSeries):
                mine = self.rate(theirs.name, window=theirs.window,
                                 partition=getattr(theirs, "partition", ""))
                mine.merge(theirs)
                continue
            mine = self._get(theirs.name, type(theirs), theirs.partition)
            if isinstance(theirs, Gauge):
                if theirs.value is not None:
                    mine.set(theirs.value)
            else:
                mine.merge(theirs)
        return self

    def aggregate(self, prefix: str = "") -> "MetricsRegistry":
        """A new registry with every base name's partitions folded.

        Partitions fold in sorted-key order (deterministic regardless
        of how this registry was assembled); gauges keep the value of
        the last partition in that order.
        """
        folded = MetricsRegistry()
        for key in self.names(prefix):
            theirs = self._metrics[key]
            folded.merge_metric(theirs)
        return folded

    def merge_metric(self, theirs: Metric) -> None:
        """Fold one foreign metric into this registry under its base name."""
        if isinstance(theirs, RateSeries):
            self.rate(theirs.name, window=theirs.window,
                      partition="").merge(theirs)
        elif isinstance(theirs, Gauge):
            if theirs.value is not None:
                self.gauge(theirs.name, partition="").set(theirs.value)
        else:
            mine = self._get(theirs.name, type(theirs), "")
            mine.merge(theirs)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def names(self, prefix: str = "") -> List[str]:
        """Registered storage keys (optionally under a dotted prefix)."""
        return sorted(key for key in self._metrics  # simlint: disable=R22  iterates the instrument registry (bounded by code, not population) once per sampling beat
                      if key.startswith(prefix))

    def partitions(self) -> List[str]:
        """The distinct partition labels present, sorted ('' excluded)."""
        return sorted({getattr(metric, "partition", "")
                       for metric in self._metrics.values()} - {""})

    # -- exports -----------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """Key -> value mapping, sorted by key, optionally filtered."""
        return {key: self._metrics[key].snapshot()
                for key in self.names(prefix)}

    def to_json(self, prefix: str = "") -> str:
        """A deterministic JSON rendering of :meth:`snapshot`."""
        import json

        return json.dumps(self.snapshot(prefix), sort_keys=True,
                          indent=2)

    def to_table(self, prefix: str = "", title: str = "Metrics") -> str:
        """A fixed-width text table of every metric's summary."""
        # Deferred import (see Histogram.__init__ for why).
        from repro.core.reporting import format_table

        rows = []
        for key, snap in self.snapshot(prefix).items():
            if snap["type"] == "histogram":
                value = ("n=%d mean=%.4g p95=%.4g min=%.4g max=%.4g"
                         % (snap["count"], snap["mean"] or 0.0,
                            snap["p95"] or 0.0,
                            snap["min"] or 0.0, snap["max"] or 0.0))
            elif snap["type"] == "rate":
                value = "total=%.6g rate=%.4g/s" % (snap["total"],
                                                    snap["rate"])
            else:
                value = "%.6g" % snap["value"] \
                    if snap["value"] is not None else "-"
            rows.append([key, snap["type"], value])
        return format_table(["Metric", "Type", "Value"], rows, title=title)

    def __repr__(self) -> str:
        return "<MetricsRegistry %d metrics>" % len(self._metrics)
