"""The flight recorder: periodic metric snapshots in a bounded ring.

A :class:`FlightRecorder` rides an ordinary simulation as a sim-time
heartbeat process: every ``interval`` simulated seconds it snapshots
the :class:`~repro.obs.metrics.MetricsRegistry` — counter totals and
per-interval deltas/rates, gauge levels, histogram counts and quantile
bucket states — plus kernel vitals (events created, queue depth) into
a ring of at most ``capacity`` entries.  Old entries fall off the
front, so a million-event run costs the same memory as a thousand-event
run: you always hold the *last* ``capacity`` heartbeats, which is what
you want from a flight recorder.

Determinism contract:

* the heartbeat draws no randomness and never mutates model state, so
  attaching a recorder cannot change any experiment artifact (the
  heartbeat's queue entries shift event ids uniformly, which preserves
  the relative order of all model events);
* snapshots read only ``sim.now`` and registry state, and the JSONL
  export sorts keys and uses Python's shortest-repr float encoding —
  two same-seed runs write byte-identical files;
* per-shard recorders (each watching a partition-keyed registry) fold
  with :meth:`FlightRecorder.merge` to exactly the single-process
  record, because counter deltas add and quantile bucket states add.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import QuantileHistogram

__all__ = ["FlightEntry", "FlightRecorder"]


class FlightEntry:
    """One heartbeat snapshot (deltas are against the previous beat)."""

    __slots__ = ("seq", "time", "events", "events_delta", "queue_depth",
                 "counters", "gauges", "histograms", "rates")

    def __init__(self, seq: int, time: float):
        self.seq = seq
        self.time = time
        #: Kernel vitals (0 when the recorder excludes them).
        self.events = 0
        self.events_delta = 0
        self.queue_depth = 0
        #: key -> (total, delta)
        self.counters: Dict[str, tuple] = {}
        #: key -> level
        self.gauges: Dict[str, float] = {}
        #: key -> {"count", "delta", "min", "max", "buckets"}
        self.histograms: Dict[str, Dict[str, object]] = {}
        #: key -> (total, rate)
        self.rates: Dict[str, tuple] = {}

    def to_dict(self, interval: float) -> Dict[str, object]:
        """The JSONL rendering: derived percentiles, no raw buckets."""
        counters = {}
        for key in sorted(self.counters):
            total, delta = self.counters[key]
            counters[key] = {"total": total, "delta": delta,
                            "rate": delta / interval if interval else 0.0}
        histograms = {}
        for key in sorted(self.histograms):
            state = self.histograms[key]
            digest = QuantileHistogram.from_state(key, state)
            histograms[key] = {
                "count": state["count"],
                "delta": state["delta"],
                "min": state["min"],
                "max": state["max"],
                "p50": digest.quantile(0.5),
                "p95": digest.quantile(0.95),
                "p99": digest.quantile(0.99),
            }
        rates = {key: {"total": self.rates[key][0],
                       "rate": self.rates[key][1]}
                 for key in sorted(self.rates)}
        return {
            "seq": self.seq,
            "t": self.time,
            "events": self.events,
            "events_delta": self.events_delta,
            "queue_depth": self.queue_depth,
            "counters": counters,
            "gauges": {key: self.gauges[key] for key in sorted(self.gauges)},
            "histograms": histograms,
            "rates": rates,
        }

    def __repr__(self) -> str:
        return "<FlightEntry #%d t=%.6g>" % (self.seq, self.time)


class FlightRecorder:
    """Bounded ring of periodic metric snapshots over one simulation."""

    def __init__(self, sim, interval: float = 1.0, capacity: int = 512,
                 registry: Optional[MetricsRegistry] = None,
                 include_kernel: bool = True):
        from repro.simulation.kernel import SimulationError

        if interval <= 0:
            raise SimulationError("recorder interval must be positive")
        if capacity < 1:
            raise SimulationError("recorder capacity must be >= 1")
        self.sim = sim
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.registry = registry if registry is not None else sim.metrics
        #: Per-shard recorders watching one partition's registry turn
        #: kernel vitals off so that merging shards of one simulated
        #: world does not multiply-count the shared kernel.
        self.include_kernel = bool(include_kernel)
        self.entries: Deque[FlightEntry] = deque(maxlen=self.capacity)
        self.samples_taken = 0
        self._proc = None
        # Previous-beat cursors for delta computation.
        self._prev_events = 0
        self._prev_counters: Dict[str, float] = {}  # simlint: disable=R23  delta cursors keyed by instrument name; bounded by the registry
        self._prev_hist_counts: Dict[str, int] = {}  # simlint: disable=R23  delta cursors keyed by instrument name; bounded by the registry

    # -- sampling ----------------------------------------------------------

    def sample(self) -> FlightEntry:
        """Snapshot the registry now and append to the ring."""
        sim = self.sim
        entry = FlightEntry(self.samples_taken, sim.now)
        self.samples_taken += 1
        if self.include_kernel:
            entry.events = sim._next_id
            entry.events_delta = sim._next_id - self._prev_events
            self._prev_events = sim._next_id
            entry.queue_depth = len(sim._queue) + len(sim._immediate)
        registry = self.registry
        for key in registry.names():
            metric = registry._metrics[key]
            kind = metric.kind
            if kind == "counter":
                previous = self._prev_counters.get(key, 0.0)
                entry.counters[key] = (metric.value,
                                       metric.value - previous)
                self._prev_counters[key] = metric.value
            elif kind == "gauge":
                if metric.value is not None:
                    entry.gauges[key] = metric.value
            elif kind == "histogram":
                digest = metric.quantiles
                state = digest.state()
                previous = self._prev_hist_counts.get(key, 0)
                state["delta"] = digest.count - previous
                self._prev_hist_counts[key] = digest.count
                entry.histograms[key] = state
            elif kind == "rate":
                entry.rates[key] = (metric.total, metric.rate(sim.now))
        self.entries.append(entry)
        return entry

    def _heartbeat(self):
        from repro.simulation.kernel import Interrupt

        try:
            while True:
                yield self.sim.timeout(self.interval)
                self.sample()
        except Interrupt:
            return  # recorder stopped; terminate cleanly

    def start(self) -> None:
        """Spawn the sim-time heartbeat process."""
        from repro.simulation.kernel import SimulationError

        if self._proc is not None:
            raise SimulationError("flight recorder already started")
        self._proc = self.sim.spawn(self._heartbeat(),
                                    name="flight-recorder")

    def stop(self, final_sample: bool = True) -> None:
        """Stop the heartbeat (optionally taking one last snapshot)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="recorder-stop")
        self._proc = None
        if final_sample:
            self.sample()

    def detach(self) -> "FlightRecorder":
        """A picklable copy of the record, cut loose from live objects.

        The sharded engine ships per-shard records back across the
        process boundary this way: entries, interval and capacity
        survive; the simulation and registry handles (unpicklable,
        and meaningless in another process) do not.  The detached
        recorder exports and merges exactly like the original.
        """
        detached = FlightRecorder.__new__(FlightRecorder)
        detached.sim = None
        detached.interval = self.interval
        detached.capacity = self.capacity
        detached.registry = None
        detached.include_kernel = self.include_kernel
        detached.entries = deque(self.entries, maxlen=self.capacity)
        detached.samples_taken = self.samples_taken
        detached._proc = None
        detached._prev_events = self._prev_events
        detached._prev_counters = dict(self._prev_counters)
        detached._prev_hist_counts = dict(self._prev_hist_counts)
        return detached

    # -- merging -----------------------------------------------------------

    @staticmethod
    def merge(parts: List["FlightRecorder"]) -> "FlightRecorder":
        """Fold per-shard recorders into the single-process record.

        Parts must have heartbeat-aligned entries (same interval, same
        sample times — the sharded engine drives every shard's recorder
        off the same conservative time barrier).  Counter totals/deltas
        and histogram bucket states add; kernel vitals add (disable
        ``include_kernel`` on shards of one shared kernel); gauges and
        rates union — per-shard registries key them by partition, so
        the keys are disjoint.  Returns a detached recorder holding the
        merged entries.
        """
        from repro.simulation.kernel import SimulationError

        if not parts:
            raise SimulationError("nothing to merge")
        first = parts[0]
        merged = FlightRecorder.__new__(FlightRecorder)
        merged.sim = None
        merged.interval = first.interval
        merged.capacity = first.capacity
        merged.registry = None
        merged.include_kernel = first.include_kernel
        merged.entries = deque(maxlen=first.capacity)
        merged.samples_taken = first.samples_taken
        merged._proc = None
        merged._prev_events = 0
        merged._prev_counters = {}
        merged._prev_hist_counts = {}
        for part in parts[1:]:
            if part.interval != first.interval \
                    or len(part.entries) != len(first.entries):
                raise SimulationError(
                    "flight records are not heartbeat-aligned")
        for beats in zip(*(part.entries for part in parts)):
            base = beats[0]
            entry = FlightEntry(base.seq, base.time)
            for beat in beats:
                if beat.seq != base.seq or beat.time != base.time:
                    raise SimulationError(
                        "flight records are not heartbeat-aligned "
                        "(beat %d at t=%g vs beat %d at t=%g)"
                        % (base.seq, base.time, beat.seq, beat.time))
                entry.events += beat.events
                entry.events_delta += beat.events_delta
                entry.queue_depth += beat.queue_depth
                for key, (total, delta) in beat.counters.items():
                    prev = entry.counters.get(key, (0.0, 0.0))
                    entry.counters[key] = (prev[0] + total,
                                           prev[1] + delta)
                entry.gauges.update(beat.gauges)
                for key, state in beat.histograms.items():
                    mine = entry.histograms.get(key)
                    if mine is None:
                        merged_state = dict(state)
                        merged_state["buckets"] = dict(state["buckets"])
                        entry.histograms[key] = merged_state
                    else:
                        mine["count"] += state["count"]
                        mine["delta"] += state["delta"]
                        for bound, (a, b) in (("min", (mine["min"],
                                                       state["min"])),
                                              ("max", (mine["max"],
                                                       state["max"]))):
                            if a is None:
                                mine[bound] = b
                            elif b is not None:
                                mine[bound] = (min(a, b) if bound == "min"
                                               else max(a, b))
                        buckets = mine["buckets"]
                        for index, n in state["buckets"].items():
                            buckets[index] = buckets.get(index, 0) + n
                entry.rates.update(beat.rates)
            merged.entries.append(entry)
        return merged

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One sorted-key JSON object per heartbeat, newline-separated."""
        lines = [json.dumps(entry.to_dict(self.interval), sort_keys=True,
                            separators=(",", ":"))
                 for entry in self.entries]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> int:
        """Write the JSONL export; returns the number of entries."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self.entries)

    def last_histogram(self, key: str) -> Optional[QuantileHistogram]:
        """The cumulative quantile digest of ``key`` at the last beat."""
        if not self.entries:
            return None
        state = self.entries[-1].histograms.get(key)
        if state is None:
            return None
        return QuantileHistogram.from_state(key, state)

    def __repr__(self) -> str:
        return "<FlightRecorder interval=%.6g entries=%d/%d>" % (
            self.interval, len(self.entries), self.capacity)
