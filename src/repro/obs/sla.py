"""Service-level objectives for grid sessions.

"Utility Computing and Global Grids" frames SLA violation rates and
wait-time distributions as *the* figures of merit for utility grids;
this module gives the simulated middleware a policy object to measure
against.  The thresholds are simulated seconds; components record a
latency histogram unconditionally and bump a ``*.violations`` counter
whenever an observation exceeds its threshold, so ``repro metrics``
and the flight recorder expose both the distribution and the SLA
surface without any extra bookkeeping at query time.

Metric names:

* ``sla.session_start.latency`` / ``sla.session_start.violations`` —
  full six-step establish latency (:mod:`repro.middleware.session`);
* ``sched.queue_wait`` / ``sla.queue_wait.violations`` — GRAM
  submission-to-start wait (:mod:`repro.middleware.gram`).

This module must stay importable from anywhere in the stack, so it
depends on nothing but the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlaPolicy", "DEFAULT_SLA"]


@dataclass(frozen=True)
class SlaPolicy:
    """Latency objectives, in simulated seconds."""

    #: Six-step session establishment (user asks -> VM usable).
    session_start_seconds: float = 120.0
    #: GRAM dispatch wait (globusrun submission -> job body starts).
    queue_wait_seconds: float = 30.0

    def __post_init__(self):
        if min(self.session_start_seconds, self.queue_wait_seconds) <= 0:
            raise ValueError("SLA thresholds must be positive")


#: The policy used when a grid/component is not handed one explicitly.
DEFAULT_SLA = SlaPolicy()
