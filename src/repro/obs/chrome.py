"""Chrome-trace-event export: open recorded traces in Perfetto.

Converts a :class:`~repro.obs.tracer.TraceRecorder` into the Chrome
trace-event JSON format (the ``{"traceEvents": [...]}`` flavour), which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one trace *process* per track process label (host, session, layer)
  and one *thread* row per track thread label (VM, component), named
  with ``M``-phase metadata events;
* spans become complete (``X``) events, instants ``i`` events and
  counter samples ``C`` events;
* simulated **seconds** map to trace **microseconds** (Chrome's native
  unit), so one sim-second reads as one second in the UI.

The export is deterministic: pid/tid numbers are assigned in first-seen
record order, events are sorted by (timestamp, record order), and the
JSON encoding is fixed — two same-seed runs produce byte-identical
files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.tracer import TraceRecorder

__all__ = ["chrome_trace_events", "chrome_trace_json",
           "export_chrome_trace"]


def _microseconds(sim_seconds: float) -> int:
    """Simulated seconds -> integer trace microseconds."""
    return int(round(sim_seconds * 1e6))


class _TrackIds:
    """First-seen-order pid/tid assignment for (process, thread) tracks."""

    def __init__(self):
        self._pids: Dict[str, int] = {}
        self._tids: Dict[str, Dict[str, int]] = {}

    def resolve(self, track: Tuple[str, str]) -> Tuple[int, int]:
        process, thread = track
        pid = self._pids.setdefault(process, len(self._pids) + 1)
        threads = self._tids.setdefault(process, {})
        tid = threads.setdefault(thread, len(threads) + 1)
        return pid, tid

    def metadata_events(self) -> List[dict]:
        events = []
        for process, pid in self._pids.items():
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": process}})
            for thread, tid in self._tids[process].items():
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": thread}})
        return events


def chrome_trace_events(recorder: TraceRecorder) -> List[dict]:
    """The trace-event dicts for a recorder (metadata first, then data)."""
    ids = _TrackIds()
    data: List[Tuple[int, int, dict]] = []  # (ts, record order, event)
    order = 0

    for span in recorder.spans:
        pid, tid = ids.resolve(span.track)
        start = _microseconds(span.start)
        end = _microseconds(span.end if span.end is not None
                            else span.start)
        event = {"ph": "X", "pid": pid, "tid": tid, "ts": start,
                 "dur": max(0, end - start), "cat": span.category,
                 "name": span.name}
        args = dict(span.args)
        if span.end is None:
            args["unfinished"] = True
        if args:
            event["args"] = args
        data.append((start, order, event))
        order += 1

    for when, name, track, args in recorder.instants:
        pid, tid = ids.resolve(track)
        event = {"ph": "i", "pid": pid, "tid": tid,
                 "ts": _microseconds(when), "s": "t", "name": name}
        if args:
            event["args"] = dict(args)
        data.append((event["ts"], order, event))
        order += 1

    for when, name, track, value in recorder.counters:
        pid, tid = ids.resolve(track)
        event = {"ph": "C", "pid": pid, "tid": tid,
                 "ts": _microseconds(when), "name": name,
                 "args": {"value": value}}
        data.append((event["ts"], order, event))
        order += 1

    data.sort(key=lambda item: (item[0], item[1]))
    return ids.metadata_events() + [event for _ts, _i, event in data]


def chrome_trace_json(recorder: TraceRecorder) -> str:
    """The full trace document as a deterministic JSON string."""
    document = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "clock": "simulated (1 sim second = 1e6 trace us)",
            "kernel": dict(sorted(recorder.kernel_stats.items())),
        },
    }
    return json.dumps(document, sort_keys=True, indent=1)


def export_chrome_trace(recorder: TraceRecorder, path: str) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    text = chrome_trace_json(recorder)
    with open(path, "w") as handle:
        handle.write(text)
        handle.write("\n")
    return len(chrome_trace_events(recorder))
