"""Traced, reduced-scale scenario runs for the observability CLI.

The experiment modules (``repro.experiments.*``) sweep many
configurations and average over samples — good for tables, bad for
traces: a trace wants *one* representative run with every subsystem
exercised.  This module builds, per experiment artifact, a small grid
and drives one complete six-step :class:`GridSession` life cycle
through it with tracing enabled, so the exported timeline shows
information-service queries, the image data session, globusrun
startup, guest execution, and teardown on one screen.

Scenarios are deterministic: same name + seed produces a byte-identical
Chrome trace (no wall-clock reads anywhere in the stack — enforced by
simlint rule R2).

Not imported by ``repro.obs`` eagerly: it pulls in the whole model
stack, which the tracer/metrics primitives must not depend on.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.guestos.profile import GuestOsProfile
from repro.obs.chrome import export_chrome_trace
from repro.obs.tracer import TraceRecorder, Tracer
from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["SCENARIOS", "build_scenario", "run_scenario",
           "trace_experiment", "record_experiment"]

#: Experiment artifacts with a traced scenario equivalent.
SCENARIOS = ("figure1", "table1", "table2")

_MB = 1024 * 1024

#: A reduced boot profile so traced runs finish in well under a second
#: of wall time; the *shape* of the timeline matches the full profile.
_FAST_GUEST = GuestOsProfile(
    kernel_read_bytes=2 * _MB,
    scattered_reads=40,
    scattered_read_bytes=32 * 1024,
    boot_cpu_user=0.5,
    boot_cpu_sys=0.5,
    boot_jitter=0.0,
    boot_footprint_bytes=64 * _MB,
)


def _base_grid(sim: Simulation, two_sites: bool, seed: int):
    """A grid with one compute host and image/data servers.

    ``two_sites`` places the servers across the paper's WAN link
    (Table 1's Florida/Northwestern testbed); otherwise everything
    shares one LAN (Table 2's local configurations).
    """
    from repro.core.grid import VirtualGrid

    grid = VirtualGrid(sim=sim, seed=seed)
    grid.add_site("uf")
    server_site = "nw" if two_sites else "uf"
    if two_sites:
        grid.add_site("nw")
    grid.add_compute_host("compute1", site="uf")
    grid.add_image_server("images1", site=server_site)
    grid.publish_image("images1", "rh72", 256 * _MB, warm_state_mb=64)
    grid.add_data_server("data1", site=server_site)
    grid.add_user("ana")
    return grid


def build_scenario(name: str, sim: Simulation, seed: int = 0):
    """The grid, session config and workload for one scenario.

    Returns ``(grid, config, app)``.
    """
    from repro.middleware.session import SessionConfig
    from repro.workloads.applications import synthetic_compute

    if name == "table2":
        # Startup-time artifact: warm restore over a proxied LAN mount,
        # the configuration the paper's Table 2 shows winning.
        grid = _base_grid(sim, two_sites=False, seed=seed)
        config = SessionConfig(user="ana", image="rh72",
                               image_access="pvfs", start_mode="restore",
                               guest_profile=_FAST_GUEST)
        app = synthetic_compute(5.0, name="startup-probe")
    elif name == "table1":
        # Macrobenchmark artifact: cold boot across the WAN, data
        # served from the user's home institution.
        grid = _base_grid(sim, two_sites=True, seed=seed)
        config = SessionConfig(user="ana", image="rh72",
                               image_access="pvfs", start_mode="boot",
                               guest_profile=_FAST_GUEST)
        app = synthetic_compute(30.0, name="macrobench")
    elif name == "figure1":
        # Microbenchmark artifact: plain NFS image access, short
        # compute probes on an otherwise idle VM.
        grid = _base_grid(sim, two_sites=False, seed=seed)
        config = SessionConfig(user="ana", image="rh72",
                               image_access="nfs", start_mode="boot",
                               guest_profile=_FAST_GUEST)
        app = synthetic_compute(2.0, name="microbench-probe")
    else:
        raise SimulationError("unknown scenario %r (choose from %s)"
                              % (name, ", ".join(SCENARIOS)))
    return grid, config, app


def run_scenario(name: str, seed: int = 0,
                 tracer: Optional[Tracer] = None,
                 recorder_interval: Optional[float] = None,
                 recorder_capacity: int = 512, shards: int = 1,
                 strict_shards: bool = False):
    """Drive one traced session life cycle; returns the Simulation.

    The run covers all six steps of Section 4's life cycle: establish
    (steps 1-5), application execution (step 6), a user-data sync and
    an orderly shutdown.  With ``recorder_interval`` set, a
    :class:`~repro.obs.recorder.FlightRecorder` heartbeats alongside
    the run and the return value becomes ``(sim, grid, recorder)``.

    ``shards`` is validated but cannot split these worlds: every
    scenario builds one entangled kernel (shared flow engine, NFS
    object graph spanning the sites), so the shard plan is the
    degenerate single group and every value takes the identical inline
    path — trace and flight-record artifacts are byte-identical by
    construction (``shards > 1`` says so on stderr, or raises under
    ``strict_shards``).  The decomposable multi-site scenario lives in
    :mod:`repro.experiments.fleet`.
    """
    from repro.simulation.sharded import single_group_shards

    single_group_shards(shards, "scenario worlds are one kernel",
                        strict=strict_shards)
    sim = Simulation(seed=seed, tracer=tracer)
    grid, config, app = build_scenario(name, sim, seed=seed)
    recorder = None
    if recorder_interval is not None:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(sim, interval=recorder_interval,
                                  capacity=recorder_capacity)
        recorder.start()
    # Partition-aware tracers (the shard-affinity sanitizer) learn the
    # host -> partition map once the topology exists; duck-typed so the
    # runner needs no analysis imports.
    bind_grid = getattr(tracer, "bind_grid", None)
    if bind_grid is not None:
        bind_grid(grid)
    session = grid.new_session(config)

    def drive(_sim):
        yield from session.establish()
        yield from session.run_application(app)
        yield from session.shutdown()

    grid.run(drive(sim), name="scenario.%s" % name)
    if recorder is not None:
        recorder.stop()
        return sim, grid, recorder
    return sim


def trace_experiment(name: str, out_path: str, seed: int = 0,
                     shards: int = 1,
                     strict_shards: bool = False) -> Tuple[Simulation, int]:
    """Run a scenario under a :class:`TraceRecorder` and export it.

    Returns ``(sim, number_of_trace_events_written)``.
    """
    recorder = TraceRecorder()
    sim = run_scenario(name, seed=seed, tracer=recorder, shards=shards,
                       strict_shards=strict_shards)
    count = export_chrome_trace(recorder, out_path)
    return sim, count


def record_experiment(name: str, interval: float = 1.0, seed: int = 0,
                      capacity: int = 512, shards: int = 1,
                      strict_shards: bool = False):
    """Replay a scenario with a flight recorder heartbeating alongside.

    Returns ``(sim, grid, recorder)``.  Attaching the recorder cannot
    change the run: the heartbeat draws no randomness and mutates no
    model state, so every experiment artifact stays byte-identical to
    the unrecorded run.
    """
    return run_scenario(name, seed=seed, recorder_interval=interval,
                        recorder_capacity=capacity, shards=shards,
                        strict_shards=strict_shards)
