"""Dynamic policy: tighter caps while the owner is at the console.

The constraint language allows ``limit cpu 0.2 when interactive`` —
"it allows a provider to limit the impact that a remote user may have
on resources available for a local user (e.g. in a desktop executing
interactive applications)" (Section 2.2).  The daemon below watches the
host CPU for local (non-VM) activity and switches the VMs' aggregate
cap between the normal and the interactive budget, splitting it among
the VM groups by weight.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.scheduling.constraints import OwnerConstraints
from repro.simulation.kernel import Interrupt, Process, SimulationError
from repro.simulation.monitor import TimeSeriesMonitor

__all__ = ["InteractivePolicyDaemon"]


class InteractivePolicyDaemon:
    """Applies an owner's cap, tightened while local work is present."""

    def __init__(self, cpu: ProcessorSharingCpu,
                 groups: List[TaskGroup], constraints: OwnerConstraints,
                 poll_interval: float = 0.5):
        if not groups:
            raise SimulationError("no VM groups to police")
        if poll_interval <= 0:
            raise SimulationError("poll interval must be positive")
        if constraints.cpu_cap is None:
            raise SimulationError("constraints carry no cpu cap")
        self.sim = cpu.sim
        self.cpu = cpu
        self.groups = list(groups)
        self.constraints = constraints
        self.poll_interval = float(poll_interval)
        self.transitions = 0
        self.cap_in_force = TimeSeriesMonitor("policy.cap",
                                              window=3600.0)
        self._interactive: Optional[bool] = None
        self._proc: Optional[Process] = None

    def _local_activity(self) -> bool:
        """Is any local (ungrouped, non-VM) task runnable on the host?"""
        return any(task.group is None for task in self.cpu.active_tasks)

    def _apply(self, interactive: bool) -> None:
        cap = self.constraints.effective_cap(interactive)
        total_weight = sum(group.weight for group in self.groups)
        for group in self.groups:
            share = cap * group.weight / total_weight
            self.cpu.update_group(group, max_rate=share * self.cpu.speed)
        self.cap_in_force.record(self.sim.now, cap)
        if self._interactive is not None \
                and interactive != self._interactive:
            self.transitions += 1
        self._interactive = interactive

    def start(self) -> None:
        """Begin policing (the normal cap is applied immediately)."""
        if self._proc is not None:
            raise SimulationError("daemon already running")
        self._apply(self._local_activity())
        self._proc = self.sim.spawn(self._run(), name="policy-daemon")

    def stop(self) -> None:
        """Stop policing and lift the caps."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="daemon-stop")
        self._proc = None
        for group in self.groups:
            self.cpu.update_group(group, clear_max_rate=True)

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.poll_interval)
                interactive = self._local_activity()
                if interactive != self._interactive:
                    self._apply(interactive)
        except Interrupt:
            return

    @property
    def interactive(self) -> Optional[bool]:
        """Current console-activity verdict (None before start)."""
        return self._interactive

    def __repr__(self) -> str:
        return "<InteractivePolicyDaemon groups=%d transitions=%d>" % (
            len(self.groups), self.transitions)
