"""The resource-owner constraint language.

A small declarative language in which a provider states how much of
their machine grid VMs may consume.  Example::

    # Owner policy for desktop pc07
    limit cpu 0.5
    limit cpu 0.2 when interactive
    reserve slice 30ms period 100ms
    weight 2

Directives:

``limit cpu <fraction>``
    Cap the aggregate CPU share of grid VMs (0 < fraction <= 1).
``limit cpu <fraction> when interactive``
    A tighter cap that applies while the owner is at the console —
    the paper's desktop scenario ("limit the impact that a remote user
    may have on resources available for a local user").
``reserve slice <time> period <time>``
    Ask for per-VM periodic real-time reservations; times accept the
    suffixes ``ms`` and ``s``.
``weight <n>``
    Proportional-share weight of the grid VM class relative to local
    work (default 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simulation.kernel import SimulationError

__all__ = ["OwnerConstraints", "ConstraintSyntaxError", "parse_constraints"]


class ConstraintSyntaxError(SimulationError):
    """The constraint text does not parse."""


@dataclass(frozen=True)
class OwnerConstraints:
    """Parsed owner policy."""

    cpu_cap: Optional[float] = None
    interactive_cpu_cap: Optional[float] = None
    slice_seconds: Optional[float] = None
    period_seconds: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self):
        for cap in (self.cpu_cap, self.interactive_cpu_cap):
            if cap is not None and not 0.0 < cap <= 1.0:
                raise ConstraintSyntaxError("cpu caps must be in (0, 1]")
        if (self.slice_seconds is None) != (self.period_seconds is None):
            raise ConstraintSyntaxError("slice and period come together")
        if self.slice_seconds is not None:
            if self.slice_seconds <= 0 or self.period_seconds <= 0:
                raise ConstraintSyntaxError("slice/period must be positive")
            if self.slice_seconds > self.period_seconds:
                raise ConstraintSyntaxError("slice cannot exceed period")
        if self.weight <= 0:
            raise ConstraintSyntaxError("weight must be positive")

    @property
    def has_reservation(self) -> bool:
        """True when the owner asked for periodic real-time slices."""
        return self.slice_seconds is not None

    def effective_cap(self, interactive: bool) -> Optional[float]:
        """The cap in force given console activity."""
        if interactive and self.interactive_cpu_cap is not None:
            return self.interactive_cpu_cap
        return self.cpu_cap


def _parse_time(token: str) -> float:
    try:
        if token.endswith("ms"):
            return float(token[:-2]) / 1000.0
        if token.endswith("s"):
            return float(token[:-1])
        return float(token)
    except ValueError:
        raise ConstraintSyntaxError("bad time value %r" % token)


def parse_constraints(text: str) -> OwnerConstraints:
    """Parse owner-policy text into :class:`OwnerConstraints`."""
    cpu_cap = None
    interactive_cap = None
    slice_seconds = None
    period_seconds = None
    weight = 1.0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        try:
            if head == "limit":
                if len(tokens) < 3 or tokens[1] != "cpu":
                    raise ConstraintSyntaxError("expected 'limit cpu <f>'")
                value = float(tokens[2])
                if len(tokens) == 3:
                    cpu_cap = value
                elif tokens[3:] == ["when", "interactive"]:
                    interactive_cap = value
                else:
                    raise ConstraintSyntaxError(
                        "trailing tokens %r" % tokens[3:])
            elif head == "reserve":
                if (len(tokens) != 5 or tokens[1] != "slice"
                        or tokens[3] != "period"):
                    raise ConstraintSyntaxError(
                        "expected 'reserve slice <t> period <t>'")
                slice_seconds = _parse_time(tokens[2])
                period_seconds = _parse_time(tokens[4])
            elif head == "weight":
                if len(tokens) != 2:
                    raise ConstraintSyntaxError("expected 'weight <n>'")
                weight = float(tokens[1])
            else:
                raise ConstraintSyntaxError("unknown directive %r" % head)
        except ConstraintSyntaxError as exc:
            raise ConstraintSyntaxError("line %d: %s" % (lineno, exc))
        except ValueError:
            raise ConstraintSyntaxError("line %d: bad number in %r"
                                        % (lineno, line))
    return OwnerConstraints(cpu_cap=cpu_cap,
                            interactive_cpu_cap=interactive_cap,
                            slice_seconds=slice_seconds,
                            period_seconds=period_seconds,
                            weight=weight)
