"""Compiling owner constraints into enforceable schedules.

Section 3.2: "the resource owner's constraints and the constraints of
the virtual machines that the users require could be compiled into a
real-time schedule, mapping each virtual machine into one or more
periodic real-time tasks ... Another possibility is to compile into
proportions for a proportional share scheduler."

:func:`compile_constraints` takes the owner policy and the set of VM
names and produces a :class:`CompiledSchedule` in one of two shapes:

* ``periodic`` — one (slice, period) reservation per VM, feasibility
  checked against the EDF utilization bound and the owner's cap;
* ``proportional`` — per-VM weights plus an aggregate cap, for the
  lottery / WFQ / PS-group enforcement mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.scheduling.constraints import OwnerConstraints
from repro.simulation.kernel import SimulationError

__all__ = ["InfeasibleSchedule", "CompiledSchedule", "compile_constraints"]


class InfeasibleSchedule(SimulationError):
    """The requested reservations cannot fit under the owner's cap."""


@dataclass(frozen=True)
class CompiledSchedule:
    """The enforcement-ready form of an owner policy."""

    kind: str                                     # "periodic"|"proportional"
    #: periodic: vm -> (slice, period); proportional: vm -> weight.
    entries: Dict[str, Tuple]
    #: Aggregate CPU fraction granted to grid VMs.
    utilization: float
    #: Cap in force when the owner is at the console.
    interactive_utilization: float

    def describe(self) -> str:
        """Short form advertised in a VM future's ``scheduling`` field."""
        if self.kind == "periodic":
            any_entry = next(iter(self.entries.values()))
            return ("periodic slice=%.3fs period=%.3fs util=%.2f"
                    % (any_entry[0], any_entry[1], self.utilization))
        return "proportional-share util=%.2f" % self.utilization


def compile_constraints(constraints: OwnerConstraints,
                        vm_names: Sequence[str],
                        cores: int = 1) -> CompiledSchedule:
    """Compile an owner policy for a concrete set of VMs.

    Raises :class:`InfeasibleSchedule` when the per-VM reservations sum
    past the owner's cap (or past the machine itself).
    """
    if not vm_names:
        raise SimulationError("no VMs to schedule")
    if len(set(vm_names)) != len(vm_names):
        raise SimulationError("duplicate VM names")
    cap = constraints.cpu_cap if constraints.cpu_cap is not None else 1.0
    budget = cap * cores
    interactive = constraints.effective_cap(interactive=True)
    interactive_budget = (interactive if interactive is not None
                          else cap) * cores

    if constraints.has_reservation:
        per_vm = constraints.slice_seconds / constraints.period_seconds
        total = per_vm * len(vm_names)
        if total > budget + 1e-12:
            raise InfeasibleSchedule(
                "%d VMs at %.2f utilization each need %.2f, cap is %.2f"
                % (len(vm_names), per_vm, total, budget))
        entries = {name: (constraints.slice_seconds,
                          constraints.period_seconds)
                   for name in vm_names}
        return CompiledSchedule("periodic", entries, total,
                                min(total, interactive_budget))

    weight = constraints.weight
    entries = {name: (weight,) for name in vm_names}
    return CompiledSchedule("proportional", entries, budget,
                            interactive_budget)
