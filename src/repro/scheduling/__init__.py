"""Resource control: scheduling VMs under resource-owner constraints.

Section 3.2 (resource perspective): "Our approach to the complex and
varying constraints of resource owners is to use a specialized language
for specifying the constraints, and to use a toolchain for enforcing
constraints specified in the language when scheduling virtual machines
on the host operating system."

* :mod:`~repro.scheduling.constraints` — the owner-constraint language;
* :mod:`~repro.scheduling.compiler` — constraints -> real-time schedule
  or proportional shares, with feasibility checking;
* :mod:`~repro.scheduling.realtime` — periodic (slice, period) schedule
  enforcement (the "kernel-level scheduler extensions" route);
* :mod:`~repro.scheduling.lottery` — lottery scheduling [Waldspurger];
* :mod:`~repro.scheduling.wfq` — weighted fair queueing [Demers et al.];
* :mod:`~repro.scheduling.modulation` — coarse-grain SIGSTOP/SIGCONT
  priority modulation "under the regular linux scheduler".
"""

from repro.scheduling.compiler import (
    CompiledSchedule,
    InfeasibleSchedule,
    compile_constraints,
)
from repro.scheduling.constraints import OwnerConstraints, parse_constraints
from repro.scheduling.interactive import InteractivePolicyDaemon
from repro.scheduling.lottery import LotteryScheduler
from repro.scheduling.modulation import DutyCycleModulator
from repro.scheduling.realtime import PeriodicEnforcer
from repro.scheduling.wfq import WfqScheduler

__all__ = [
    "CompiledSchedule",
    "DutyCycleModulator",
    "InfeasibleSchedule",
    "InteractivePolicyDaemon",
    "LotteryScheduler",
    "OwnerConstraints",
    "PeriodicEnforcer",
    "WfqScheduler",
    "compile_constraints",
    "parse_constraints",
]
