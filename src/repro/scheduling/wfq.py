"""Weighted fair queueing over VM task groups.

The deterministic proportional-share alternative (Demers, Keshav &
Shenker, cited by the paper): each group carries a virtual finish time;
every quantum the scheduler grants the group with the smallest one and
advances it by ``quantum / weight``.  Long-run shares converge to the
weight proportions with far less short-term variance than a lottery.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import Interrupt, Process, SimulationError

__all__ = ["WfqScheduler"]


class WfqScheduler:
    """Virtual-time weighted fair queueing of VM groups."""

    def __init__(self, cpu: ProcessorSharingCpu,
                 weights: Dict[TaskGroup, float], quantum: float = 0.1):
        if not weights:
            raise SimulationError("no groups to schedule")
        if any(w <= 0 for w in weights.values()):
            raise SimulationError("weights must be positive")
        if quantum <= 0:
            raise SimulationError("quantum must be positive")
        self.sim = cpu.sim
        self.cpu = cpu
        self.weights = dict(weights)
        self.quantum = float(quantum)
        self.finish_times: Dict[TaskGroup, float] = {
            group: 0.0 for group in weights}
        self.grants: Dict[TaskGroup, int] = {group: 0 for group in weights}
        self._proc: Optional[Process] = None

    def expected_share(self, group: TaskGroup) -> float:
        """Weight proportion = long-run CPU share."""
        return self.weights[group] / sum(self.weights.values())

    def observed_share(self, group: TaskGroup) -> float:
        """Fraction of quanta granted so far."""
        total = sum(self.grants.values())
        return self.grants[group] / total if total else 0.0

    def _next(self) -> TaskGroup:
        return min(self.finish_times, key=lambda g: (self.finish_times[g],
                                                     g.name))

    def start(self) -> None:
        """Begin granting quanta."""
        if self._proc is not None:
            raise SimulationError("WFQ already running")
        for group in self.weights:
            self.cpu.update_group(group, max_rate=0.0)
        self._proc = self.sim.spawn(self._run(), name="wfq")

    def stop(self) -> None:
        """Stop and reopen every group."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="wfq-stop")
        self._proc = None
        for group in self.weights:
            self.cpu.update_group(group, clear_max_rate=True)

    def _run(self):
        current: Optional[TaskGroup] = None
        try:
            while True:
                choice = self._next()
                self.finish_times[choice] += self.quantum \
                    / self.weights[choice]
                self.grants[choice] += 1
                if choice is not current:
                    if current is not None:
                        self.cpu.update_group(current, max_rate=0.0)
                    self.cpu.update_group(choice, clear_max_rate=True)
                    current = choice
                yield self.sim.timeout(self.quantum)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return "<WfqScheduler groups=%d>" % len(self.weights)
