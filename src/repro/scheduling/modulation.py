"""Coarse-grain SIGSTOP/SIGCONT priority modulation.

The paper's cheapest enforcement option: "For a coarse-grain schedule,
we could even modulate the priority of virtual machine processes under
the regular linux scheduler, using SIGSTOP/SIGCONT signal delivery."

The modulator stops and continues the VMM process on a coarse period to
approximate a duty cycle.  Compared with the periodic real-time
enforcer it uses second-scale periods (signals are cheap but crude), so
the VM sees long freezes — fine for batch work, bad for interactivity.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import Interrupt, Process, SimulationError

__all__ = ["DutyCycleModulator"]


class DutyCycleModulator:
    """SIGSTOP/SIGCONT duty-cycling of one VM group."""

    def __init__(self, cpu: ProcessorSharingCpu, group: TaskGroup,
                 duty: float = 0.5, period: float = 1.0,
                 signal_cost: float = 1e-4):
        if not 0.0 < duty <= 1.0:
            raise SimulationError("duty must be in (0, 1]")
        if period <= 0:
            raise SimulationError("period must be positive")
        if signal_cost < 0 or signal_cost >= duty * period:
            raise SimulationError(
                "signal_cost must be in [0, duty*period): the run window "
                "must outlast the signal delivery")
        self.sim = cpu.sim
        self.cpu = cpu
        self.group = group
        self.duty = float(duty)
        self.period = float(period)
        self.signal_cost = float(signal_cost)
        self.signals_sent = 0
        self._proc: Optional[Process] = None

    def set_duty(self, duty: float) -> None:
        """Dynamic resource control: adjust the duty cycle on the fly."""
        if not 0.0 < duty <= 1.0:
            raise SimulationError("duty must be in (0, 1]")
        if self.signal_cost >= duty * self.period:
            raise SimulationError("duty too small for the signal cost")
        self.duty = float(duty)

    def start(self) -> None:
        """Begin duty-cycling."""
        if self._proc is not None:
            raise SimulationError("modulator already running")
        self._proc = self.sim.spawn(self._run(),
                                    name="sigstop-" + self.group.name)

    def stop(self) -> None:
        """Stop modulating; the VM runs unrestricted again."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="modulator-stop")
        self._proc = None
        self.cpu.update_group(self.group, clear_max_rate=True)

    def _run(self):
        try:
            while True:
                run_for = self.duty * self.period
                # SIGCONT: the VMM process becomes runnable.
                self.cpu.update_group(self.group, clear_max_rate=True)
                self.signals_sent += 1
                yield self.sim.timeout(max(run_for - self.signal_cost, 0.0))
                if self.duty >= 1.0:
                    continue
                # SIGSTOP: the whole VM freezes.
                self.cpu.update_group(self.group, max_rate=0.0)
                self.signals_sent += 1
                yield self.sim.timeout(self.period - run_for)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return "<DutyCycleModulator %s duty=%.2f period=%.2fs>" % (
            self.group.name, self.duty, self.period)
