"""Lottery scheduling of VM task groups.

Waldspurger & Weihl's probabilistic proportional-share scheduler, one of
the paper's candidate enforcement mechanisms: each VM holds tickets; at
every quantum a lottery picks the group allowed to run.  Expected share
converges to the ticket proportion; variance decays with the number of
draws.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import Interrupt, Process, SimulationError

__all__ = ["LotteryScheduler"]


class LotteryScheduler:
    """Quantum-by-quantum ticket lottery over VM groups."""

    def __init__(self, cpu: ProcessorSharingCpu,
                 tickets: Dict[TaskGroup, int], quantum: float = 0.1,
                 rng: Optional[random.Random] = None):
        if not tickets:
            raise SimulationError("no ticket holders")
        if any(t <= 0 for t in tickets.values()):
            raise SimulationError("tickets must be positive")
        if quantum <= 0:
            raise SimulationError("quantum must be positive")
        self.sim = cpu.sim
        self.cpu = cpu
        self.tickets = dict(tickets)
        self.quantum = float(quantum)
        self.rng = rng if rng is not None \
            else self.sim.streams.stream("lottery")
        self.wins: Dict[TaskGroup, int] = {g: 0 for g in tickets}
        self.draws = 0
        self._proc: Optional[Process] = None

    def expected_share(self, group: TaskGroup) -> float:
        """Ticket proportion = expected CPU share."""
        return self.tickets[group] / sum(self.tickets.values())

    def observed_share(self, group: TaskGroup) -> float:
        """Fraction of lotteries this group has won so far."""
        return self.wins[group] / self.draws if self.draws else 0.0

    def set_tickets(self, group: TaskGroup, tickets: int) -> None:
        """Dynamic resource-control: re-ticket a VM at run time."""
        if tickets <= 0:
            raise SimulationError("tickets must be positive")
        if group not in self.tickets:
            raise SimulationError("unknown group %s" % group.name)
        self.tickets[group] = tickets

    def _draw(self) -> TaskGroup:
        total = sum(self.tickets.values())
        ticket = self.rng.randrange(total)
        cursor = 0
        for group, count in self.tickets.items():
            cursor += count
            if ticket < cursor:
                return group
        raise AssertionError("lottery fell off the end")  # pragma: no cover

    def start(self) -> None:
        """Begin holding lotteries every quantum."""
        if self._proc is not None:
            raise SimulationError("lottery already running")
        for group in self.tickets:
            self.cpu.update_group(group, max_rate=0.0)
        self._proc = self.sim.spawn(self._run(), name="lottery")

    def stop(self) -> None:
        """Stop and reopen every group."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="lottery-stop")
        self._proc = None
        for group in self.tickets:
            self.cpu.update_group(group, clear_max_rate=True)

    def _run(self):
        winner: Optional[TaskGroup] = None
        try:
            while True:
                choice = self._draw()
                self.draws += 1
                self.wins[choice] += 1
                if choice is not winner:
                    if winner is not None:
                        self.cpu.update_group(winner, max_rate=0.0)
                    self.cpu.update_group(choice, clear_max_rate=True)
                    winner = choice
                yield self.sim.timeout(self.quantum)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return "<LotteryScheduler draws=%d groups=%d>" % (self.draws,
                                                          len(self.tickets))
