"""Periodic real-time enforcement of compiled reservations.

The "kernel-level scheduler extensions" route (Section 3.2): each VM's
task group is opened for ``slice`` seconds out of every ``period``,
giving it exactly ``slice/period`` of a core with bounded latency.  The
enforcer staggers the VMs' windows across the period so their slices do
not collide, and — like a real-time scheduler class — gives the VM
*priority* over ordinary timesharing work while its window is open (a
reservation is useless if best-effort load can still steal half of it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import Process, SimulationError

__all__ = ["PeriodicEnforcer"]


class PeriodicEnforcer:
    """Toggles VM groups according to a periodic real-time schedule."""

    def __init__(self, cpu: ProcessorSharingCpu,
                 assignments: Dict[TaskGroup, Tuple[float, float]]):
        if not assignments:
            raise SimulationError("nothing to enforce")
        for group, (slice_s, period_s) in assignments.items():
            if not 0 < slice_s <= period_s:
                raise SimulationError("bad reservation for %s" % group.name)
        self.sim = cpu.sim
        self.cpu = cpu
        self.assignments = dict(assignments)
        self._procs: List[Process] = []
        self._running = False
        #: Per-group count of completed periods (for tests/monitoring).
        self.periods_served: Dict[TaskGroup, int] = {
            group: 0 for group in assignments}

    def start(self) -> None:
        """Begin enforcement (groups are closed outside their windows)."""
        if self._running:
            raise SimulationError("enforcer already running")
        self._running = True
        offset = 0.0
        for group, (slice_s, period_s) in self.assignments.items():
            self.cpu.update_group(group, max_rate=0.0)
            self._procs.append(self.sim.spawn(
                self._drive(group, slice_s, period_s, offset),
                name="rt-enforcer-" + group.name))
            offset += slice_s

    def stop(self) -> None:
        """End enforcement and reopen all groups."""
        self._running = False
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt(cause="enforcer-stop")
        self._procs = []
        for group in self.assignments:
            self.cpu.update_group(group, clear_max_rate=True)

    #: Weight boost granting effective real-time priority in-window.
    PRIORITY_WEIGHT = 1000.0

    def _drive(self, group: TaskGroup, slice_s: float, period_s: float,
               offset: float):
        from repro.simulation.kernel import Interrupt

        base_weight = group.weight
        try:
            if offset:
                yield self.sim.timeout(offset)
            while self._running:
                self.cpu.update_group(group, clear_max_rate=True,
                                      weight=base_weight
                                      * self.PRIORITY_WEIGHT)
                yield self.sim.timeout(slice_s)
                self.cpu.update_group(group, max_rate=0.0,
                                      weight=base_weight)
                self.periods_served[group] += 1
                yield self.sim.timeout(period_s - slice_s)
        except Interrupt:
            self.cpu.update_group(group, weight=base_weight)
            return

    def expected_share(self, group: TaskGroup) -> float:
        """The reservation's nominal CPU fraction."""
        slice_s, period_s = self.assignments[group]
        return slice_s / period_s

    def __repr__(self) -> str:
        return "<PeriodicEnforcer groups=%d running=%s>" % (
            len(self.assignments), self._running)
