"""The virtual machine: lifecycle, guest OS, and virtualization taxes.

A :class:`VirtualMachine` is simultaneously:

* a *lifecycle object* — defined / starting / running / suspended /
  migrating / terminated, driven by the VMM and the grid middleware;
* a *machine interface* for its guest operating system — the same
  interface a physical host offers, but one that dilates CPU demand with
  trap-and-emulate costs and competes for the host CPU as a single
  scheduling entity (a :class:`~repro.hardware.cpu.TaskGroup`);
* a bundle of *state files* — disk image/diff plus a memory state file —
  which is what makes VM grid computing possible: "entire computing
  environments can be represented as data".
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.guestos.costs import OsCosts
from repro.guestos.interface import MachineInterface
from repro.guestos.kernel import OperatingSystem
from repro.guestos.profile import GuestOsProfile
from repro.hardware.cpu import CpuTask, TaskGroup
from repro.simulation.kernel import Event, Interrupt, SimulationError
from repro.storage.localfs import LocalFileSystem
from repro.vmm.costs import VmmCosts
from repro.vmm.disk_image import VirtualDisk
from repro.workloads.applications import KernelEventRates

__all__ = ["VmConfig", "VmState", "VirtualMachine", "VmCrashed"]


class VmCrashed(SimulationError):
    """The VM died (host failure, kill -9 of the VMM) mid-operation."""


class VmState(enum.Enum):
    """Lifecycle states (Section 4: shutdown/hibernate/restore/migrate)."""

    DEFINED = "defined"
    STARTING = "starting"
    RUNNING = "running"
    SUSPENDED = "suspended"
    MIGRATING = "migrating"
    TERMINATED = "terminated"


@dataclass(frozen=True)
class VmConfig:
    """Virtual hardware parameters (customizable per user, Section 2.2)."""

    name: str
    memory_mb: int = 128
    vcpus: int = 1
    guest_profile: GuestOsProfile = field(default_factory=GuestOsProfile)

    def __post_init__(self):
        if self.memory_mb <= 0:
            raise SimulationError("memory_mb must be positive")
        if self.vcpus < 1:
            raise SimulationError("vcpus must be >= 1")

    @property
    def memory_bytes(self) -> int:
        """Guest physical memory (also the memory-state file size)."""
        return self.memory_mb * 1024 * 1024


class VirtualMachine(MachineInterface):
    """One dynamic VM instance on some host."""

    def __init__(self, vmm, config: VmConfig, vdisk: VirtualDisk,
                 rng: Optional[random.Random] = None,
                 owner: str = "nobody"):
        self.sim = vmm.sim
        self.vmm = vmm
        self.config = config
        self.name = config.name
        self.owner = owner
        self.costs: VmmCosts = vmm.costs
        self.os_costs = OsCosts()
        self.state = VmState.DEFINED
        self.vdisk = vdisk
        self.rng = rng if rng is not None \
            else self.sim.streams.stream("vm/" + config.name)
        self.group = TaskGroup(
            config.name,
            vcpus=config.vcpus,
            extra_switch_cost=self.costs.world_switch,
            member_switch_cost=self.costs.guest_context_switch,
            member_quantum=self.os_costs.quantum,
        )
        guest_cache = min(config.memory_bytes * 6 // 10,
                          config.memory_bytes)
        self._guest_fs = LocalFileSystem(
            self.sim, vdisk, cache_bytes=guest_cache,
            name=config.name + ".guestfs")
        self.guest_os = OperatingSystem(
            self, name=config.guest_profile.name,
            profile=config.guest_profile, rng=self.rng)
        self.guest_os.mount("/", self._guest_fs)
        self.guest_os.install()
        #: Network identity assigned by DHCP or a tunnel (middleware).
        self.address: Optional[str] = None
        #: Fires (and is replaced) whenever the VM lands on a new host.
        self._rebind_event: Event = Event(self.sim)
        #: Accumulated sys time charged by restores/migrations, drained
        #: into the next process accounting.
        self._pending_sys = 0.0
        #: Processes currently executing guest compute (crash targets).
        #: Dict-as-ordered-set: crash() interrupts them in submission
        #: order, keeping the event queue reproducible.
        self._computations: Dict = {}

    # -- MachineInterface -------------------------------------------------------

    @property
    def is_virtual(self) -> bool:
        return True

    @property
    def root_fs(self) -> LocalFileSystem:
        return self._guest_fs

    @property
    def host_cpu(self):
        """The CPU of whatever host currently runs this VM."""
        return self.vmm.machine.cpu

    def run_compute(self, pname: str, user_seconds: float,
                    sys_seconds: float, rates: KernelEventRates):
        """Execute guest CPU demand with trap-and-emulate dilation.

        Observed user time grows with the guest's page-fault and timer
        rates; observed sys time grows by the privileged-instruction
        dilation factor plus per-syscall trap costs.  The combined demand
        runs on the host CPU inside the VM's task group; if the VM
        migrates mid-computation the remaining work moves with it.
        """
        if self.state not in (VmState.RUNNING, VmState.STARTING,
                              VmState.MIGRATING, VmState.SUSPENDED):
            # SUSPENDED is allowed: the demand queues on the frozen task
            # group (rate zero) and proceeds when the VM resumes — the
            # behaviour an interactive user experiences as a long stall.
            raise SimulationError("%s is %s, cannot execute"
                                  % (self.name, self.state.value))
        timer_hz = self.config.guest_profile.timer_hz
        user_obs = user_seconds * self.costs.user_dilation_factor(
            rates.pagefaults_per_sec, timer_hz)
        sys_obs = (sys_seconds * self.costs.sys_dilation
                   + user_seconds * rates.syscalls_per_sec
                   * self.costs.syscall_trap)
        # Device-emulation CPU owed by recent virtual disk activity.
        sys_obs += self.vdisk.drain_pending_io_cpu()
        sys_obs += self._drain_pending_sys()
        remaining = user_obs + sys_obs
        me = self.sim.active_process
        if me is not None:
            self._computations[me] = None
        try:
            while remaining > 1e-12:
                cpu = self.host_cpu
                task = CpuTask("%s@%s" % (pname, self.name),
                               work=remaining, group=self.group)
                cpu.submit(task)
                rebind = self._rebind_event
                try:
                    yield self.sim.any_of([task.done, rebind])
                except Interrupt as interrupt:
                    if not task.done.triggered:
                        cpu.cancel(task)
                    if interrupt.cause == "vm-crashed":
                        raise VmCrashed("%s crashed while running %s"
                                        % (self.name, pname))
                    raise
                if task.done.triggered:
                    remaining = 0.0
                else:
                    # Migration landed mid-flight: carry the work along.
                    remaining = cpu.cancel(task)
        finally:
            if me is not None:
                self._computations.pop(me, None)
        return (user_obs, sys_obs)

    def io_sys_seconds(self, nbytes: int, operations: int) -> float:
        """Native I/O path cost plus per-byte device emulation.

        The guest kernel part of this is further dilated when the OS
        charges it through :meth:`run_compute`.
        """
        native = self.os_costs.io_sys_seconds(nbytes, operations)
        return native + nbytes * self.costs.io_emulation_per_byte

    def _drain_pending_sys(self) -> float:
        pending, self._pending_sys = self._pending_sys, 0.0
        return pending

    def charge_sys(self, seconds: float) -> None:
        """Queue host-side CPU debt to fold into guest sys accounting."""
        if seconds < 0:
            raise SimulationError("cannot charge negative time")
        self._pending_sys += seconds

    # -- lifecycle helpers (driven by the VMM and middleware) --------------------

    def _set_state(self, state: VmState) -> None:
        self.state = state

    def freeze(self) -> None:
        """Stop guest progress (suspend/migration prologue)."""
        self.host_cpu.update_group(self.group, max_rate=0.0)

    def unfreeze(self) -> None:
        """Resume guest progress."""
        self.host_cpu.update_group(self.group, clear_max_rate=True)

    @property
    def frozen(self) -> bool:
        """True while the VM's task group is rate-capped to zero."""
        return self.group.max_rate == 0.0

    def crash(self) -> None:
        """Power loss: the VMM process dies, taking the guest with it.

        Every in-flight guest computation observes :class:`VmCrashed`;
        the VM's state files (image/diff on disk, any memory-state file)
        survive — which is why recovery amounts to re-instantiating from
        data, the paper's whole point about VMs-as-files.
        """
        if self.state in (VmState.TERMINATED, VmState.DEFINED):
            raise SimulationError("%s is not running; nothing to crash"
                                  % self.name)
        self._set_state(VmState.TERMINATED)
        self.guest_os.booted = False
        for proc in list(self._computations):
            if proc.is_alive:
                proc.interrupt(cause="vm-crashed")
        self.vmm._evict(self)

    def land_on(self, new_vmm) -> None:
        """Finish a migration: rebind to the destination host.

        In-flight guest computations observe the rebind event, cancel
        their tasks on the old CPU and resubmit on the new one.
        """
        self.vmm = new_vmm
        old_event = self._rebind_event
        self._rebind_event = Event(self.sim)
        old_event.succeed(new_vmm)

    def state_summary(self) -> dict:
        """Everything a grid information service would advertise."""
        return {
            "name": self.name,
            "owner": self.owner,
            "state": self.state.value,
            "host": self.vmm.machine.name,
            "site": self.vmm.machine.site,
            "memory_mb": self.config.memory_mb,
            "address": self.address,
            "disk_mode": self.vdisk.mode,
        }

    def __repr__(self) -> str:
        return "<VirtualMachine %s %s on %s>" % (
            self.name, self.state.value, self.vmm.machine.name)
