"""Live(ish) migration: suspend, transfer state, resume elsewhere.

Section 2.2: "a running virtual machine can be suspended and resumed,
providing a mechanism to migrate a running machine from resource to
resource"; Section 3.1 adds that migration combines image management,
data management and checkpointing while "keeping remote data connections
active".  Because a guest's mounts live inside the guest OS, they follow
the VM untouched — only the VM's own state files move.

The migration sequence:

1. freeze the guest (its CPU tasks stall in place);
2. write the memory-state file on the source host;
3. stage memory state + copy-on-write diff to the destination host;
4. rebind the virtual disk to the destination's view of the base image;
5. start a VMM process on the destination and read the memory state;
6. land the VM: in-flight guest computations hop CPUs, then unfreeze.
"""

from __future__ import annotations

from typing import Optional

from repro.simulation.kernel import SimulationError
from repro.storage.transfer import FileStager
from repro.vmm.disk_image import DiskImage
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import VirtualMachine, VmState

__all__ = ["migrate"]


def migrate(vm: VirtualMachine, dest_vmm: VirtualMachineMonitor,
            stager: FileStager, dest_base_image: DiskImage,
            dest_base_is_remote: bool = False,
            memstate_name: Optional[str] = None):
    """Process generator: move a running VM to another host.

    ``dest_base_image`` is the destination's handle on the same base
    image (a local replica, or the shared image server reached through
    the destination's own mount).  Returns the total migration downtime.
    """
    source_vmm = vm.vmm
    if vm.state is not VmState.RUNNING:
        raise SimulationError("%s is not running; cannot migrate" % vm.name)
    if dest_vmm is source_vmm:
        raise SimulationError("destination is the current host")
    # The destination must be able to back the guest's memory *before*
    # we freeze anything (fail fast, no partial migration).
    dest_budget = dest_vmm.machine.memory_mb * 3 // 4
    dest_resident = dest_vmm.resident_mb
    if dest_resident + vm.config.memory_mb > dest_budget:
        raise SimulationError(
            "%s cannot admit %s: insufficient guest memory budget"
            % (dest_vmm.name, vm.name))
    sim = vm.sim
    start = sim.now
    span = sim.trace.begin(
        "vmm", "migrate %s -> %s" % (source_vmm.machine.name,
                                     dest_vmm.machine.name),
        track=("host:%s" % source_vmm.machine.name, "vm:%s" % vm.name),
        vm=vm.name)
    memstate_name = memstate_name or (vm.name + ".memstate")
    src_fs = source_vmm.host.root_fs
    dst_fs = dest_vmm.host.root_fs
    src_host = source_vmm.machine.name
    dst_host = dest_vmm.machine.name

    # 1-2. Freeze and checkpoint on the source.
    vm._set_state(VmState.MIGRATING)
    vm.freeze()
    yield from src_fs.write(memstate_name, 0, vm.config.memory_bytes,
                            sequential=True)

    # 3. Ship memory state and the copy-on-write diff.
    yield from stager.stage(src_fs, src_host, memstate_name,
                            dst_fs, dst_host)
    if vm.vdisk.mode == "nonpersistent" and vm.vdisk.diff_bytes > 0:
        yield from stager.stage(vm.vdisk.diff_fs, src_host,
                                vm.vdisk.diff_name, dst_fs, dst_host)

    # 4. Repoint the virtual disk at the destination's image access.
    remote_cpu = (dest_vmm.costs.remote_state_cpu_per_byte
                  if dest_base_is_remote else 0.0)
    vm.vdisk.rebind(dest_base_image, dst_fs,
                    remote_cpu_per_byte=remote_cpu)

    # 5. Destination VMM start + memory-state read.
    yield from dest_vmm._vmm_process_start(vm)
    yield from dst_fs.read(memstate_name, 0, vm.config.memory_bytes,
                           sequential=True)

    # 6. Land: rebinding wakes in-flight computations onto the new CPU.
    source_vmm._evict(vm)
    dest_vmm._admit(vm)
    vm.land_on(dest_vmm)
    # Checkpoint the source CPU *while the group is still frozen*: the
    # fluid CPU model advances lazily with the group's current rate cap,
    # so clearing the cap first would retroactively re-rate the frozen
    # gap and let the guest's work progress through its own migration.
    source_vmm.machine.cpu.sync()
    vm.unfreeze()
    vm._set_state(VmState.RUNNING)
    sim.trace.end(span)
    downtime = sim.now - start
    sim.metrics.histogram("vmm.migrate.downtime").observe(downtime)
    return downtime
