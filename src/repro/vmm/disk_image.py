"""Virtual disks: persistent and non-persistent (copy-on-write) images.

A VM's disk is a host file (the paper: "it is possible to completely
represent a VM guest machine by its virtual state, e.g. stored in a
conventional file").  Table 2 distinguishes two modes:

* **persistent** — "an explicit copy of a persistent disk is created in
  the local disk file system of the host before the VM starts up";
  reads and writes then go to that private copy;
* **non-persistent** — "the disk is not explicitly copied upon startup,
  and modifications are stored into a diff file"; reads of unmodified
  blocks go to the (possibly remote, shared, read-only) base image.

:class:`VirtualDisk` exposes the same ``read``/``write`` generator
interface as :class:`repro.hardware.disk.Disk`, so a guest
:class:`~repro.storage.localfs.LocalFileSystem` can sit directly on it.
Because the guest's block placement is not content-tracked, the virtual
disk maps guest accesses onto image offsets with a sequential cursor
(for streaming access) or uniformly at random (for scattered access) —
preserving host-cache behaviour statistically.
"""

from __future__ import annotations

import random
from typing import Optional, Set, Tuple

from repro.simulation.kernel import Simulation, SimulationError
from repro.storage.base import FileSystem, block_span

__all__ = ["DiskImage", "VirtualDisk"]


class DiskImage:
    """A named VM disk image living in some file system."""

    def __init__(self, fs: FileSystem, name: str, size_bytes: int,
                 create: bool = False):
        if size_bytes <= 0:
            raise SimulationError("image size must be positive")
        self.fs = fs
        self.name = name
        self.size_bytes = int(size_bytes)
        if create:
            fs.create(name, size_bytes)
        elif not fs.exists(name):
            raise SimulationError("image %s does not exist" % name)

    def __repr__(self) -> str:
        return "<DiskImage %s %.1fGB>" % (self.name,
                                          self.size_bytes / 1024 ** 3)


class VirtualDisk:
    """A guest-visible disk backed by an image (plus a diff file).

    Parameters
    ----------
    base:
        The (possibly shared/remote) base image.
    mode:
        ``"persistent"`` — ``base`` is the VM's private copy, writes go
        to it; ``"nonpersistent"`` — writes go to a copy-on-write diff
        file in ``diff_fs``.
    diff_fs:
        Host-local file system for the diff file (non-persistent mode).
    remote_cpu_per_byte:
        Host CPU charged per byte fetched from the base image when the
        base lives behind a remote mount (accumulated; the VM folds it
        into observed sys time).
    """

    MODES = ("persistent", "nonpersistent")

    def __init__(self, sim: Simulation, name: str, base: DiskImage,
                 mode: str = "nonpersistent",
                 diff_fs: Optional[FileSystem] = None,
                 rng: Optional[random.Random] = None,
                 remote_cpu_per_byte: float = 0.0):
        if mode not in self.MODES:
            raise SimulationError("unknown disk mode %r" % mode)
        if mode == "nonpersistent" and diff_fs is None:
            raise SimulationError("non-persistent disks need a diff_fs")
        self.sim = sim
        self.name = name
        self.base = base
        self.mode = mode
        self.diff_fs = diff_fs
        self.diff_name = name + ".diff"
        self.rng = rng if rng is not None \
            else sim.streams.stream("vdisk/" + name)
        self.remote_cpu_per_byte = float(remote_cpu_per_byte)
        self.block_size = 65536
        self._written: Set[int] = set()  # simlint: disable=R23  models the copy-on-write diff contents: bounded by the virtual disk's block count, freed with the VM
        self._cursor = 0
        #: Accounting the VM drains into guest sys time.
        self.pending_io_cpu = 0.0
        self.bytes_from_base = 0
        self.bytes_from_diff = 0
        self.bytes_written = 0
        if mode == "nonpersistent":
            self.diff_fs.create(self.diff_name, 0)

    @property
    def size_bytes(self) -> int:
        """The guest-visible disk size."""
        return self.base.size_bytes

    @property
    def diff_bytes(self) -> int:
        """Current size of the copy-on-write diff file."""
        if self.mode != "nonpersistent":
            return 0
        return self.diff_fs.size(self.diff_name)

    # -- address selection -------------------------------------------------------

    def _pick_offset(self, nbytes: int, sequential: bool) -> int:
        limit = max(1, self.size_bytes - nbytes)
        if sequential:
            offset = self._cursor % limit
        else:
            offset = self.rng.randrange(0, limit)
        self._cursor = offset + nbytes
        return offset

    # -- Disk-compatible data path -------------------------------------------------

    def read(self, nbytes: int, sequential: bool = False):
        """Process generator: guest disk read of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError("read size must be non-negative")
        if nbytes == 0:
            return
        offset = self._pick_offset(nbytes, sequential)
        yield from self.read_at(offset, nbytes, sequential)

    def read_at(self, offset: int, nbytes: int, sequential: bool = False):
        """Process generator: read an explicit image byte range."""
        blocks = block_span(offset, nbytes, self.block_size)
        base_run: list = []
        for block in blocks:
            if block in self._written:
                if base_run:
                    yield from self._read_base(base_run, sequential)
                    base_run = []
                # Modified block: served from the diff (or private copy).
                yield from self._read_diff_block(block)
            else:
                base_run.append(block)
        if base_run:
            yield from self._read_base(base_run, sequential)

    def _read_base(self, blocks, sequential: bool):
        offset = blocks[0] * self.block_size
        nbytes = min(len(blocks) * self.block_size,
                     self.base.size_bytes - offset)
        if nbytes <= 0:
            return
        yield from self.base.fs.read(self.base.name, offset, nbytes,
                                     sequential=sequential or len(blocks) > 1)
        self.bytes_from_base += nbytes
        self.pending_io_cpu += nbytes * self.remote_cpu_per_byte

    def _read_diff_block(self, block: int):
        if self.mode == "persistent":
            # Private copy: modified blocks live in the base file itself.
            offset = block * self.block_size
            nbytes = min(self.block_size, self.base.size_bytes - offset)
            yield from self.base.fs.read(self.base.name, offset, nbytes,
                                         sequential=False)
            self.bytes_from_base += nbytes
        else:
            diff_size = self.diff_fs.size(self.diff_name)
            nbytes = min(self.block_size, diff_size)
            if nbytes > 0:
                # The block's latest version sits somewhere in the diff;
                # model it as one block-sized read at a stable position.
                offset = (block * self.block_size) % max(
                    1, diff_size - nbytes + 1)
                yield from self.diff_fs.read(self.diff_name, offset, nbytes,
                                             sequential=False)
            self.bytes_from_diff += nbytes

    def write(self, nbytes: int, sequential: bool = False):
        """Process generator: guest disk write of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError("write size must be non-negative")
        if nbytes == 0:
            return
        offset = self._pick_offset(nbytes, sequential)
        blocks = block_span(offset, nbytes, self.block_size)
        if self.mode == "persistent":
            yield from self.base.fs.write(self.base.name, offset, nbytes,
                                          sequential=sequential)
        else:
            # Copy-on-write: append new versions to the diff file.
            diff_offset = self.diff_fs.size(self.diff_name)
            yield from self.diff_fs.write(self.diff_name, diff_offset,
                                          nbytes, sequential=True)
        self._written.update(blocks)
        self.bytes_written += nbytes

    # -- migration support ----------------------------------------------------------

    def rebind(self, base: DiskImage, diff_fs: Optional[FileSystem],
               remote_cpu_per_byte: Optional[float] = None) -> None:
        """Repoint the disk after the VM moved to another host.

        The caller has already staged the diff file to ``diff_fs``.
        """
        if base.size_bytes != self.base.size_bytes:
            raise SimulationError("cannot rebind to a different-size image")
        self.base = base
        if self.mode == "nonpersistent":
            if diff_fs is None:
                raise SimulationError("non-persistent rebind needs diff_fs")
            if not diff_fs.exists(self.diff_name):
                diff_fs.create(self.diff_name, self.diff_bytes)
            self.diff_fs = diff_fs
        if remote_cpu_per_byte is not None:
            self.remote_cpu_per_byte = float(remote_cpu_per_byte)

    def drain_pending_io_cpu(self) -> float:
        """Return and reset the accumulated remote-state CPU debt."""
        pending, self.pending_io_cpu = self.pending_io_cpu, 0.0
        return pending

    def __repr__(self) -> str:
        return "<VirtualDisk %s %s over %r>" % (self.name, self.mode,
                                                self.base)
