"""The VMM's trap-and-emulate cost model.

The paper's performance story (Section 2.3) is that "virtual machine
monitors incur performance overheads when applications within a VM
execute privileged instructions that must be trapped and emulated.
These are typically issued by kernel code of guest VMs during system
calls, virtual memory handling, context switches and I/O.  User-level
code within VMMs runs directly on hardware".  Every constant below
prices one of those mechanisms; the magnitudes are chosen so that the
reproduced Figure 1 / Table 1 land in the paper's reported bands
(<=10% micro, 1-4% macro) on the simulated Pentium III-era host.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.simulation.kernel import SimulationError

__all__ = ["VmmCosts"]


@dataclass(frozen=True)
class VmmCosts:
    """Per-event virtualization costs, in seconds."""

    #: Extra cost per guest system call (trap + emulate + return).
    syscall_trap: float = 4e-6
    #: Extra cost per guest page fault / shadow page table update.
    pagefault_trap: float = 2.5e-5
    #: Extra cost per guest timer interrupt (every tick is trapped).
    timer_trap: float = 5e-6
    #: Multiplier on guest kernel (sys) execution time: privileged
    #: instruction emulation makes kernel code several times slower.
    sys_dilation: float = 3.0
    #: One world switch: saving/restoring the full virtualization context
    #: when the host scheduler preempts the VMM process.
    world_switch: float = 2e-4
    #: One emulated guest context switch (CR3 writes etc. trapped).
    guest_context_switch: float = 3e-5
    #: VMM CPU per byte moved through an emulated I/O device.
    io_emulation_per_byte: float = 6e-9
    #: Host kernel + VMM CPU per byte when VM state is fetched through a
    #: remote (NFS/PVFS) mount rather than the local file system.
    remote_state_cpu_per_byte: float = 2.5e-8
    #: Fixed VMM process start cost (exec, license check, device setup).
    start_seconds: float = 0.8
    #: Guest physical memory allocate/zero/map cost per MB at power-on.
    memory_init_per_mb: float = 0.004

    def __post_init__(self):
        values = (self.syscall_trap, self.pagefault_trap, self.timer_trap,
                  self.world_switch, self.guest_context_switch,
                  self.io_emulation_per_byte, self.remote_state_cpu_per_byte,
                  self.start_seconds, self.memory_init_per_mb)
        if any(v < 0 for v in values):
            raise SimulationError("VMM costs must be non-negative")
        if self.sys_dilation < 1.0:
            raise SimulationError("sys_dilation must be >= 1 (emulation "
                                  "cannot beat native)")

    @lru_cache(maxsize=1024)
    def user_dilation_factor(self, pagefaults_per_sec: float,
                             timer_hz: float) -> float:
        """Observed-user-time multiplier for user-mode guest code.

        Memoized (the dataclass is frozen, hence hashable): every
        compute phase of every replication asks with one of a handful
        of distinct rate/timer pairs.
        """
        return 1.0 + (pagefaults_per_sec * self.pagefault_trap
                      + timer_hz * self.timer_trap)

    @classmethod
    def workstation_3_0a(cls) -> "VmmCosts":
        """The calibrated default: VMware Workstation 3.0a-era costs."""
        return cls()

    @classmethod
    def optimized(cls) -> "VmmCosts":
        """A VMM with 'VM assists'-style optimizations (Section 2.3).

        Hardware-assisted trap handling and paravirtual devices cut the
        per-event prices roughly fourfold — the S/390 lineage the paper
        points at.
        """
        base = cls()
        return cls(
            syscall_trap=base.syscall_trap / 4,
            pagefault_trap=base.pagefault_trap / 4,
            timer_trap=base.timer_trap / 4,
            sys_dilation=1.0 + (base.sys_dilation - 1.0) / 4,
            world_switch=base.world_switch / 4,
            guest_context_switch=base.guest_context_switch / 4,
            io_emulation_per_byte=base.io_emulation_per_byte / 4,
            remote_state_cpu_per_byte=base.remote_state_cpu_per_byte,
            start_seconds=base.start_seconds,
            memory_init_per_mb=base.memory_init_per_mb,
        )

    @classmethod
    def naive(cls) -> "VmmCosts":
        """An unoptimized interpreting VMM (plex86-era), ~4x costlier."""
        base = cls()
        return cls(
            syscall_trap=base.syscall_trap * 4,
            pagefault_trap=base.pagefault_trap * 4,
            timer_trap=base.timer_trap * 4,
            sys_dilation=1.0 + (base.sys_dilation - 1.0) * 4,
            world_switch=base.world_switch * 4,
            guest_context_switch=base.guest_context_switch * 4,
            io_emulation_per_byte=base.io_emulation_per_byte * 4,
            remote_state_cpu_per_byte=base.remote_state_cpu_per_byte,
            start_seconds=base.start_seconds,
            memory_init_per_mb=base.memory_init_per_mb,
        )
