"""The per-host virtual machine monitor.

One :class:`VirtualMachineMonitor` runs on each physical host.  It
creates VMs over disk images, powers them on from a cold (pre-boot) or
warm (post-boot, restored) state, suspends them to memory-state files,
and tears them down.  These are exactly the primitives Table 2 times
through ``globusrun``: VM-reboot versus VM-restore over the different
state-access configurations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.guestos.interface import PhysicalHost
from repro.hardware.cpu import CpuTask
from repro.simulation.kernel import SimulationError
from repro.storage.base import FileSystem
from repro.vmm.costs import VmmCosts
from repro.vmm.disk_image import DiskImage, VirtualDisk
from repro.vmm.virtual_machine import VirtualMachine, VmConfig, VmState

__all__ = ["VirtualMachineMonitor"]


class VirtualMachineMonitor:
    """Creates and drives classic VMs on one physical host."""

    def __init__(self, host: PhysicalHost, costs: Optional[VmmCosts] = None,
                 name: str = ""):
        self.sim = host.sim
        self.host = host
        self.machine = host.machine
        self.costs = costs or VmmCosts()
        self.name = name or ("vmm@" + host.name)
        # Name-keyed so lookup/duplicate checks cost O(1) however many
        # VMs a scenario parks on one host; insertion order is the
        # admission order the old list exposed.
        self._vms: Dict[str, VirtualMachine] = {}
        self._resident_mb = 0

    @property
    def vms(self) -> List[VirtualMachine]:
        """Resident VMs in admission order (a snapshot copy)."""
        return list(self._vms.values())

    @property
    def resident_mb(self) -> int:
        """Guest memory currently admitted, in MB (running total)."""
        return self._resident_mb

    def _admit(self, vm: VirtualMachine) -> None:
        self._vms[vm.name] = vm
        self._resident_mb += vm.config.memory_mb

    def _evict(self, vm: VirtualMachine) -> None:
        if self._vms.get(vm.name) is vm:
            del self._vms[vm.name]
            self._resident_mb -= vm.config.memory_mb

    # -- creation ----------------------------------------------------------------

    def create_vm(self, config: VmConfig, base_image: DiskImage,
                  disk_mode: str = "nonpersistent",
                  remote_cpu_per_byte: float = 0.0,
                  rng: Optional[random.Random] = None,
                  owner: str = "nobody") -> VirtualMachine:
        """Define a VM over a base image (no cost; nothing runs yet).

        ``remote_cpu_per_byte`` should be set (typically to
        ``costs.remote_state_cpu_per_byte``) when ``base_image`` is
        accessed through NFS or a PVFS proxy rather than local disk.
        """
        if config.name in self._vms:
            raise SimulationError("VM %s already exists on %s"
                                  % (config.name, self.name))
        # Admission control: guest memory is not overcommitted (the
        # "negotiation" of the paper's step 4 — a host only accepts VMs
        # it can actually back).  A quarter of RAM is reserved for the
        # host OS and the VMM processes themselves.
        budget = self.machine.memory_mb * 3 // 4
        resident = self._resident_mb
        if resident + config.memory_mb > budget:
            raise SimulationError(
                "%s cannot admit %s: %d+%d MB exceeds the %d MB guest "
                "budget" % (self.name, config.name, resident,
                            config.memory_mb, budget))
        if rng is None:
            rng = self.sim.streams.stream("vm/" + config.name)
        vdisk = VirtualDisk(self.sim, config.name, base_image,
                            mode=disk_mode, diff_fs=self.host.root_fs,
                            rng=rng,
                            remote_cpu_per_byte=remote_cpu_per_byte)
        vm = VirtualMachine(self, config, vdisk, rng=rng, owner=owner)
        self._admit(vm)
        return vm

    def lookup(self, name: str) -> VirtualMachine:
        """Find a VM by name."""
        vm = self._vms.get(name)
        if vm is None:
            raise SimulationError("no VM named %s on %s"
                                  % (name, self.name))
        return vm

    # -- power management -----------------------------------------------------------

    def _track(self, vm: VirtualMachine):
        """The trace track for one VM: a thread row under this host."""
        return ("host:%s" % self.machine.name, "vm:%s" % vm.name)

    def _vmm_process_start(self, vm: VirtualMachine):
        """VMM exec + guest memory allocate/zero (host CPU work)."""
        yield self.sim.timeout(self.costs.start_seconds)
        work = vm.config.memory_mb * self.costs.memory_init_per_mb
        if work > 0:
            task = CpuTask("vmm-init@" + vm.name, work=work)
            yield self.machine.cpu.submit(task)

    def power_on(self, vm: VirtualMachine, mode: str = "boot",
                 memstate: Optional[Tuple[FileSystem, str]] = None,
                 memstate_is_remote: bool = False):
        """Process generator: start a VM cold (boot) or warm (restore).

        ``mode="boot"`` boots the guest OS from its virtual disk;
        ``mode="restore"`` reads the memory-state file named by
        ``memstate`` and resumes the post-boot image.
        """
        if vm.state not in (VmState.DEFINED, VmState.SUSPENDED):
            raise SimulationError("%s cannot power on from %s"
                                  % (vm.name, vm.state.value))
        if mode not in ("boot", "restore"):
            raise SimulationError("unknown power-on mode %r" % mode)
        start = self.sim.now
        span = self.sim.trace.begin("vmm", "power_on (%s)" % mode,
                                    track=self._track(vm), vm=vm.name)
        vm._set_state(VmState.STARTING)
        yield from self._vmm_process_start(vm)
        if mode == "boot":
            yield from vm.guest_os.boot()
        else:
            if memstate is None:
                raise SimulationError("restore needs a memstate file")
            fs, name = memstate
            yield from fs.read(name, 0, vm.config.memory_bytes,
                               sequential=True)
            if memstate_is_remote:
                vm.charge_sys(vm.config.memory_bytes
                              * self.costs.remote_state_cpu_per_byte)
            yield from vm.guest_os.resume()
        vm._set_state(VmState.RUNNING)
        self.sim.trace.end(span)
        duration = self.sim.now - start
        self.sim.metrics.histogram("vmm.%s.duration" % mode).observe(
            duration)
        return duration

    def suspend(self, vm: VirtualMachine, dest_fs: FileSystem,
                filename: Optional[str] = None):
        """Process generator: freeze the guest and write its memory state."""
        if vm.state is not VmState.RUNNING:
            raise SimulationError("%s is not running" % vm.name)
        filename = filename or vm.name + ".memstate"
        start = self.sim.now
        span = self.sim.trace.begin("vmm", "suspend", track=self._track(vm),
                                    vm=vm.name)
        vm.freeze()
        yield from dest_fs.write(filename, 0, vm.config.memory_bytes,
                                 sequential=True)
        vm._set_state(VmState.SUSPENDED)
        self.sim.trace.end(span)
        self.sim.metrics.histogram("vmm.suspend.duration").observe(
            self.sim.now - start)
        return filename

    def resume(self, vm: VirtualMachine, src_fs: FileSystem,
               filename: Optional[str] = None):
        """Process generator: read the memory state back and continue."""
        if vm.state is not VmState.SUSPENDED:
            raise SimulationError("%s is not suspended" % vm.name)
        filename = filename or vm.name + ".memstate"
        start = self.sim.now
        span = self.sim.trace.begin("vmm", "resume", track=self._track(vm),
                                    vm=vm.name)
        yield from src_fs.read(filename, 0, vm.config.memory_bytes,
                               sequential=True)
        vm.unfreeze()
        vm._set_state(VmState.RUNNING)
        self.sim.trace.end(span)
        self.sim.metrics.histogram("vmm.resume.duration").observe(
            self.sim.now - start)

    def shutdown(self, vm: VirtualMachine):
        """Process generator: orderly guest shutdown, then terminate."""
        if vm.state is not VmState.RUNNING:
            raise SimulationError("%s is not running" % vm.name)
        yield from vm.guest_os.shutdown()
        self.destroy(vm)

    def host_failure(self) -> List[VirtualMachine]:
        """The physical host dies: every resident VM crashes at once.

        Returns the casualties; their state files survive on whatever
        storage they lived on, so sessions can re-instantiate elsewhere.
        """
        casualties = self.vms
        for vm in casualties:
            vm.crash()
        return casualties

    def destroy(self, vm: VirtualMachine) -> None:
        """Remove a VM from this host (its image files remain)."""
        vm._set_state(VmState.TERMINATED)
        self._evict(vm)

    def __repr__(self) -> str:
        return "<VirtualMachineMonitor %s vms=%d>" % (self.name,
                                                      len(self._vms))
