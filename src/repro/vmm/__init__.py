"""The classic virtual machine monitor.

This package implements the paper's central object: a "classic" VM in
the sense of Section 2.1 — a same-ISA, whole-OS virtual machine whose
user-level code runs natively and whose privileged operations are
trapped and emulated, with all state representable as host files.

* :mod:`~repro.vmm.costs` — the trap-and-emulate cost model;
* :mod:`~repro.vmm.disk_image` — persistent and non-persistent
  (copy-on-write diff) virtual disks over any backing file system;
* :mod:`~repro.vmm.virtual_machine` — the VM: lifecycle state machine,
  guest OS, and the machine interface that charges virtualization taxes;
* :mod:`~repro.vmm.monitor` — the per-host VMM that creates, starts,
  suspends, restores and destroys VMs;
* :mod:`~repro.vmm.migration` — suspend/transfer/resume migration of a
  running VM between hosts.
"""

from repro.vmm.costs import VmmCosts
from repro.vmm.disk_image import DiskImage, VirtualDisk
from repro.vmm.migration import migrate
from repro.vmm.monitor import VirtualMachineMonitor
from repro.vmm.virtual_machine import (
    VirtualMachine,
    VmConfig,
    VmCrashed,
    VmState,
)

__all__ = [
    "DiskImage",
    "VirtualDisk",
    "VirtualMachine",
    "VirtualMachineMonitor",
    "VmConfig",
    "VmCrashed",
    "VmState",
    "VmmCosts",
    "migrate",
]
