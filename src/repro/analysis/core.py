"""The simlint engine: findings, rule plugins, suppression, the analyzer.

The engine is deliberately self-contained (stdlib ``ast`` only) so it can
lint the simulation stack without importing it.  A :class:`Rule` declares
the AST node types it cares about (``interests``); the :class:`Analyzer`
walks each module exactly once and dispatches nodes to interested rules.
Rules that need whole-module context (e.g. tracking which local names
hold sets) implement :meth:`Rule.check_module` instead of — or in
addition to — the per-node hook.

Suppression mirrors the classic lint idiom::

    self.rng = random.Random(0)  # simlint: disable=R1  calibration-only

disables the named rule(s) on that line only, and a line anywhere in the
file reading ``# simlint: disable-file=R2`` disables a rule for the whole
module.  Codes ("R1") and slugs ("global-random") are both accepted.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "RuleContext",
    "Analyzer",
    "analyze_source",
    "analyze_paths",
    "dotted_name",
]

#: Rule code used for files that do not parse.
PARSE_ERROR = "E0"

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([\w\-,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([\w\-,\s]+)")


class Finding:
    """One rule violation at one source location."""

    def __init__(self, path: str, line: int, col: int, code: str,
                 name: str, message: str):
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.name = name
        self.message = message

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "name": self.name,
            "message": self.message,
        }

    def format(self) -> str:
        """The one-line text rendering the CLI prints."""
        return "%s:%d:%d: %s[%s] %s" % (self.path, self.line, self.col,
                                        self.code, self.name, self.message)

    def __repr__(self) -> str:
        return "<Finding %s %s:%d>" % (self.code, self.path, self.line)


class RuleContext:
    """Per-module facts shared by every rule while one file is analyzed."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._generator_cache: Dict[ast.AST, bool] = {}  # simlint: disable=R23  one entry per function node in the analyzed file, freed with the context

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest FunctionDef/AsyncFunctionDef containing ``node``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def is_generator(self, func: ast.AST) -> bool:
        """True if ``func`` contains a yield of its own (a sim process)."""
        if func not in self._generator_cache:
            self._generator_cache[func] = _has_own_yield(func)
        return self._generator_cache[func]

    def in_simulation_process(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside a generator function."""
        func = self.enclosing_function(node)
        return func is not None and self.is_generator(func)


def _has_own_yield(func: ast.AST) -> bool:
    """Does ``func`` yield, not counting nested function bodies?"""
    todo: List[ast.AST] = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a nested def's yields belong to the nested def
        todo.extend(ast.iter_child_nodes(node))
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class for simlint rules (the plugin interface).

    Subclasses set ``code`` (stable "R<n>" identifier used in suppression
    comments and CI baselines), ``name`` (human slug) and either
    ``interests`` + :meth:`check` for per-node rules or
    :meth:`check_module` for whole-module analyses.
    """

    code: str = "R0"
    name: str = "abstract-rule"
    #: AST node classes this rule wants to see (per-node dispatch).
    interests: Tuple[Type[ast.AST], ...] = ()

    def check(self, node: ast.AST,
              ctx: RuleContext) -> Iterator[Finding]:  # pragma: no cover
        """Yield findings for one node of an interested type."""
        return iter(())

    def check_module(self, tree: ast.Module,
                     ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings needing whole-module context (default: none)."""
        return iter(())

    def finding(self, ctx: RuleContext, node: ast.AST,
                message: str) -> Finding:
        """Build a Finding for ``node`` attributed to this rule."""
        return Finding(ctx.path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1,
                       self.code, self.name, message)

    def __repr__(self) -> str:
        return "<Rule %s %s>" % (self.code, self.name)


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Map line number -> suppressed tokens, plus file-wide tokens."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            whole_file.update(_tokens(match.group(1)))
            continue
        match = _SUPPRESS_RE.search(line)
        if match:
            per_line.setdefault(lineno, set()).update(_tokens(match.group(1)))
    return per_line, whole_file


def _tokens(spec: str) -> Set[str]:
    # "R1, R4  justifying comment" -> {"r1", "r4"}: the first word of
    # each comma-separated chunk is the code; the rest is prose.
    return {token.split()[0].lower() for token in spec.split(",")
            if token.split()}


class Analyzer:
    """Runs a rule set over source text, files, or directory trees."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        if rules is None:
            from repro.analysis.rules import default_rules
            rules = default_rules()
        self.rules: List[Rule] = sorted(rules, key=lambda rule: rule.code)
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    # -- single module -------------------------------------------------------

    def analyze_source(self, source: str,
                       path: str = "<string>") -> List[Finding]:
        """Lint one module's source text."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(path, exc.lineno or 1, (exc.offset or 0) + 1,
                            PARSE_ERROR, "parse-error",
                            "file does not parse: %s" % exc.msg)]
        ctx = RuleContext(path, source, tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                findings.extend(rule.check(node, ctx))
        for rule in self.rules:
            findings.extend(rule.check_module(tree, ctx))
        per_line, whole_file = _parse_suppressions(source)
        findings = [f for f in findings
                    if not _suppressed(f, per_line, whole_file)]
        findings.sort(key=lambda f: f.sort_key)
        return findings

    def analyze_file(self, path: str) -> List[Finding]:
        """Lint one file on disk."""
        with tokenize.open(path) as handle:
            source = handle.read()
        return self.analyze_source(source, path=path)

    # -- trees ---------------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Lint files and/or directory trees (``.py`` files, sorted walk)."""
        findings: List[Finding] = []
        for path in paths:
            if os.path.isdir(path):
                for directory, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            findings.extend(self.analyze_file(
                                os.path.join(directory, filename)))
            else:
                findings.extend(self.analyze_file(path))
        findings.sort(key=lambda f: f.sort_key)
        return findings


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                whole_file: Set[str]) -> bool:
    identifiers = {finding.code.lower(), finding.name.lower()}
    if identifiers & whole_file:
        return True
    return bool(identifiers & per_line.get(finding.line, set()))


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Convenience: lint source text with the default (or given) rules."""
    return Analyzer(rules).analyze_source(source, path=path)


def analyze_paths(paths: Iterable[str],
                  rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Convenience: lint paths with the default (or given) rules."""
    return Analyzer(rules).analyze_paths(paths)
