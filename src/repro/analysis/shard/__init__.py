"""shardcheck — the shard-affinity pass (the ``--shard`` flag).

Classifies every mutable location in the analyzed tree on the
three-value affinity lattice (shard-local / shard-crossing /
process-global; see :mod:`repro.analysis.shard.model`) and runs the
ownership rules R15–R19 (:mod:`repro.analysis.shard.rules`) over it.
:func:`analyze_shard` mirrors :func:`repro.analysis.dataflow.
analyze_project`: parse, classify, run the rules, apply the standard
simlint suppression comments, return sorted Finding objects — never
importing the code under analysis.

:mod:`repro.analysis.shard.inventory` renders the whole model as
``docs/shard-safety.md``, the work-list the sharded-engine refactor
consumes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.core import (
    PARSE_ERROR,
    Finding,
    _parse_suppressions,
    _suppressed,
)
from repro.analysis.shard.model import (
    CROSSING,
    GLOBAL,
    LOCAL,
    ShardModel,
    build_shard_model,
    family_of_module,
)
from repro.analysis.shard.rules import (
    ShardRule,
    register_shard,
    registered_shard_rule_classes,
    shard_rules,
)

__all__ = ["analyze_shard", "build_shard_model", "ShardModel",
           "ShardRule", "shard_rules", "register_shard",
           "registered_shard_rule_classes", "family_of_module",
           "LOCAL", "CROSSING", "GLOBAL"]


def analyze_shard(paths: Iterable[str],
                  rules: Optional[Iterable[ShardRule]] = None,
                  model: Optional[ShardModel] = None) -> List[Finding]:
    """Run the shard rules over every module under ``paths``.

    Suppression comments (``# simlint: disable=R15`` and
    ``disable-file=``) work exactly as for the per-file and deep
    rules; unparsable files yield one ``E0`` finding each.
    """
    if model is None:
        model = build_shard_model(paths)
    project = model.project
    findings: List[Finding] = []
    for path in sorted(project.parse_errors):
        lineno, message = project.parse_errors[path]
        findings.append(Finding(path, lineno, 1, PARSE_ERROR,
                                "parse-error",
                                "file does not parse: %s" % message))
    if rules is None:
        rules = shard_rules()
    seen = set()
    for rule in sorted(rules, key=lambda r: r.code):
        for finding in rule.check_model(model):
            key = (finding.path, finding.line, finding.col, finding.code,
                   finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    suppressions = {}
    for module in project.modules.values():
        suppressions[module.path] = _parse_suppressions(module.source)
    kept = []
    for finding in findings:
        per_line, whole_file = suppressions.get(finding.path,
                                                ({}, set()))
        if not _suppressed(finding, per_line, whole_file):
            kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    return kept
